"""Air-traffic control: the paper's motivating query Q.

"Retrieve all the airplanes that will come within 30 miles of the airport
in the next 10 minutes" (section 1) — plus a temporal trigger that raises
an alert whenever a *pair* of aircraft violates separation
(``WITHIN_SPHERE``), and a demonstration that answers to future queries
are tentative: a course correction removes a plane from the answer.

Run:  python examples/air_traffic_control.py
"""

from repro import ContinuousQuery, InstantaneousQuery, TemporalTrigger, parse_query
from repro.geometry import Point
from repro.workloads import air_traffic_scenario

SEPARATION_QUERY = (
    "RETRIEVE a, b FROM aircraft a, aircraft b "
    "WHERE WITHIN_SPHERE(3, a, b)"
)


def main() -> None:
    world = air_traffic_scenario(n_aircraft=25, region=120, speed=12, seed=11)
    db = world.db

    # -- The paper's query Q ---------------------------------------------
    q = parse_query(world.QUERY)
    iq = InstantaneousQuery(q, horizon=10)
    inbound = sorted(inst[0] for inst in iq.evaluate(db))
    print(f"Q: aircraft within 30 miles of the airport in the next 10 min:")
    for plane in inbound:
        pos = db.get(plane).position_at(db.clock.now)
        print(f"  {plane:10s} now at ({pos.x:7.1f}, {pos.y:7.1f})")

    # -- Tentative answers (section 1) ------------------------------------
    if inbound:
        diverted = inbound[0]
        print(f"\n{diverted} turns away from the airport ...")
        db.update_motion(diverted, Point(12, 0), position=Point(400, 400))
        still_inbound = sorted(inst[0] for inst in iq.evaluate(db))
        print("Q re-entered:", still_inbound)
        assert diverted not in still_inbound

    # -- Separation monitoring with a temporal trigger --------------------
    alerts: list[tuple] = []
    cq = ContinuousQuery(db, parse_query(SEPARATION_QUERY), horizon=60)
    TemporalTrigger(
        db,
        cq,
        on_enter=lambda pair: pair[0] < pair[1] and alerts.append(pair),
    )
    for _ in range(30):
        db.clock.tick()
    print(f"\nseparation alerts over 30 ticks: {len(alerts)}")
    for a, b in alerts[:5]:
        print(f"  {a} came within 6 miles of {b}")


if __name__ == "__main__":
    main()
