"""Distributed convoy tracking (section 5.3).

Each vehicle hosts its own database object on its own mobile computer —
"the distribution is such that each object resides in the computer on the
moving vehicle it represents, but nowhere else."  The convoy leader asks
three kinds of queries:

* *self-referencing* — "will I reach the rally point in 30 ticks?"
  (answered locally, zero messages);
* *object query* — "which vehicles will reach the rally point in 30
  ticks?", processed both ways the paper describes, with message costs
  compared;
* *relationship query* — "which vehicles stay within 8 miles of each
  other for the next 20 ticks?", centralised at the leader.

Run:  python examples/convoy_tracking.py
"""

from repro.distributed import (
    QueryKind,
    broadcast_object_query,
    classify_query,
    collect_object_query,
    relationship_query,
    self_referencing_query,
)
from repro.ftl import parse_query
from repro.geometry import Point
from repro.spatial import Ball
from repro.spatial.kinetic import when_dist_at_most
from repro.temporal import Interval
from repro.motion.moving import static_point
from repro.workloads import convoy_scenario

RALLY = Point(60.0, 0.0)


def reaches_rally(node) -> bool:
    now = node.network.clock.now
    window = Interval(now, now + 30)
    target = static_point(RALLY)
    return bool(when_dist_at_most(node.mover, target, 10.0, window))


def main() -> None:
    world = convoy_scenario(n_vehicles=10, spacing=6, speed=2.5, straggler_every=3)
    network, leader = world.network, world.leader

    # -- Classification (section 5.3's taxonomy) ---------------------------
    examples = {
        "self-referencing": parse_query(
            "RETRIEVE me FROM vehicles me WHERE EVENTUALLY WITHIN 30 INSIDE(me, RALLY)"
        ),
        "object": parse_query(
            "RETRIEVE v FROM vehicles v WHERE EVENTUALLY WITHIN 30 INSIDE(v, RALLY)"
        ),
        "relationship": parse_query(
            "RETRIEVE a, b FROM vehicles a, vehicles b WHERE ALWAYS FOR 20 DIST(a, b) <= 8"
        ),
    }
    print("query classification:")
    for label, query in examples.items():
        kind = classify_query(query, issuer_var="me")
        print(f"  {label:17s} -> {kind.value}")
        assert kind == QueryKind(label)

    # -- Self-referencing: zero messages -----------------------------------
    network.stats.reset()
    answer = self_referencing_query(leader, reaches_rally)
    print(f"\nleader reaches the rally point: {answer} "
          f"({network.stats.attempted} messages)")

    # -- Object query: both strategies --------------------------------------
    network.stats.reset()
    via_collect = collect_object_query(leader, world.vehicles, reaches_rally)
    collect_cost = (network.stats.attempted, network.stats.bytes_sent)

    network.stats.reset()
    via_broadcast = broadcast_object_query(leader, world.vehicles, reaches_rally)
    broadcast_cost = (network.stats.attempted, network.stats.bytes_sent)

    assert via_collect == via_broadcast
    print(f"\nvehicles reaching the rally point: {sorted(via_broadcast)}")
    print(f"  collect  : {collect_cost[0]:3d} msgs, {collect_cost[1]:4d} bytes")
    print(f"  broadcast: {broadcast_cost[0]:3d} msgs, {broadcast_cost[1]:4d} bytes")

    # -- Relationship query: centralise at the issuer ------------------------
    def cohesive(snapshots):
        now = network.clock.now
        window = Interval(now, now + 20)
        out = set()
        for a in snapshots:
            for b in snapshots:
                if a["id"] >= b["id"]:
                    continue
                close = when_dist_at_most(a["mover"], b["mover"], 8.0, window)
                if close.covers(Interval(window.start, window.end)):
                    out.add(a["id"])
                    out.add(b["id"])
        return out

    network.stats.reset()
    cohesive_set = relationship_query(leader, world.vehicles, cohesive)
    print(f"\ncohesive subgroup over next 20 ticks: {sorted(cohesive_set)}")
    print(f"  centralised processing cost: {network.stats.attempted} object transfers")


if __name__ == "__main__":
    main()
