"""The travelling-salesman's motel finder (sections 1, 2.3 and 5.2).

A car drives down a road lined with motels and issues the continuous
query "display motels within a radius of 5 miles" — evaluated *once*;
the display then changes with the car's movement without reevaluation.
The materialised ``Answer(CQ)`` is finally shipped to the car's
memory-limited on-board computer under the immediate and delayed
transmission policies of section 5.2, with a disconnection window.

Run:  python examples/motel_finder.py
"""

from repro import ContinuousQuery, parse_query
from repro.distributed import (
    DelayedPolicy,
    ImmediatePolicy,
    simulate_transmission,
)
from repro.workloads import motel_scenario

NEARBY = (
    "RETRIEVE m FROM motels m, cars c "
    "WHERE DIST(c, m) <= 5 AND m.price <= 150"
)


def main() -> None:
    world = motel_scenario(n_motels=25, road_length=150, car_speed=1.0, seed=4)
    db = world.db

    # -- One evaluation, a whole itinerary of displays ---------------------
    cq = ContinuousQuery(db, parse_query(NEARBY), horizon=150)
    tuples = cq.answer_tuples()
    print(f"Answer(CQ): {len(tuples)} tuples from a single evaluation")
    for t in tuples[:8]:
        motel = db.get(t.values[0])
        price = motel.static_value("price")
        print(
            f"  {t.values[0]:10s} (${price:6.2f}) displayed during "
            f"[{t.begin:3g}, {t.end:3g}]"
        )

    print("\ndriving ...")
    for checkpoint in (10, 40, 80, 120):
        db.clock.advance_to(checkpoint)
        shown = sorted(inst[0] for inst in cq.current())
        print(f"  t={checkpoint:3d}: display = {shown}")
    print(f"evaluations performed: {cq.evaluations} (reevaluation only on update)")

    # -- Shipping Answer(CQ) to the car (section 5.2) ----------------------
    answer = [t for t in tuples]
    horizon = 150
    offline = [(20.0, 35.0)]  # the car drives through a tunnel
    print("\ntransmitting Answer(CQ) to the car (memory B=4, tunnel at t=20..35):")
    for name, policy in (
        ("immediate", ImmediatePolicy()),
        ("delayed", DelayedPolicy()),
    ):
        report = simulate_transmission(
            policy,
            answer,
            horizon=horizon,
            client_memory=4,
            disconnections=offline,
        )
        print(
            f"  {name:9s}: {report.messages:3d} messages, "
            f"{report.tuples_sent:3d} tuples, staleness {report.staleness}"
        )


if __name__ == "__main__":
    main()
