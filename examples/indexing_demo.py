"""Indexing dynamic attributes (section 4 of the paper), hands on.

Shows the full lifecycle of the function-line index:

1. plot attribute functions into the (time, value) plane;
2. answer the paper's instantaneous query "retrieve the objects for which
   currently 4 < A < 5" without examining every object;
3. answer its continuous variant as exact in-range intervals;
4. update = remove the old function-line, insert the new one;
5. reconstruct when the horizon T expires;
6. the 3-D (x, y, t) variant for objects moving in the plane.

Run:  python examples/indexing_demo.py
"""

from repro.core import DynamicAttribute
from repro.geometry import Point
from repro.index import DynamicAttributeIndex, MovingObjectIndex2D
from repro.motion import linear_moving_point
from repro.spatial import Box
from repro.workloads import random_attributes


def main() -> None:
    # -- 1. Plot 1 000 function-lines --------------------------------------
    index = DynamicAttributeIndex(
        epoch=0, horizon=100, value_lo=-500, value_hi=500, node_capacity=32
    )
    for object_id, attr in random_attributes(1000, seed=2):
        index.insert(object_id, attr)
    print(f"indexed {len(index)} dynamic attributes over T = 100 ticks")

    # -- 2. The section 4 instantaneous query ------------------------------
    hits = index.instantaneous_range(4, 5, at_time=60)
    print(f"\n'currently 4 < A < 5' at t=60: {sorted(hits)}")
    print(f"  index visited {index.last_nodes_visited} nodes "
          f"(a full scan would examine {len(index)} objects)")
    assert hits == index.scan_range(4, 5, at_time=60)

    # -- 3. The continuous variant ------------------------------------------
    for hit in index.continuous_range(4, 5, from_time=60)[:5]:
        print(f"  {hit.object_id}: in range during "
              f"[{hit.begin:6.2f}, {hit.end:6.2f}]")

    # -- 4. An explicit update moves the function-line ----------------------
    victim = sorted(hits)[0] if hits else "a0"
    index.update(victim, DynamicAttribute.linear(400.0, 0.0, updatetime=60))
    print(f"\nafter updating {victim} to a parked value of 400:")
    print(f"  in (4,5) at t=60? {victim in index.instantaneous_range(4, 5, 60)}")
    print(f"  in (399,401)?     {victim in index.instantaneous_range(399, 401, 60)}")

    # -- 5. Periodic reconstruction ------------------------------------------
    index.reconstruct(new_epoch=100)
    print(f"\nreconstructed: window now [{index.epoch:g}, {index.horizon:g}]")
    later = index.instantaneous_range(399, 401, at_time=150)
    print(f"  {victim} still found at t=150: {victim in later}")

    # -- 6. 2-D movement via the 3-D (x, y, t) octree -------------------------
    spatial = MovingObjectIndex2D(
        epoch=0, horizon=60, bounds=Box.from_bounds((0, 200), (0, 200))
    )
    for i in range(200):
        spatial.insert(
            f"car{i}",
            linear_moving_point(
                Point(float(i % 20) * 10, float(i // 20) * 20),
                Point(1.0 if i % 2 else -1.0, 0.5),
            ),
        )
    downtown = Box.from_bounds((90, 110), (90, 110))
    now_inside = spatial.objects_in_rectangle(downtown, at_time=30)
    print(f"\ncars downtown at t=30: {len(now_inside)} "
          f"(octree visited {spatial.last_nodes_visited} nodes)")
    schedule = spatial.continuous_rectangle(downtown, from_time=0)
    print(f"distinct visits to downtown during [0, 60]: {len(schedule)}")


if __name__ == "__main__":
    main()
