-- The assignment quantifier (the paper's only quantifier): remember
-- the truck's current x position, then ask whether the car passes it
-- within 15 ticks.  Static analysis classifies this query as
-- full-reevaluation (FTL401): assignments disable incremental
-- continuous-query maintenance.
RETRIEVE c
FROM cars c, trucks t
WHERE [m := t.x_position] EVENTUALLY WITHIN 15 c.x_position > m
