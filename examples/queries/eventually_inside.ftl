-- Section 2.1 motivating query: cars that reach the region P within
-- the next 8 ticks of simulated time.
RETRIEVE o
FROM cars o
WHERE EVENTUALLY WITHIN 8 INSIDE(o, P)
