-- Pairs that stay far apart until they come within rendezvous range:
-- the basic Until operator over a distance atom.
RETRIEVE a, b
FROM aircraft a, aircraft b
WHERE DIST(a, b) > 20 UNTIL WITHIN_SPHERE(5, a, b)
