"""Quickstart: the MOST model and FTL in five minutes.

Walks through the paper's core ideas on a toy world:

1. dynamic attributes — position as a function of time;
2. an instantaneous FTL query (the polygon-entry query of section 3.4);
3. a continuous query — one evaluation, time-varying display;
4. a motion-vector update invalidating the materialised answer.

Run:  python examples/quickstart.py
"""

from repro import (
    ContinuousQuery,
    InstantaneousQuery,
    MostDatabase,
    ObjectClass,
    parse_query,
)
from repro.geometry import Point
from repro.spatial import Polygon


def main() -> None:
    # -- 1. A database of moving cars -----------------------------------
    db = MostDatabase()
    db.create_class(
        ObjectClass("cars", static_attributes=("plate",), spatial_dimensions=2)
    )
    db.define_region("P", Polygon.rectangle(0, 0, 10, 10))

    # The car's position is a *dynamic attribute*: we store the motion
    # vector, and the DBMS computes the position at query time.
    db.add_moving_object(
        "cars", "rww860", Point(-4, 5), Point(1, 0), static={"plate": "RWW860"}
    )
    db.add_moving_object(
        "cars", "xyz111", Point(-40, 5), Point(1, 0), static={"plate": "XYZ111"}
    )

    car = db.get("rww860")
    print("position now      :", car.position_at(db.clock.now))
    print("position at t=10  :", car.position_at(10), "(no update needed!)")

    # -- 2. An instantaneous future query --------------------------------
    query = parse_query(
        "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 6 INSIDE(o, P)"
    )
    iq = InstantaneousQuery(query, horizon=100)
    print("\nQ: who enters polygon P within 6 ticks?")
    print("answer at t=0     :", iq.evaluate(db))  # rww860 enters at t=4

    # -- 3. A continuous query: evaluated once ---------------------------
    cq = ContinuousQuery(db, query, horizon=100)
    print("\nAnswer(CQ) tuples :")
    for t in cq.answer_tuples():
        print(f"  {t.values[0]:8s} displayed during [{t.begin:g}, {t.end:g}]")
    db.clock.tick(32)  # no reevaluation happens here ...
    print("display at t=32   :", cq.current())  # ... yet the display moved
    print("evaluations so far:", cq.evaluations)

    # -- 4. An explicit update invalidates the answer --------------------
    db.update_motion("xyz111", Point(0, 0), position=Point(500, 500))
    print("\nafter xyz111 vanishes to (500, 500):")
    print("display at t=32   :", cq.current())
    print("evaluations so far:", cq.evaluations)


if __name__ == "__main__":
    main()
