"""E7 — distributed object-query strategies (section 5.3).

"The second approach is more efficient since it processes the query in
parallel, at all the mobile computers.  The second approach is also more
efficient for continuous queries."

We sweep the fleet size and the predicate selectivity, comparing the
bytes moved by ship-all-objects (*collect*) vs broadcast-query-and-reply
(*broadcast*); then the continuous case, where collect re-ships on every
object change while broadcast transmits only predicate transitions.
"""

from __future__ import annotations

from repro.distributed import (
    SimNetwork,
    MobileNode,
    broadcast_object_query,
    collect_object_query,
    continuous_object_query,
)
from repro.geometry import Point
from repro.motion import linear_moving_point


def make_fleet(n: int, inside_fraction: float):
    net = SimNetwork()
    coordinator = MobileNode(
        "me", net, linear_moving_point(Point(0, 0), Point(0, 0))
    )
    nodes = []
    cutoff = int(n * inside_fraction)
    for i in range(n):
        x = 5.0 if i < cutoff else 1000.0 + i
        nodes.append(
            MobileNode(
                f"n{i}", net, linear_moving_point(Point(x, 0.0), Point(0, 0))
            )
        )
    return net, coordinator, nodes


def near(node) -> bool:
    return node.position_now().norm <= 50


def one_shot(n: int, selectivity: float) -> list[object]:
    net1, coord1, nodes1 = make_fleet(n, selectivity)
    r1 = collect_object_query(coord1, nodes1, near)
    collect_bytes = net1.stats.bytes_sent

    net2, coord2, nodes2 = make_fleet(n, selectivity)
    r2 = broadcast_object_query(coord2, nodes2, near)
    broadcast_bytes = net2.stats.bytes_sent
    assert r1 == r2
    return [
        n,
        f"{selectivity:.0%}",
        collect_bytes,
        broadcast_bytes,
        round(collect_bytes / max(1, broadcast_bytes), 2),
    ]


def continuous(n: int, horizon: int) -> list[object]:
    # Objects change every tick (they move), but the predicate rarely flips.
    net1, coord1, nodes1 = make_fleet(n, 0.2)
    changes = {node.node_id: list(range(1, horizon + 1)) for node in nodes1}
    continuous_object_query(coord1, nodes1, near, changes, horizon, "collect")
    collect_msgs = net1.stats.attempted

    net2, coord2, nodes2 = make_fleet(n, 0.2)
    changes2 = {node.node_id: list(range(1, horizon + 1)) for node in nodes2}
    continuous_object_query(coord2, nodes2, near, changes2, horizon, "broadcast")
    broadcast_msgs = net2.stats.attempted
    return [
        n,
        horizon,
        collect_msgs,
        broadcast_msgs,
        round(collect_msgs / max(1, broadcast_msgs), 1),
    ]


def test_object_query_strategies(benchmark, record_table):
    rows = [
        one_shot(n, sel)
        for n in (10, 50, 200)
        for sel in (0.05, 0.25, 0.75)
    ]
    record_table(
        "E7a: one-shot object query, bytes moved (collect vs broadcast)",
        ["N", "selectivity", "collect bytes", "broadcast bytes", "ratio"],
        rows,
    )
    # Broadcast wins whenever few objects satisfy the predicate.
    selective = [r for r in rows if r[1] == "5%"]
    assert all(r[4] > 1 for r in selective)

    cont_rows = [continuous(n, 40) for n in (10, 50, 200)]
    record_table(
        "E7b: continuous object query, messages over 40 ticks "
        "(objects change every tick)",
        ["N", "horizon", "collect msgs", "broadcast msgs", "ratio"],
        cont_rows,
    )
    # Per the paper, the gap widens for continuous queries.
    assert all(r[4] > 5 for r in cont_rows)

    benchmark(lambda: one_shot(50, 0.25))
