"""Shared infrastructure for the experiment benches.

Each bench measures one experiment from DESIGN.md's index (E1–E9) and
registers a result table via the ``record_table`` fixture; the tables are
printed in the terminal summary (visible even under output capture), so
``pytest benchmarks/ --benchmark-only`` regenerates every series the paper
implies in one run.
"""

from __future__ import annotations

import pytest

_TABLES: list[tuple[str, list[str], list[list[object]]]] = []


@pytest.fixture
def record_table():
    """Register an experiment result table for the terminal summary."""

    def _record(title: str, headers: list[str], rows: list[list[object]]) -> None:
        _TABLES.append((title, headers, rows))

    return _record


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("EXPERIMENT RESULT TABLES (see DESIGN.md / EXPERIMENTS.md)")
    write("=" * 78)
    for title, headers, rows in _TABLES:
        write("")
        write(f"--- {title}")
        cells = [headers] + [[_format_cell(c) for c in row] for row in rows]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(headers))
        ]
        for r, row in enumerate(cells):
            line = "  ".join(c.rjust(w) for c, w in zip(row, widths))
            write("  " + line)
            if r == 0:
                write("  " + "  ".join("-" * w for w in widths))
    write("")
