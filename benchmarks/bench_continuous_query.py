"""E4 — continuous queries: one evaluation instead of one per tick.

Section 1: "Our query processing algorithm facilitates a single evaluation
of the query; reevaluation has to occur only if the motion vector of the
car changes."  We compare, over a horizon of ticks,

* the MOST scheme: evaluate once, answer displays per tick by interval
  lookup, reevaluate only on updates;
* the naive scheme existing DBMSs force: re-run the instantaneous query
  at every clock tick.

Expected shape: naive evaluation count equals the horizon; MOST's equals
1 + (number of update bursts), independent of the horizon.
"""

from __future__ import annotations

import time

from repro.core import ContinuousQuery, InstantaneousQuery
from repro.ftl import parse_query
from repro.workloads import motel_scenario, motion_update_process

QUERY = "RETRIEVE m FROM motels m, cars c WHERE DIST(c, m) <= 5"


def run_most(horizon: int, updates_every: int | None) -> tuple[int, float]:
    world = motel_scenario(n_motels=20, road_length=200, seed=3)
    db = world.db
    start = time.perf_counter()
    cq = ContinuousQuery(db, parse_query(QUERY), horizon=horizon)
    for _ in range(horizon):
        now = db.clock.tick()
        if updates_every and now % updates_every == 0:
            from repro.geometry import Point

            db.update_motion(world.car_id, Point(1.0, 0.0))
        cq.current()  # per-tick display
    return cq.evaluations, time.perf_counter() - start


def run_naive(horizon: int) -> tuple[int, float]:
    world = motel_scenario(n_motels=20, road_length=200, seed=3)
    db = world.db
    iq = InstantaneousQuery(parse_query(QUERY), horizon=horizon)
    start = time.perf_counter()
    evaluations = 0
    for _ in range(horizon):
        db.clock.tick()
        iq.evaluate(db)
        evaluations += 1
    return evaluations, time.perf_counter() - start


def test_continuous_single_evaluation(benchmark, record_table):
    rows = []
    for horizon in (25, 50, 100):
        most_evals, most_time = run_most(horizon, updates_every=None)
        naive_evals, naive_time = run_naive(horizon)
        rows.append(
            [
                horizon,
                most_evals,
                naive_evals,
                round(most_time * 1e3, 1),
                round(naive_time * 1e3, 1),
                round(naive_time / max(most_time, 1e-9), 1),
            ]
        )
    record_table(
        "E4a: continuous query, MOST single-evaluation vs per-tick "
        "reevaluation",
        ["horizon", "MOST evals", "naive evals", "MOST ms", "naive ms", "speedup x"],
        rows,
    )
    assert all(row[1] == 1 for row in rows)
    assert [row[2] for row in rows] == [25, 50, 100]

    update_rows = []
    for updates_every in (50, 20, 10, 5):
        evals, _t = run_most(100, updates_every=updates_every)
        update_rows.append([updates_every, 100 // updates_every, evals])
    record_table(
        "E4b: reevaluations track motion-vector updates, not ticks "
        "(horizon 100)",
        ["update interval", "updates", "MOST evals"],
        update_rows,
    )
    for interval, updates, evals in update_rows:
        assert evals == 1 + updates

    benchmark(lambda: run_most(50, None))
