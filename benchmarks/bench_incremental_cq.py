"""E10 — incremental continuous-query maintenance: per-update cost.

Section 2.3 requires ``Answer(CQ)`` be "reevaluated when an update occurs
that may change" it.  Full reevaluation makes each single-object update
cost O(population): every instantiation's satisfaction intervals are
recomputed even though only one object moved.  The incremental path
(``method="incremental"``) patches exactly the dirty instantiations, so
the per-update cost tracks the number of affected rows, not the fleet
size.

Measured here, per fleet size n:

* mean wall time per update refresh, full vs incremental;
* rows recomputed per refresh (the deterministic sublinearity witness:
  1 for the single-variable query regardless of n, vs n for full).
"""

from __future__ import annotations

import random
import time

from repro.core import ContinuousQuery, MostDatabase
from repro.ftl import parse_query
from repro.geometry import Point
from repro.spatial import Polygon
from repro.workloads import random_fleet

QUERY = "RETRIEVE o FROM objects o WHERE EVENTUALLY WITHIN 10 INSIDE(o, Z)"
HORIZON = 200
UPDATES = 12
SIZES = (100, 400, 1600)


def build_world(n: int) -> tuple[MostDatabase, list[object]]:
    db = MostDatabase()
    ids = random_fleet(db, n, area=(0.0, 1000.0), speed_range=(-5.0, 5.0), seed=7)
    db.define_region("Z", Polygon.rectangle(400.0, 400.0, 600.0, 600.0))
    return db, ids


def run(n: int, method: str) -> dict[str, float]:
    """Register the query, then time UPDATES single-object refreshes."""
    db, ids = build_world(n)
    rng = random.Random(n)
    cq = ContinuousQuery(db, parse_query(QUERY), horizon=HORIZON, method=method)
    elapsed = 0.0
    for _ in range(UPDATES):
        db.clock.tick()
        oid = rng.choice(ids)
        db.update_motion(
            oid, Point(rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0))
        )
        start = time.perf_counter()
        cq.refresh()  # maintenance cost only — no O(n) display scan
        elapsed += time.perf_counter() - start
    return {
        "ms_per_update": elapsed / UPDATES * 1e3,
        "evaluations": cq.evaluations,
        "full": cq.full_evaluations,
        "incremental": cq.incremental_refreshes,
        "rows_per_update": cq.rows_recomputed / UPDATES,
    }


def test_incremental_update_cost(record_table):
    results = {
        (n, method): run(n, method)
        for n in SIZES
        for method in ("interval", "incremental")
    }
    rows = []
    for n in SIZES:
        full = results[(n, "interval")]
        inc = results[(n, "incremental")]
        rows.append(
            [
                n,
                round(full["ms_per_update"], 2),
                round(inc["ms_per_update"], 2),
                round(full["ms_per_update"] / max(inc["ms_per_update"], 1e-9), 1),
                n,  # rows a full reevaluation recomputes
                inc["rows_per_update"],
            ]
        )
    record_table(
        "E10: per-update continuous-query maintenance, full reevaluation vs "
        f"incremental patching (horizon {HORIZON}, {UPDATES} single-object "
        "updates)",
        [
            "fleet n",
            "full ms/upd",
            "incr ms/upd",
            "speedup x",
            "full rows/upd",
            "incr rows/upd",
        ],
        rows,
    )

    for n in SIZES:
        inc = results[(n, "incremental")]
        # Every refresh went through the incremental path...
        assert inc["incremental"] == UPDATES
        assert inc["full"] == 1
        # ...and recomputed exactly the dirty instantiation (1 object per
        # update, single-variable query) — the sublinearity witness: work
        # per update is O(1) in the fleet size, not O(n).
        assert inc["rows_per_update"] == 1.0

    # Wall-clock corroboration, with generous margins against timer noise:
    # a 16x larger fleet must not cost anywhere near 16x per update...
    small = results[(SIZES[0], "incremental")]["ms_per_update"]
    large = results[(SIZES[-1], "incremental")]["ms_per_update"]
    assert large < small * 8 + 1.0
    # ...and at the largest size incremental must beat full reevaluation.
    assert (
        results[(SIZES[-1], "incremental")]["ms_per_update"]
        < results[(SIZES[-1], "interval")]["ms_per_update"]
    )


def test_incremental_join_update_cost(record_table):
    """Two-class join: dirty rows grow with the *other* class, not the
    whole cross product."""
    query = (
        "RETRIEVE c, m FROM cars c, motels m "
        "WHERE EVENTUALLY WITHIN 20 DIST(c, m) <= 25"
    )
    rows = []
    for n_cars in (20, 80, 320):
        db = MostDatabase()
        car_ids = random_fleet(
            db, n_cars, class_name="cars", area=(0.0, 500.0), seed=11
        )
        random_fleet(db, 10, class_name="motels", area=(0.0, 500.0),
                     speed_range=(0.0, 0.0), seed=12)
        rng = random.Random(n_cars)
        cq = ContinuousQuery(
            db, parse_query(query), horizon=100, method="incremental"
        )
        elapsed = 0.0
        for _ in range(UPDATES):
            db.clock.tick()
            db.update_motion(
                rng.choice(car_ids),
                Point(rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)),
            )
            start = time.perf_counter()
            cq.refresh()
            elapsed += time.perf_counter() - start
        rows.append(
            [
                n_cars,
                n_cars * 10,
                cq.rows_recomputed / UPDATES,
                round(elapsed / UPDATES * 1e3, 2),
            ]
        )
        # One dirty car touches |motels| join rows, independent of n_cars.
        assert cq.rows_recomputed / UPDATES == 10.0
        assert cq.incremental_refreshes == UPDATES
    record_table(
        "E10b: incremental maintenance of a cars x motels join "
        "(10 motels; dirty rows per update = |motels|, not |product|)",
        ["cars n", "product rows", "incr rows/upd", "incr ms/upd"],
        rows,
    )
