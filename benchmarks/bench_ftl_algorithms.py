"""E9 — the interval algorithm avoids per-state evaluation (§3.5 + appendix).

"We would like to emphasize that, although the above context implies that
f is evaluated at each database state, our processing algorithm avoids
this overhead."

Both evaluators answer the same query over growing horizons.  Expected
shape: the naive per-state evaluator's cost grows super-linearly with the
horizon (temporal operators quantify over future states), while the
interval algorithm's cost is driven by the number of satisfaction
intervals and stays nearly flat — the speedup widens with the horizon.
"""

from __future__ import annotations

import time

from repro.core import FutureHistory, MostDatabase, ObjectClass
from repro.ftl import parse_query
from repro.geometry import Point
from repro.spatial import Polygon
from repro.workloads import random_fleet

QUERY = (
    "RETRIEVE o FROM objects o WHERE EVENTUALLY WITHIN 5 "
    "(INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P) "
    "AND EVENTUALLY AFTER 5 INSIDE(o, Q))"
)
HORIZONS = (25, 50, 100, 200)
N_OBJECTS = 12


def build_db() -> MostDatabase:
    db = MostDatabase()
    random_fleet(
        db, N_OBJECTS, area=(0, 400), speed_range=(-4, 4), seed=21
    )
    db.define_region("P", Polygon.rectangle(100, 100, 300, 300))
    db.define_region("Q", Polygon.rectangle(0, 0, 150, 150))
    return db


def run(method: str, horizon: int) -> tuple[float, int]:
    db = build_db()
    query = parse_query(QUERY)
    history = FutureHistory(db)
    start = time.perf_counter()
    relation = query.evaluate(history, horizon, method=method)
    return time.perf_counter() - start, len(relation)


def test_interval_vs_naive(benchmark, record_table):
    rows = []
    for horizon in HORIZONS:
        t_interval, n_interval = run("interval", horizon)
        t_naive, n_naive = run("naive", horizon)
        assert n_interval == n_naive
        rows.append(
            [
                horizon,
                n_interval,
                round(t_interval * 1e3, 1),
                round(t_naive * 1e3, 1),
                round(t_naive / max(t_interval, 1e-9), 1),
            ]
        )
    record_table(
        f"E9: FTL evaluation, appendix interval algorithm vs per-state "
        f"semantics ({N_OBJECTS} objects)",
        ["horizon", "answers", "interval ms", "naive ms", "speedup x"],
        rows,
    )
    # The speedup must widen with the horizon.
    speedups = [row[4] for row in rows]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 5

    benchmark(lambda: run("interval", 100))
