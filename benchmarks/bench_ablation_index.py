"""Ablation A — index structure parameters and the rebuild period T (§4).

Two design choices the paper leaves open are swept here:

* **Decomposition granularity** — node capacity and maximum depth of the
  region tree trade build cost (long function-lines replicate into every
  crossed cell) against probe precision (deeper cells → fewer false
  candidates).
* **The rebuild period T** — "the index needs to be reconstructed every T
  time units.  Choosing an appropriate value for T is an important
  future-research question."  Small T means frequent rebuilds but short
  segments (cheap, precise); large T amortises rebuilds over longer,
  blurrier function-lines.
"""

from __future__ import annotations

import time

from repro.index import DynamicAttributeIndex
from repro.workloads import random_attributes

N = 2048


def build(capacity: int, depth: int, horizon: float = 100.0):
    index = DynamicAttributeIndex(
        epoch=0,
        horizon=horizon,
        value_lo=-500,
        value_hi=500,
        structure="regiontree",
        node_capacity=capacity,
        max_depth=depth,
    )
    attrs = random_attributes(N, value_range=(-400, 400), speed_range=(-2, 2), seed=3)
    start = time.perf_counter()
    for object_id, attr in attrs:
        index.insert(object_id, attr)
    return index, time.perf_counter() - start


def test_granularity_tradeoff(benchmark, record_table):
    rows = []
    for capacity, depth in ((8, 4), (8, 6), (8, 8), (32, 6), (128, 6)):
        index, build_s = build(capacity, depth)
        start = time.perf_counter()
        hits = index.instantaneous_range(0, 5, at_time=50)
        probe_s = time.perf_counter() - start
        rows.append(
            [
                capacity,
                depth,
                round(build_s, 2),
                index.last_nodes_visited,
                round(probe_s * 1e6),
                len(hits),
            ]
        )
    record_table(
        f"Ablation A1: region-tree granularity over {N} function-lines",
        ["capacity", "max depth", "build s", "probe nodes", "probe us", "hits"],
        rows,
    )
    # Deeper trees cost more to build (segment replication) ...
    depth_rows = [r for r in rows if r[0] == 8]
    assert depth_rows[0][2] <= depth_rows[-1][2]

    benchmark(lambda: index.instantaneous_range(0, 5, at_time=50))


def test_rebuild_period(record_table, benchmark):
    """Total cost of running 400 ticks under different rebuild periods."""
    rows = []
    for period in (50, 100, 200, 400):
        index, first_build = build(32, 6, horizon=float(period))
        total_build = first_build
        rebuilds = 0
        probe_time = 0.0
        probes = 0
        for t in range(0, 400):
            if t >= index.horizon:
                start = time.perf_counter()
                index.reconstruct(new_epoch=index.horizon)
                total_build += time.perf_counter() - start
                rebuilds += 1
            if t % 10 == 0:
                start = time.perf_counter()
                index.instantaneous_range(0, 5, at_time=float(t))
                probe_time += time.perf_counter() - start
                probes += 1
        rows.append(
            [
                period,
                rebuilds,
                round(total_build, 2),
                round(probe_time * 1e6 / probes),
            ]
        )
    record_table(
        f"Ablation A2: rebuild period T over 400 ticks ({N} objects, "
        "probe every 10 ticks)",
        ["T", "rebuilds", "total build s", "avg probe us"],
        rows,
    )
    # More rebuilds with smaller T, by construction.
    assert [r[1] for r in rows] == [7, 3, 1, 0]
    benchmark(lambda: None)
