"""E5 — the 2^k decomposition of section 5.1.

"If the original query has k atoms referring to a dynamic variable then,
in the worst case, this might mean evaluating up to 2^k queries that do
not contain dynamic variables.  However, if k is small this may not be a
serious problem."

We build one table with k dynamic attributes, issue a WHERE clause with k
dynamic atoms, and measure the variants issued and the wall-clock cost as
k grows — plus the indexed evaluation variant, which answers atoms from
the dynamic-attribute index instead of post-filtering each row.
"""

from __future__ import annotations

import time

from repro.bridge import MostOnDbms
from repro.core import DynamicAttribute
from repro.dbms import Column, Database, INT
from repro.index import DynamicAttributeIndex
from repro.temporal import SimulationClock

N_ROWS = 300
MAX_K = 6


def build_layer(k: int, indexed: bool) -> MostOnDbms:
    db = Database(clock=SimulationClock())
    layer = MostOnDbms(db)
    attrs = [f"a{i}" for i in range(k)]
    layer.create_table(
        "t", static_columns=[Column("id", INT)], dynamic_attributes=attrs, key="id"
    )
    indexes = {}
    if indexed:
        for attr in attrs:
            indexes[attr] = DynamicAttributeIndex(
                epoch=0, horizon=1000, value_lo=-10_000, value_hi=10_000
            )
            layer.register_index("t", attr, indexes[attr])
    for row in range(N_ROWS):
        triples = {
            attr: DynamicAttribute.linear(
                float((row * (i + 3)) % 200 - 100), float((row + i) % 7 - 3)
            )
            for i, attr in enumerate(attrs)
        }
        layer.insert("t", {"id": row}, triples)
        if indexed:
            for attr, triple in triples.items():
                indexes[attr].insert(row, triple)
    return layer


def query_for(k: int) -> str:
    condition = " AND ".join(f"a{i} >= 0" for i in range(k))
    return f"SELECT id FROM t WHERE {condition}"


def run(k: int, indexed: bool) -> tuple[int, int, float, int]:
    layer = build_layer(k, indexed)
    layer.db.clock.tick(10)
    sql = query_for(k)
    start = time.perf_counter()
    rel = layer.query(sql)
    elapsed = time.perf_counter() - start
    return (
        layer.stats.variants_issued,
        len(rel),
        elapsed,
        layer.stats.rows_post_filtered,
    )


def test_rewrite_2k(benchmark, record_table):
    rows = []
    for k in range(1, MAX_K + 1):
        variants, hits, t_plain, filtered = run(k, indexed=False)
        variants_i, hits_i, t_indexed, filtered_i = run(k, indexed=True)
        assert hits == hits_i
        assert variants == variants_i == 2**k
        assert filtered_i == 0  # the index answers every atom
        rows.append(
            [
                k,
                variants,
                hits,
                filtered,
                round(t_plain * 1e3, 1),
                round(t_indexed * 1e3, 1),
            ]
        )
    record_table(
        f"E5: WHERE clause with k dynamic atoms over {N_ROWS} rows "
        "(2^k static variants)",
        [
            "k",
            "variants",
            "result rows",
            "rows post-filtered",
            "plain ms",
            "indexed ms",
        ],
        rows,
    )
    # Variant count doubles with each extra dynamic atom.
    assert [row[1] for row in rows] == [2**k for k in range(1, MAX_K + 1)]
    layer = build_layer(3, indexed=False)
    layer.db.clock.tick(10)
    benchmark(lambda: layer.query(query_for(3)))
