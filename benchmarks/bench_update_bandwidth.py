"""E2 — motion vectors cut update traffic (section 1).

The paper's opening argument: storing the position forces an update per
tick per object ("a serious performance and wireless-bandwidth
overhead"), while storing the motion vector requires an update only when
the vector changes.  We sweep the mean interval between vector changes
and count the messages each representation needs over the same horizon.
Expected shape: position-based traffic is constant at N x T; vector-based
traffic scales with T / interval, so the ratio grows linearly with the
change interval.
"""

from __future__ import annotations

from repro.core import MostDatabase
from repro.workloads import motion_update_process, random_fleet

N_OBJECTS = 40
HORIZON = 200


def run_policy(change_interval: float) -> tuple[int, int]:
    """Returns (position-update messages, vector-update messages)."""
    db = MostDatabase()
    ids = random_fleet(db, N_OBJECTS, seed=42)
    probability = 1.0 / change_interval
    vector_updates = sum(
        1
        for _ in motion_update_process(
            db, ids, ticks=HORIZON, change_probability=probability, seed=7
        )
    )
    position_updates = N_OBJECTS * HORIZON  # one fix per object per tick
    return position_updates, vector_updates


def test_update_bandwidth(benchmark, record_table):
    rows = []
    for interval in (2, 5, 20, 50, 100):
        position_msgs, vector_msgs = run_policy(interval)
        rows.append(
            [
                interval,
                position_msgs,
                vector_msgs,
                round(position_msgs / max(1, vector_msgs), 1),
            ]
        )
    benchmark(run_policy, 20)
    record_table(
        "E2: update messages, position-per-tick vs motion-vector "
        f"(N={N_OBJECTS}, T={HORIZON})",
        ["change interval", "position msgs", "vector msgs", "savings x"],
        rows,
    )
    # Vector traffic must drop as vectors change less often; savings grow.
    savings = [row[3] for row in rows]
    assert savings == sorted(savings)
    assert savings[-1] > 10
