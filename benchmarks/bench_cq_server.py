"""E14 — continuous-query server throughput and backpressure (DESIGN.md §9).

Two measurements of the PR 7 epoch-loop server:

* ``fanout`` — sustained ingest throughput (updates applied per second
  of wall time) and the p99 per-query refresh latency as the subscriber
  count grows.  Each subscriber registers a *distinct* range query, so
  the refresh load scales with the count; deltas fan out through the
  §5.2 immediate policy over a synchronous in-process network.
* ``backpressure`` — a reporter floods batches at twice the server's
  sustainable drain rate (``batch_limit`` updates per epoch) into a
  bounded inbox.  The acceptance bar: the inbox high-water mark never
  exceeds its capacity and the server refuses overflow with explicit
  busy signals (bounded queues, no silent drops) while remaining live.

Results are registered as a terminal table and written to
``BENCH_cq_server.json`` at the repo root.  ``CQ_SERVER_SMOKE=1``
shrinks the sweep to a seconds-long CI run.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time
from pathlib import Path

from repro.core import MostDatabase, ObjectClass
from repro.distributed.network import SimNetwork
from repro.distributed.node import MobileNode
from repro.distributed.updates import MotionUpdate
from repro.geometry import Point
from repro.motion import linear_moving_point
from repro.server import BatchingReporter, CQServer, IngestBatch, SubscriberClient
from repro.server.metrics import BACKPRESSURE, NORMAL, SHEDDING
from repro.server.protocol import INGEST_BATCH
from repro.server.transport import ProtocolNode
from repro.temporal import SimulationClock

SMOKE = os.environ.get("CQ_SERVER_SMOKE") == "1"

SUB_COUNTS = [1, 2] if SMOKE else [1, 4, 16]
EPOCHS = 30 if SMOKE else 120
N_TRACKERS = 3 if SMOKE else 8
REPORT_P = 0.5
SEED = 2026

RESULT_PATH = Path(__file__).parents[1] / "BENCH_cq_server.json"


def build_world(n_subscribers: int):
    """Server + trackers + ``n`` subscribers, each with a distinct query."""
    clock = SimulationClock()
    db = MostDatabase(clock)
    network = SimNetwork(clock)  # synchronous, fault-free: measures the loop
    db.create_class(ObjectClass("trackers", spatial_dimensions=2))
    db.create_class(ObjectClass("beacons", spatial_dimensions=2))
    db.add_moving_object("beacons", "beacon", Point(0.0, 0.0))
    server = CQServer(db, network, inbox_capacity=4096, batch_limit=4096)
    reporters = []
    for i in range(N_TRACKERS):
        oid = f"tracker-{i}"
        start = Point(10.0 * i - 30.0, 0.0)
        db.add_moving_object("trackers", oid, start, Point(1.0, 0.0))
        db.track(oid)
        node = MobileNode(oid, network, linear_moving_point(start, Point(1.0, 0.0)))
        reporters.append(BatchingReporter(node, object_id=oid))
    clients = [
        SubscriberClient(
            network,
            f"sub-{i}",
            "RETRIEVE v FROM trackers v, beacons b "
            f"WHERE DIST(v, b) <= {40 + 2 * i}",
            horizon=EPOCHS * 4,
        )
        for i in range(n_subscribers)
    ]
    return db, network, server, reporters, clients


async def drive_fanout(server, reporters, epochs: int, seed: int) -> float:
    """Run the epoch loop under a seeded update workload; returns the
    wall-clock seconds spent inside ``run_epoch``."""
    rng = random.Random(seed)
    start = time.perf_counter()
    for _ in range(epochs):
        for rep in reporters:
            if rng.random() < REPORT_P:
                rep.report(
                    Point(float(rng.randint(-2, 2)), float(rng.randint(-2, 2)))
                )
        await server.run_epoch()
    return time.perf_counter() - start


def run_fanout(n_subscribers: int) -> dict:
    db, network, server, reporters, clients = build_world(n_subscribers)
    elapsed = asyncio.run(drive_fanout(server, reporters, EPOCHS, SEED))
    m = server.metrics
    assert all(c.subscribed for c in clients)
    assert m.updates_applied > 0
    return {
        "subscribers": n_subscribers,
        "epochs": EPOCHS,
        "elapsed_s": elapsed,
        "updates_applied": m.updates_applied,
        "updates_per_sec": m.updates_applied / max(elapsed, 1e-9),
        "refresh_p50_ms": m.refresh_latency.percentile(50) * 1e3,
        "refresh_p99_ms": m.refresh_latency.percentile(99) * 1e3,
        "epoch_p99_ms": m.epoch_latency.percentile(99) * 1e3,
        "deltas_sent": m.deltas_sent,
        "tuples_sent": m.tuples_sent,
    }


async def drive_overload(
    server, sender, epochs: int, rate: int, batch_size: int
) -> None:
    """Flood ``rate`` updates per epoch at the server in batches of
    ``batch_size``, ignoring busy signals (the worst-behaved reporter
    possible)."""
    seq = 0
    batch_seq = 0
    for _ in range(epochs):
        for _ in range(rate // batch_size):
            updates = tuple(
                MotionUpdate(
                    "flood-0", seq + i, server.db.clock.now,
                    Point(0.0, 0.0), Point(1.0, 0.0),
                )
                for i in range(batch_size)
            )
            seq += batch_size
            sender.send(
                server.server_id, INGEST_BATCH,
                IngestBatch("flood", batch_seq, updates),
            )
            batch_seq += 1
        await server.run_epoch()


def run_backpressure() -> dict:
    """2x-sustainable ingest: the drain rate is ``batch_limit`` updates
    per epoch, so the flood sends twice that."""
    capacity, batch_limit = 128, 32
    clock = SimulationClock()
    db = MostDatabase(clock)
    network = SimNetwork(clock)
    db.create_class(ObjectClass("trackers", spatial_dimensions=2))
    db.add_moving_object("trackers", "flood-0", Point(0.0, 0.0), Point(1.0, 0.0))
    db.track("flood-0")
    server = CQServer(
        db, network, inbox_capacity=capacity, batch_limit=batch_limit
    )
    sender = ProtocolNode("flood", network)
    epochs = 20 if SMOKE else 60
    asyncio.run(
        drive_overload(
            server, sender, epochs, rate=2 * batch_limit,
            batch_size=batch_limit // 2,
        )
    )
    m = server.metrics
    out = {
        "inbox_capacity": capacity,
        "batch_limit": batch_limit,
        "offered_rate": 2 * batch_limit,
        "epochs": epochs,
        "updates_enqueued": m.updates_enqueued,
        "updates_applied": m.updates_applied,
        "busy_signals": m.busy_signals,
        "inbox_high_water": m.inbox_high_water,
        "epochs_at_level": dict(m.epochs_at_level),
    }
    # The acceptance bar: bounded queues + explicit refusals, never
    # silent drops or unbounded growth.
    assert m.inbox_high_water <= capacity, out
    assert m.busy_signals > 0, out
    assert m.updates_applied > 0, out
    assert (
        m.epochs_at_level[BACKPRESSURE] + m.epochs_at_level[SHEDDING] > 0
    ), out
    assert m.epochs_at_level[NORMAL] >= 0
    return out


def test_cq_server_throughput_and_backpressure(record_table):
    fanout = [run_fanout(n) for n in SUB_COUNTS]
    overload = run_backpressure()
    report = {
        "benchmark": "cq_server",
        "smoke": SMOKE,
        "seed": SEED,
        "trackers": N_TRACKERS,
        "fanout": fanout,
        "backpressure": overload,
    }
    record_table(
        "E14: continuous-query server "
        f"({N_TRACKERS} trackers, {EPOCHS} epochs, distinct query per "
        "subscriber, synchronous network)",
        [
            "subs",
            "updates/s",
            "refresh p50 ms",
            "refresh p99 ms",
            "epoch p99 ms",
            "deltas",
            "tuples",
        ],
        [
            [
                f["subscribers"],
                round(f["updates_per_sec"]),
                round(f["refresh_p50_ms"], 2),
                round(f["refresh_p99_ms"], 2),
                round(f["epoch_p99_ms"], 2),
                f["deltas_sent"],
                f["tuples_sent"],
            ]
            for f in fanout
        ],
    )
    record_table(
        "E14: backpressure at 2x the sustainable ingest rate "
        f"(capacity {overload['inbox_capacity']}, drain "
        f"{overload['batch_limit']}/epoch, offered "
        f"{overload['offered_rate']}/epoch)",
        ["high water", "capacity", "busy signals", "applied", "levels"],
        [
            [
                overload["inbox_high_water"],
                overload["inbox_capacity"],
                overload["busy_signals"],
                overload["updates_applied"],
                overload["epochs_at_level"],
            ]
        ],
    )
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
