"""Collate every committed ``BENCH_*.json`` into one perf-trajectory page.

Each experiment bench writes its own JSON at the repo root; this script
reads them all and emits a single markdown file (default
``BENCH_REPORT.md``) with one headline table per benchmark plus a
cross-benchmark summary — the repo's performance trajectory at a glance.
CI publishes the page as an artifact next to the raw JSON.

Usage::

    python benchmarks/bench_report.py [--out BENCH_REPORT.md]

Unknown benchmark shapes degrade to a key listing rather than failing,
so a new bench's JSON shows up in the report before this script learns
its schema.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

ROOT = Path(__file__).parents[1]


def fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def table(headers: list[str], rows: list[list[object]]) -> list[str]:
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return out


# ---------------------------------------------------------------------------
# Per-benchmark headline extractors.  Each returns (headline, lines).
# ---------------------------------------------------------------------------


def _mode_rows(scenarios, label_of):
    """Rows for the mode-comparison benches (atom_pruning, batch_solver)."""
    rows = []
    for entry in scenarios:
        modes = entry["modes"]
        names = list(modes)
        base = modes[names[0]]["wall_ms"]
        for name in names:
            rows.append(
                [
                    label_of(entry),
                    name,
                    modes[name]["wall_ms"],
                    base / max(modes[name]["wall_ms"], 1e-9),
                    modes[name].get("kinetic_solves", ""),
                ]
            )
    return rows


def report_atom_pruning(data):
    scenarios = [
        dict(entry, scenario=scn)
        for scn, entries in data["scenarios"].items()
        for entry in entries
    ]
    rows = _mode_rows(scenarios, lambda e: f"{e['scenario']} n={e['n']}")
    best = max(row[3] for row in rows)
    return f"best {best:.1f}x vs exhaustive", table(
        ["scenario", "mode", "wall_ms", "speedup", "solves"], rows
    )


def report_batch_solver(data):
    rows = _mode_rows(
        data["scenarios"], lambda e: f"{e['scenario']} n={e['n']}"
    )
    best = max(row[3] for row in rows)
    return f"best {best:.1f}x vs scalar", table(
        ["scenario", "mode", "wall_ms", "speedup", "solves"], rows
    )


def report_plan_order(data):
    rows = [
        [name, s["syntactic_ms"], s["ordered_ms"], s["speedup"], s["rows"]]
        for name, s in data["scenarios"].items()
    ]
    best = max(s["speedup"] for s in data["scenarios"].values())
    return f"best {best:.1f}x from cost-ordered plans", table(
        ["scenario", "syntactic_ms", "ordered_ms", "speedup", "rows"], rows
    )


def report_validity_reuse(data):
    rows = [
        [
            f"n={f['n']}",
            f["plain"]["refresh_ms"],
            f["stamped"]["refresh_ms"],
            f["plain"]["refresh_ms"] / max(f["stamped"]["refresh_ms"], 1e-9),
            f["stamped"]["horizon_skipped"],
        ]
        for f in data["fleets"]
    ]
    best = max(row[3] for row in rows)
    return f"best {best:.1f}x refresh from validity stamps", table(
        ["fleet", "plain_ms", "stamped_ms", "speedup", "horizon_skipped"],
        rows,
    )


def report_cq_server(data):
    rows = [
        [
            f["subscribers"],
            f["updates_per_sec"],
            f["refresh_p50_ms"],
            f["refresh_p99_ms"],
        ]
        for f in data["fanout"]
    ]
    peak = max(f["updates_per_sec"] for f in data["fanout"])
    bp = data.get("backpressure", {})
    lines = table(
        ["subscribers", "updates/s", "refresh_p50_ms", "refresh_p99_ms"],
        rows,
    )
    if bp:
        lines.append("")
        lines.append(
            f"Backpressure: high-water {bp.get('inbox_high_water')}/"
            f"{bp.get('inbox_capacity')}, "
            f"{bp.get('busy_signals')} busy signals, "
            f"{bp.get('updates_applied')} applied."
        )
    return f"peak {peak:.0f} updates/s", lines


def report_sharded_eval(data):
    rows = [
        [
            c["n"],
            c["workers"],
            c["wall_s"],
            c["wall_speedup"],
            c["critical_path_speedup"],
        ]
        for c in data["eval"]
    ]
    best = max(c["critical_path_speedup"] for c in data["eval"])
    lines = table(
        ["n", "workers", "wall_s", "wall_x", "critical_path_x"], rows
    )
    lines.append("")
    lines.append(
        f"Host CPU count: {data.get('host_cpu_count')} — wall speedups "
        "are honest time-sliced numbers; critical_path_x estimates real-"
        "core scaling (DESIGN.md §12)."
    )
    server = data.get("server", {})
    srows = server.get("rows", [])
    if srows:
        lines.append("")
        lines.extend(
            table(
                ["parallel", "subscribers", "refresh_p50_ms", "updates/s"],
                [
                    [
                        r["parallel"],
                        r["subscribers"],
                        r["refresh_p50_ms"],
                        r["updates_per_sec"],
                    ]
                    for r in srows
                ],
            )
        )
        ref = server.get("reference_e14")
        if ref:
            lines.append(
                f"E14 reference at the same subscriber count: "
                f"p50 {fmt(ref['refresh_p50_ms'])} ms, "
                f"{fmt(ref['updates_per_sec'])} updates/s."
            )
    return f"best critical-path {best:.2f}x", lines


EXTRACTORS = {
    "atom_pruning": report_atom_pruning,
    "batch_solver": report_batch_solver,
    "plan_order": report_plan_order,
    "validity_reuse": report_validity_reuse,
    "cq_server": report_cq_server,
    "sharded_eval": report_sharded_eval,
}


def report_generic(data):
    keys = ", ".join(sorted(data)) if isinstance(data, dict) else type(data)
    return "no extractor for this shape", [f"Top-level keys: {keys}"]


def build_report(paths: list[Path]) -> str:
    sections: list[str] = []
    summary_rows: list[list[object]] = []
    for path in sorted(paths):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            summary_rows.append([path.name, "-", f"unreadable: {exc}"])
            continue
        name = data.get("benchmark", path.stem) if isinstance(data, dict) else path.stem
        extractor = EXTRACTORS.get(name, report_generic)
        try:
            headline, lines = extractor(data)
        except (KeyError, TypeError, ValueError) as exc:
            headline, lines = report_generic(data)
            headline = f"extractor failed ({exc})"
        smoke = isinstance(data, dict) and data.get("smoke")
        summary_rows.append(
            [name, "smoke" if smoke else "full", headline]
        )
        sections.append(f"## {name} (`{path.name}`)")
        if smoke:
            sections.append(
                "*Smoke-sized run — numbers are for wiring checks, "
                "not comparisons.*"
            )
        sections.extend(lines)
        sections.append("")
    header = [
        "# Benchmark report",
        "",
        "Collated from the committed `BENCH_*.json` results by "
        "`benchmarks/bench_report.py`.",
        "",
        "## Summary",
    ]
    header.extend(table(["benchmark", "run", "headline"], summary_rows))
    header.append("")
    return "\n".join(header + sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=ROOT / "BENCH_REPORT.md",
        help="output markdown path (default: BENCH_REPORT.md at repo root)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=ROOT,
        help="directory scanned for BENCH_*.json (default: repo root)",
    )
    args = parser.parse_args(argv)
    paths = sorted(args.root.glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json under {args.root}")
        return 1
    args.out.write_text(build_report(paths))
    print(f"wrote {args.out} ({len(paths)} benchmark files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
