"""E11 — cost-based conjunct ordering: ordered vs syntactic plans.

The skewed workload is the classic join-ordering setup: a three-class
chain ``DIST(c, v) <= r AND DIST(v, w) <= r AND c.price <= cheap`` whose
syntactic order materialises the full ``|c| x |v| x |w|`` distance-join
intermediate before the highly selective price filter touches it.  The
cost-based orderer runs the price filter first, so every later join
probes a relation of a few rows instead of a few hundred.

A second scenario drives the filter's selectivity to zero (no car is
cheap enough): the ordered plan's empty-relation guard then skips the
distance atoms entirely.

Results are registered as a table and also written to
``BENCH_plan_order.json`` at the repo root (the perf-trajectory
artifact CI archives).
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.core import FutureHistory, MostDatabase, ObjectClass
from repro.ftl import parse_query
from repro.geometry import Point

HORIZON = 60
PER_CLASS = 24
CHEAP_CUTOFF = 10  # ~2 of PER_CLASS cars qualify
REPEATS = 3

QUERY = (
    "RETRIEVE c FROM cars c, vans v, wagons w "
    "WHERE DIST(c, v) <= 900 AND DIST(v, w) <= 900 AND c.price <= {cutoff}"
)

RESULT_PATH = Path(__file__).parents[1] / "BENCH_plan_order.json"


def build_world() -> MostDatabase:
    db = MostDatabase()
    db.create_class(
        ObjectClass("cars", static_attributes=("price",), spatial_dimensions=2)
    )
    db.create_class(ObjectClass("vans", spatial_dimensions=2))
    db.create_class(ObjectClass("wagons", spatial_dimensions=2))
    rng = random.Random(42)
    for cls in ("cars", "vans", "wagons"):
        for i in range(PER_CLASS):
            kwargs = {}
            if cls == "cars":
                # Skewed static attribute: price 1..PER_CLASS, so a
                # cutoff of CHEAP_CUTOFF% keeps only the cheapest few.
                kwargs["static"] = {"price": float(i * 100 / PER_CLASS)}
            db.add_moving_object(
                cls,
                f"{cls[0]}{i}",
                Point(rng.uniform(-100, 100), rng.uniform(-100, 100)),
                Point(rng.uniform(-3, 3), rng.uniform(-3, 3)),
                **kwargs,
            )
    return db


def timed_eval(query, history, ordered: bool) -> tuple[float, object]:
    """Best-of-REPEATS wall time of a full evaluation."""
    best = float("inf")
    relation = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        relation = query.evaluate_full(
            history, HORIZON, method="interval", ordered=ordered
        )
        best = min(best, time.perf_counter() - start)
    return best, relation


def run_scenario(cutoff: float) -> dict:
    db = build_world()
    query = parse_query(QUERY.format(cutoff=cutoff))
    history = FutureHistory(db)
    t_syntactic, r_syntactic = timed_eval(query, history, ordered=False)
    t_ordered, r_ordered = timed_eval(query, history, ordered=True)
    key = lambda r: sorted(  # noqa: E731
        (inst, tuple((i.start, i.end) for i in iset.intervals))
        for inst, iset in r.rows()
    )
    assert key(r_ordered) == key(r_syntactic), "orderer changed the answer"
    plan = query.plan_for(history=history, horizon=HORIZON)
    return {
        "cutoff": cutoff,
        "rows": len(key(r_ordered)),
        "reordered": plan.reordered,
        "syntactic_ms": t_syntactic * 1e3,
        "ordered_ms": t_ordered * 1e3,
        "speedup": t_syntactic / max(t_ordered, 1e-9),
    }


def test_ordered_plans_beat_syntactic_order(record_table):
    skewed = run_scenario(CHEAP_CUTOFF)
    empty = run_scenario(-1.0)  # no car qualifies: empty-guard short-circuit
    rows = [
        [
            name,
            s["rows"],
            round(s["syntactic_ms"], 2),
            round(s["ordered_ms"], 2),
            round(s["speedup"], 1),
        ]
        for name, s in (("skewed filter", skewed), ("empty filter", empty))
    ]
    record_table(
        "E11: cost-based conjunct ordering on a 3-class distance chain "
        f"({PER_CLASS} objects/class, horizon {HORIZON}; best of "
        f"{REPEATS})",
        ["scenario", "answer rows", "syntactic ms", "ordered ms", "speedup x"],
        rows,
    )
    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "plan_order",
                "per_class": PER_CLASS,
                "horizon": HORIZON,
                "scenarios": {"skewed": skewed, "empty": empty},
            },
            indent=2,
        )
        + "\n"
    )

    for scenario in (skewed, empty):
        assert scenario["reordered"], "orderer left the skewed plan alone"
    # The measurable win the plan layer exists for: running the selective
    # price filter first must beat the syntactic join-first order...
    assert skewed["ordered_ms"] < skewed["syntactic_ms"] * 0.8, skewed
    # ...and an empty filter must short-circuit the distance joins.
    assert empty["rows"] == 0
    assert empty["ordered_ms"] < empty["syntactic_ms"] * 0.5, empty
