"""E15 — temporal-validity horizons on a slow-changing fleet.

The validity analyzer (DESIGN.md §11) stamps every continuous query with
a per-node horizon: as long as no motion event lands inside the query's
remaining window, covered updates that re-announce the *same* trajectory
(heartbeats — the overwhelming majority of traffic from well-behaved
reporters) are provably answer-preserving and are dropped at the
listener without dirtying the query.

This benchmark drives an identical update stream — per-epoch exact
re-anchor heartbeats for every vehicle, plus a rare genuinely new motion
vector — through two continuous queries on twin databases: one with the
horizon gate (the default) and one built with
``validity_horizons=False``.  All values are dyadic so heartbeat
re-anchoring is float-exact.  Answers are asserted identical epoch for
epoch; the table reports evaluations, skips, window-shift cache hits and
refresh wall time.

Results land in ``BENCH_validity_reuse.json`` at the repo root (archived
by CI).  ``VALIDITY_SMOKE=1`` shrinks the sweep to a seconds-long CI run
and relaxes the >=5x refresh-cost assertion (tiny epoch counts don't
amortise the initial evaluation).
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.core import ContinuousQuery, MostDatabase, ObjectClass
from repro.ftl import parse_query
from repro.geometry import Point
from repro.spatial import Polygon

SMOKE = os.environ.get("VALIDITY_SMOKE") == "1"

EPOCHS = 10 if SMOKE else 40
SIZES = [8] if SMOKE else [16, 48]
CHANGE_EVERY = 5 if SMOKE else 10  # one real motion change per this many epochs
HORIZON_SLACK = 8  # query window outlives the drive loop

QUERY = "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 8 INSIDE(o, P)"

RESULT_PATH = Path(__file__).parents[1] / "BENCH_validity_reuse.json"

# Dyadic velocities: value_at re-anchoring stays float-exact, so a
# heartbeat is bit-identical to the trajectory it re-announces.
VELOCITIES = (-2.0, -1.0, -0.5, 0.5, 1.0, 2.0)


def build_world(n: int) -> MostDatabase:
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(-10, -10, 10, 10))
    rng = random.Random(99)
    for i in range(n):
        db.add_moving_object(
            "cars",
            f"c{i}",
            Point(rng.randrange(-32, 32) / 2.0, rng.randrange(-32, 32) / 2.0),
            Point(rng.choice(VELOCITIES), rng.choice(VELOCITIES)),
        )
    return db


def heartbeat(db: MostDatabase, oid: str) -> None:
    """Re-announce the object's exact current motion law."""
    obj = db.get(oid)
    now = db.clock.now
    x = obj.dynamic_attribute("x_position")
    y = obj.dynamic_attribute("y_position")
    db.update_motion(
        oid,
        Point(x.function.value(1.0), y.function.value(1.0)),
        position=Point(x.value_at(now), y.value_at(now)),
    )


def drive(n: int, validity: bool) -> dict:
    """One full run: returns per-epoch answers plus the cost counters."""
    db = build_world(n)
    cq = ContinuousQuery(
        db,
        parse_query(QUERY),
        horizon=EPOCHS + HORIZON_SLACK,
        validity_horizons=validity,
    )
    rng = random.Random(7)  # same stream for both runs
    answers = [cq.current()]
    refresh_s = 0.0
    for epoch in range(EPOCHS):
        db.clock.tick()
        for i in range(n):
            heartbeat(db, f"c{i}")
        if epoch % CHANGE_EVERY == CHANGE_EVERY - 1:
            db.update_motion(
                f"c{rng.randrange(n)}",
                Point(rng.choice(VELOCITIES), rng.choice(VELOCITIES)),
            )
        start = time.perf_counter()
        cq.refresh()
        answers.append(cq.current())
        refresh_s += time.perf_counter() - start
    out = {
        "answers": answers,
        "evaluations": cq.evaluations,
        "horizon_skipped": cq.horizon_skipped,
        "shift_hits": db.kinetic_cache.shift_hits,
        "refresh_ms": refresh_s * 1e3,
    }
    cq.cancel()
    return out


def test_validity_reuse_cuts_refresh_cost(record_table):
    report: dict = {
        "benchmark": "validity_reuse",
        "epochs": EPOCHS,
        "change_every": CHANGE_EVERY,
        "smoke": SMOKE,
        "query": QUERY,
        "fleets": [],
    }
    rows = []
    for n in SIZES:
        stamped = drive(n, validity=True)
        plain = drive(n, validity=False)
        assert stamped.pop("answers") == plain.pop("answers"), (
            f"horizon gating changed an answer at n={n}"
        )
        report["fleets"].append({"n": n, "stamped": stamped, "plain": plain})
        rows.append(
            [
                n,
                plain["evaluations"],
                stamped["evaluations"],
                stamped["horizon_skipped"],
                stamped["shift_hits"],
                round(plain["refresh_ms"], 2),
                round(stamped["refresh_ms"], 2),
                round(
                    plain["refresh_ms"] / max(stamped["refresh_ms"], 1e-9), 1
                ),
            ]
        )
    record_table(
        "E15: temporal-validity reuse on a slow-changing fleet "
        f"({EPOCHS} epochs, heartbeats every epoch, one real motion "
        f"change per {CHANGE_EVERY})",
        [
            "n",
            "evals plain",
            "evals stamped",
            "skipped",
            "shift hits",
            "plain ms",
            "stamped ms",
            "speedup x",
        ],
        rows,
    )
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    for fleet in report["fleets"]:
        stamped, plain = fleet["stamped"], fleet["plain"]
        # The gate must actually fire, and can only ever reduce work.
        assert stamped["horizon_skipped"] > 0, fleet
        assert stamped["evaluations"] <= plain["evaluations"], fleet
        assert plain["horizon_skipped"] == 0, fleet
    if SMOKE:
        return
    # The acceptance bar: on the largest fleet the stamped query
    # re-evaluates >=5x less often, and refresh wall time drops >=5x.
    top = report["fleets"][-1]
    assert top["plain"]["evaluations"] >= 5 * top["stamped"]["evaluations"], top
    assert (
        top["plain"]["refresh_ms"] >= 5 * top["stamped"]["refresh_ms"]
    ), top
