"""Ablation B — analytic kinetic solvers vs per-tick atom sampling.

The appendix base case assumes "a routine which ... gives us the intervals
during which the relation is satisfied."  Our implementation solves those
intervals in closed form for piecewise-linear motion; this ablation turns
the closed forms off (every atom falls back to per-tick evaluation) to
quantify their contribution to the interval algorithm's horizon-
independence.
"""

from __future__ import annotations

import time

from repro.core import FutureHistory, MostDatabase
from repro.ftl import parse_query
from repro.ftl.context import EvalContext
from repro.ftl.evaluator import IntervalEvaluator
from repro.spatial import Polygon
from repro.workloads import random_fleet

QUERY = (
    "RETRIEVE o, n FROM objects o, objects n "
    "WHERE DIST(o, n) <= 30 UNTIL (INSIDE(o, P) AND INSIDE(n, P))"
)
N_OBJECTS = 8


def build_db() -> MostDatabase:
    db = MostDatabase()
    random_fleet(db, N_OBJECTS, area=(0, 300), speed_range=(-4, 4), seed=5)
    db.define_region("P", Polygon.rectangle(50, 50, 250, 250))
    return db


def run(horizon: int, analytic: bool):
    db = build_db()
    query = parse_query(QUERY)
    ctx = EvalContext(FutureHistory(db), horizon, query.bindings)
    evaluator = IntervalEvaluator(ctx, analytic_atoms=analytic)
    start = time.perf_counter()
    relation = evaluator.evaluate(query.where)
    elapsed = time.perf_counter() - start
    return relation, elapsed, evaluator.kinetic_solves, evaluator.sampled_atom_evals


def test_analytic_vs_sampled_atoms(benchmark, record_table):
    rows = []
    for horizon in (50, 100, 200):
        rel_a, t_a, solves, sampled_a = run(horizon, analytic=True)
        rel_s, t_s, _solves_s, sampled_s = run(horizon, analytic=False)
        # Both paths must produce the identical relation.
        assert dict(rel_a.rows()) == dict(rel_s.rows())
        rows.append(
            [
                horizon,
                solves,
                sampled_a,
                round(t_a * 1e3, 1),
                sampled_s,
                round(t_s * 1e3, 1),
                round(t_s / max(t_a, 1e-9), 1),
            ]
        )
    record_table(
        "Ablation B: interval algorithm with analytic kinetic atoms vs "
        f"per-tick sampled atoms ({N_OBJECTS} objects, pair query)",
        [
            "horizon",
            "kinetic solves",
            "sampled (analytic)",
            "analytic ms",
            "sampled evals",
            "sampled ms",
            "slowdown x",
        ],
        rows,
    )
    # Sampled-atom work grows linearly with the horizon; analytic doesn't.
    assert rows[-1][4] > rows[0][4] * 3
    assert rows[0][2] == 0  # fully analytic: nothing sampled

    benchmark(lambda: run(100, True))
