"""E3 — indexing dynamic attributes gives ~logarithmic access (section 4).

"We introduce one possible method of indexing dynamic attributes, which
guarantees logarithmic (in the number of objects) access time."

We plot N function-lines into the section 4 structures and probe a narrow
instantaneous range.  Expected shape: the full scan examines all N
objects; the index touches a node count that grows far slower than N
(logarithmic in the tree depth, plus output size), and wall-clock probe
time follows.
"""

from __future__ import annotations

import time

from repro.index import DynamicAttributeIndex
from repro.workloads import random_attributes

SIZES = (256, 1024, 4096, 16384)
PROBE = (0.0, 5.0)
AT_TIME = 50.0


def build(n: int, structure: str) -> DynamicAttributeIndex:
    # The region decomposition stores a segment in every cell its
    # function-line crosses (the paper's scheme), so build cost grows with
    # depth; depth 6 keeps construction tractable while preserving the
    # sub-linear probe behaviour the experiment measures.
    index = DynamicAttributeIndex(
        epoch=0,
        horizon=100,
        value_lo=-500,
        value_hi=500,
        structure=structure,
        node_capacity=32,
        max_depth=6,
    )
    for object_id, attr in random_attributes(
        n, value_range=(-400, 400), speed_range=(-2, 2), seed=13
    ):
        index.insert(object_id, attr)
    return index


def timed_probe(index: DynamicAttributeIndex) -> tuple[set, float]:
    start = time.perf_counter()
    result = index.instantaneous_range(*PROBE, at_time=AT_TIME)
    return result, time.perf_counter() - start


def timed_scan(index: DynamicAttributeIndex) -> tuple[set, float]:
    start = time.perf_counter()
    result = index.scan_range(*PROBE, at_time=AT_TIME)
    return result, time.perf_counter() - start


def test_index_access_scaling(benchmark, record_table):
    rows = []
    for n in SIZES:
        region = build(n, "regiontree")
        rtree = build(n, "rtree")
        hits_region, t_region = timed_probe(region)
        region_nodes = region.last_nodes_visited
        hits_rtree, t_rtree = timed_probe(rtree)
        rtree_nodes = rtree.last_nodes_visited
        hits_scan, t_scan = timed_scan(region)
        assert hits_region == hits_rtree == hits_scan
        rows.append(
            [
                n,
                len(hits_scan),
                region_nodes,
                rtree_nodes,
                round(t_region * 1e6),
                round(t_rtree * 1e6),
                round(t_scan * 1e6),
            ]
        )
    index = build(SIZES[-1], "regiontree")
    benchmark(lambda: index.instantaneous_range(*PROBE, at_time=AT_TIME))
    record_table(
        "E3: instantaneous range probe, index vs full scan "
        f"(range {PROBE}, t={AT_TIME})",
        [
            "N",
            "hits",
            "regiontree nodes",
            "rtree nodes",
            "region us",
            "rtree us",
            "scan us",
        ],
        rows,
    )
    # Sub-linear access: scaling N by 64 must scale nodes visited far less.
    n_ratio = SIZES[-1] / SIZES[0]
    nodes_ratio = rows[-1][2] / max(1, rows[0][2])
    assert nodes_ratio < n_ratio / 4, (
        f"index access grew too fast: {nodes_ratio} vs N ratio {n_ratio}"
    )
