"""E8 — immediate vs delayed vs periodic Answer(CQ) transmission (§5.2).

"The choice between the immediate and delayed approaches depends on ...
the probability that an update to Answer(CQ) can be propagated to M (i.e.
that M is not disconnected) before the effects of the update need to be
displayed [and] the frequency of updates to Answer(CQ)."

We sweep disconnection load and client memory, reporting messages sent and
display staleness per policy.  Expected shape: immediate minimises message
count and is robust to later disconnection (everything already shipped);
delayed needs the least memory but suffers when begin times fall inside
offline windows; periodic interpolates.
"""

from __future__ import annotations

import random

from repro.distributed import (
    DelayedPolicy,
    ImmediatePolicy,
    PeriodicPolicy,
    simulate_transmission,
)
from repro.ftl.relations import AnswerTuple

HORIZON = 120


def make_answer(n: int, seed: int = 5) -> list[AnswerTuple]:
    rng = random.Random(seed)
    out = []
    for i in range(n):
        begin = rng.randint(0, HORIZON - 20)
        out.append(AnswerTuple((f"m{i}",), begin, begin + rng.randint(4, 18)))
    return out


def make_offline(load: float, seed: int = 9) -> list[tuple[float, float]]:
    rng = random.Random(seed)
    windows = []
    t = 0.0
    while t < HORIZON:
        if rng.random() < load:
            width = rng.randint(3, 10)
            windows.append((t, min(HORIZON, t + width)))
            t += width
        t += 5
    return windows


POLICIES = (
    ("immediate", ImmediatePolicy),
    ("delayed", DelayedPolicy),
    ("periodic/10", lambda: PeriodicPolicy(period=10)),
)


def run(policy_factory, offline_load: float, memory: int | None):
    return simulate_transmission(
        policy_factory(),
        make_answer(30),
        horizon=HORIZON,
        client_memory=memory,
        disconnections=make_offline(offline_load),
    )


def test_transmission_policies(benchmark, record_table):
    rows = []
    for load in (0.0, 0.3, 0.7):
        for memory in (None, 8, 3):
            for name, factory in POLICIES:
                report = run(factory, load, memory)
                rows.append(
                    [
                        f"{load:.0%}",
                        memory if memory is not None else "inf",
                        name,
                        report.messages,
                        report.dropped_messages,
                        report.staleness,
                    ]
                )
    record_table(
        "E8: Answer(CQ) transmission policies under disconnection and "
        "memory limits (30 tuples, horizon 120)",
        ["offline load", "B", "policy", "messages", "dropped", "staleness"],
        rows,
    )

    # Shape checks: with no disconnection and no memory limit every policy
    # is perfect, and immediate uses the fewest messages.
    perfect = [r for r in rows if r[0] == "0%" and r[1] == "inf"]
    assert all(r[5] == 0 for r in perfect)
    immediate_msgs = [r[3] for r in perfect if r[2] == "immediate"][0]
    delayed_msgs = [r[3] for r in perfect if r[2] == "delayed"][0]
    assert immediate_msgs < delayed_msgs

    # Under heavy disconnection, delayed accumulates more staleness than
    # immediate (which shipped everything up front).
    heavy = [r for r in rows if r[0] == "70%" and r[1] == "inf"]
    stale = {r[2]: r[5] for r in heavy}
    assert stale["immediate"] <= stale["delayed"]

    benchmark(lambda: run(ImmediatePolicy, 0.3, 8))
