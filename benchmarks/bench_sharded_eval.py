"""E16 — sharded parallel evaluation (DESIGN.md §12).

Dense single-class worlds; a conjunctive query whose atoms all mention
the split variable, so every atom scan shards.  For each (n, workers)
cell the bench reports:

* ``wall_speedup`` — serial wall time over sharded wall time.  On a
  single-core host the workers time-slice one CPU, so this is honestly
  ~1x or below; ``host_cpu_count`` is recorded so readers can tell.
* ``critical_path_speedup`` — serial CPU time over the sharded
  *critical path*: orchestration overhead (wall minus the widest shard
  span) plus the largest per-shard CPU time.  CPU time is what a
  dedicated core would take, so this is the machine-independent signal
  the 1-core CI host can still measure.

A second section registers the same queries on two CQ servers — serial
and ``parallel=2`` — under identical update streams and reports the
refresh p50 against the E14 reference numbers in
``BENCH_cq_server.json``.

Results go to ``BENCH_sharded_eval.json`` at the repo root.
``SHARDED_EVAL_SMOKE=1`` shrinks the sweep to a seconds-long CI run.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time
from pathlib import Path

from repro.core import MostDatabase, ObjectClass
from repro.core.history import FutureHistory
from repro.distributed.network import SimNetwork
from repro.distributed.node import MobileNode
from repro.ftl import AndF, Attr, Compare, Const, FtlQuery, Inside, Var
from repro.geometry import Point
from repro.motion import linear_moving_point
from repro.parallel import shutdown_pools
from repro.parallel.evaluator import ShardedIntervalEvaluator
from repro.server import BatchingReporter, CQServer, SubscriberClient
from repro.spatial import Polygon
from repro.temporal import SimulationClock

SMOKE = os.environ.get("SHARDED_EVAL_SMOKE") == "1"

SIZES = [200] if SMOKE else [1_000, 10_000]
WORKER_COUNTS = [2] if SMOKE else [2, 4]
HORIZON = 16
SEED = 2026

SUBSCRIBERS = 4 if SMOKE else 16
SERVER_EPOCHS = 20 if SMOKE else 120
N_TRACKERS = 3 if SMOKE else 8
REPORT_P = 0.5

RESULT_PATH = Path(__file__).parents[1] / "BENCH_sharded_eval.json"
REFERENCE_PATH = Path(__file__).parents[1] / "BENCH_cq_server.json"


def build_world(n: int) -> MostDatabase:
    rng = random.Random(SEED)
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(-40, -40, 40, 40))
    for i in range(n):
        db.add_moving_object(
            "cars",
            f"c{i}",
            Point(rng.randint(-60, 60), rng.randint(-60, 60)),
            Point(rng.randint(-3, 3), rng.randint(-3, 3)),
        )
    return db


def dense_query() -> FtlQuery:
    """Both atoms mention the split variable — fully shardable."""
    return FtlQuery(
        targets=("c",),
        bindings={"c": "cars"},
        where=AndF(
            Inside(Var("c"), "P"),
            Compare("<=", Attr(Var("c"), "x_position"), Const(10)),
        ),
    )


def rows_of(relation):
    return sorted((inst, iset.intervals) for inst, iset in relation.rows())


def run_cell(db: MostDatabase, n: int, workers: int, serial_s: float,
             serial_cpu: float, serial_rows) -> dict:
    history = FutureHistory(db)
    ev = ShardedIntervalEvaluator(dense_query(), history, HORIZON, workers)
    t0 = time.perf_counter()
    merged = ev.evaluate()
    wall = time.perf_counter() - t0
    assert ev.sharded, "dense worlds must shard"
    assert rows_of(merged) == serial_rows, "sharded must equal serial"
    # Overhead the parent pays serially (snapshot ship, dispatch, merge)
    # plus the widest shard's CPU time = the wall a machine with enough
    # real cores would see.
    overhead = max(wall - max(ev.shard_times), 0.0)
    critical_path = max(overhead + max(ev.shard_cpu_times), 1e-9)
    return {
        "n": n,
        "workers": workers,
        "shards": len(ev.shard_times),
        "wall_s": wall,
        "shard_times_s": list(ev.shard_times),
        "shard_cpu_s": list(ev.shard_cpu_times),
        "critical_path_s": critical_path,
        "wall_speedup": serial_s / max(wall, 1e-9),
        "critical_path_speedup": serial_cpu / critical_path,
    }


def run_size(n: int) -> list[dict]:
    db = build_world(n)
    history = FutureHistory(db)
    query = dense_query()
    t0 = time.perf_counter()
    c0 = time.process_time()
    serial_ev = ShardedIntervalEvaluator(query, history, HORIZON, 1)
    serial_rel = serial_ev.evaluate()
    serial_cpu = time.process_time() - c0
    serial_s = time.perf_counter() - t0
    serial_rows = rows_of(serial_rel)
    out = [
        {
            "n": n,
            "workers": 1,
            "shards": 1,
            "wall_s": serial_s,
            "shard_times_s": [serial_s],
            "shard_cpu_s": [serial_cpu],
            "critical_path_s": serial_cpu,
            "wall_speedup": 1.0,
            "critical_path_speedup": 1.0,
        }
    ]
    for workers in WORKER_COUNTS:
        out.append(run_cell(db, n, workers, serial_s, serial_cpu, serial_rows))
    return out


# ---------------------------------------------------------------------------
# Server refresh under parallel evaluation
# ---------------------------------------------------------------------------


def build_server_world(n_subscribers: int, parallel: object):
    clock = SimulationClock()
    db = MostDatabase(clock)
    network = SimNetwork(clock)
    db.create_class(ObjectClass("trackers", spatial_dimensions=2))
    db.create_class(ObjectClass("beacons", spatial_dimensions=2))
    db.add_moving_object("beacons", "beacon", Point(0.0, 0.0))
    server = CQServer(
        db, network, inbox_capacity=4096, batch_limit=4096, parallel=parallel
    )
    reporters = []
    for i in range(N_TRACKERS):
        oid = f"tracker-{i}"
        start = Point(10.0 * i - 30.0, 0.0)
        db.add_moving_object("trackers", oid, start, Point(1.0, 0.0))
        db.track(oid)
        node = MobileNode(
            oid, network, linear_moving_point(start, Point(1.0, 0.0))
        )
        reporters.append(BatchingReporter(node, object_id=oid))
    clients = [
        SubscriberClient(
            network,
            f"sub-{i}",
            "RETRIEVE v FROM trackers v, beacons b "
            f"WHERE DIST(v, b) <= {40 + 2 * i}",
            horizon=SERVER_EPOCHS * 4,
        )
        for i in range(n_subscribers)
    ]
    return db, network, server, reporters, clients


async def drive_server(server, reporters, epochs: int) -> float:
    rng = random.Random(SEED)
    start = time.perf_counter()
    for _ in range(epochs):
        for rep in reporters:
            if rng.random() < REPORT_P:
                rep.report(
                    Point(float(rng.randint(-2, 2)), float(rng.randint(-2, 2)))
                )
        await server.run_epoch()
    return time.perf_counter() - start


def run_server(parallel: object) -> dict:
    db, network, server, reporters, clients = build_server_world(
        SUBSCRIBERS, parallel
    )
    elapsed = asyncio.run(drive_server(server, reporters, SERVER_EPOCHS))
    m = server.metrics
    assert all(c.subscribed for c in clients)
    return {
        "parallel": parallel if parallel is not None else 1,
        "subscribers": SUBSCRIBERS,
        "epochs": SERVER_EPOCHS,
        "elapsed_s": elapsed,
        "updates_applied": m.updates_applied,
        "updates_per_sec": m.updates_applied / max(elapsed, 1e-9),
        "refresh_p50_ms": m.refresh_latency.percentile(50) * 1e3,
        "refresh_p99_ms": m.refresh_latency.percentile(99) * 1e3,
    }


def reference_fanout() -> dict | None:
    """The E14 numbers this section is compared against, when present."""
    try:
        data = json.loads(REFERENCE_PATH.read_text())
    except (OSError, ValueError):
        return None
    for row in data.get("fanout", []):
        if row.get("subscribers") == SUBSCRIBERS:
            return {
                "refresh_p50_ms": row.get("refresh_p50_ms"),
                "updates_per_sec": row.get("updates_per_sec"),
            }
    return None


def test_sharded_eval_speedup(record_table):
    cells = []
    for n in SIZES:
        cells.extend(run_size(n))
    server_rows = [run_server(None), run_server(2)]
    shutdown_pools()
    report = {
        "benchmark": "sharded_eval",
        "smoke": SMOKE,
        "seed": SEED,
        "horizon": HORIZON,
        "host_cpu_count": os.cpu_count(),
        "query": "Inside(c, P) AND c.x_position <= 10",
        "eval": cells,
        "server": {
            "rows": server_rows,
            "reference_e14": reference_fanout(),
        },
    }
    record_table(
        "E16 sharded evaluation (host_cpu_count="
        f"{os.cpu_count()}; wall speedups are honest 1-core numbers, "
        "critical_path is the machine-independent signal)",
        ["n", "workers", "wall_s", "wall_x", "critical_path_x"],
        [
            [c["n"], c["workers"], c["wall_s"], c["wall_speedup"],
             c["critical_path_speedup"]]
            for c in cells
        ],
    )
    record_table(
        "E16 server refresh under parallel evaluation",
        ["parallel", "subscribers", "refresh_p50_ms", "updates_per_sec"],
        [
            [r["parallel"], r["subscribers"], r["refresh_p50_ms"],
             r["updates_per_sec"]]
            for r in server_rows
        ],
    )
    RESULT_PATH.write_text(json.dumps(report, indent=1))
    # Exactness already asserted per cell; the perf acceptance bar is
    # conditional on real parallel hardware.
    if (os.cpu_count() or 1) >= 4 and not SMOKE:
        best = max(
            c["wall_speedup"] for c in cells
            if c["workers"] == 4 and c["n"] >= 10_000
        )
        assert best >= 2.5, f"expected >= 2.5x at 4 workers, got {best:.2f}x"
