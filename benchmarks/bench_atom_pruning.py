"""E12 — index-pruned atoms and the shared kinetic-solve cache.

The atom base case is where the interval evaluator spends its time on
proximity workloads: ``O(n^2)`` closed-form solves for ``DIST``/
``WITHIN_SPHERE`` atoms, one per instantiation.  This benchmark measures
the two acceleration layers of DESIGN.md §7 on two fleet shapes:

* **sparse** — objects spread over ±2000 with a small region and small
  proximity radius, so almost every instantiation is prunable (the
  regime the R-tree exists for);
* **clustered** — the same population packed into ±100, where pruning
  can discard little and the overhead of building the trajectory index
  must stay negligible.

Three modes per scenario: ``exhaustive`` (both layers off),
``pruned`` (index pruning only), and ``pruned+cached`` (the default
configuration).  Kinetic-solve counts come from the evaluator's own
counters; answers are asserted identical across modes, tuple for tuple.

Results are registered as a table and written to
``BENCH_atom_pruning.json`` at the repo root (archived by CI next to
``BENCH_plan_order.json``).  Setting ``ATOM_PRUNING_SMOKE=1`` shrinks
the sweep to a seconds-long CI smoke run and skips the speedup
assertions (tiny sizes don't amortise the index build).
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.core import FutureHistory, MostDatabase, ObjectClass
from repro.ftl import parse_query
from repro.ftl.context import EvalContext
from repro.ftl.evaluator import IntervalEvaluator
from repro.geometry import Point
from repro.spatial import Polygon

SMOKE = os.environ.get("ATOM_PRUNING_SMOKE") == "1"

HORIZON = 24 if SMOKE else 60
SIZES = [8] if SMOKE else [16, 32, 64]
REPEATS = 1 if SMOKE else 3

QUERY = (
    "RETRIEVE c FROM cars c, vans v "
    "WHERE DIST(c, v) <= 5 AND EVENTUALLY INSIDE(c, P)"
)

RESULT_PATH = Path(__file__).parents[1] / "BENCH_atom_pruning.json"

MODES = {
    "exhaustive": dict(index_pruning=False, solve_cache=False),
    "pruned": dict(index_pruning=True, solve_cache=False),
    "pruned+cached": dict(index_pruning=True, solve_cache=True),
}


def build_world(n: int, spread: float) -> MostDatabase:
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    db.create_class(ObjectClass("vans", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(-10, -10, 10, 10))
    rng = random.Random(2025)
    for cls in ("cars", "vans"):
        for i in range(n):
            db.add_moving_object(
                cls,
                f"{cls[0]}{i}",
                Point(rng.uniform(-spread, spread), rng.uniform(-spread, spread)),
                Point(rng.uniform(-2, 2), rng.uniform(-2, 2)),
            )
    # Guaranteed survivors so every mode does some real solving.
    db.add_moving_object("cars", "c_near", Point(-3, 0), Point(1, 0))
    db.add_moving_object("vans", "v_near", Point(-2, 1), Point(1, 0))
    return db


def run_mode(db, query, plan, **flags) -> dict:
    """Best-of-REPEATS evaluation through a bare IntervalEvaluator (the
    evaluator owns the counters the table reports).

    Cacheless modes start every repeat cold.  The cached mode clears the
    db-wide cache only once, so later repeats run warm — the regime a
    continuous query's refreshes live in — and the reported counters are
    the last (warmest) repeat's."""
    best = float("inf")
    counters = None
    relation = None
    for i in range(REPEATS):
        if i == 0 or not flags.get("solve_cache"):
            db.kinetic_cache.clear()
        ctx = EvalContext(FutureHistory(db), HORIZON, query.bindings)
        evaluator = IntervalEvaluator(ctx, plan=plan, **flags)
        start = time.perf_counter()
        relation = evaluator.evaluate(query.where)
        best = min(best, time.perf_counter() - start)
        counters = evaluator.counters()
    return {"wall_ms": best * 1e3, "relation": relation, **counters}


def run_scenario(n: int, spread: float) -> dict:
    db = build_world(n, spread)
    query = parse_query(QUERY)
    plan = query.plan_for(history=FutureHistory(db), horizon=HORIZON)
    key = lambda r: sorted(  # noqa: E731
        (inst, tuple((i.start, i.end) for i in iset.intervals))
        for inst, iset in r.rows()
    )
    results = {}
    baseline = None
    for mode, flags in MODES.items():
        out = run_mode(db, query, plan, **flags)
        rows = key(out.pop("relation"))
        if baseline is None:
            baseline = rows
        else:
            assert rows == baseline, f"{mode} changed the answer at n={n}"
        results[mode] = out
    return {"n": n, "rows": len(baseline), "modes": results}


def test_index_pruning_cuts_solves_and_wall_time(record_table):
    scenarios = {"sparse": 2000.0, "clustered": 100.0}
    report: dict = {
        "benchmark": "atom_pruning",
        "horizon": HORIZON,
        "smoke": SMOKE,
        "query": QUERY,
        "scenarios": {},
    }
    rows = []
    for name, spread in scenarios.items():
        sweeps = [run_scenario(n, spread) for n in SIZES]
        report["scenarios"][name] = sweeps
        for s in sweeps:
            ex = s["modes"]["exhaustive"]
            pr = s["modes"]["pruned"]
            pc = s["modes"]["pruned+cached"]
            rows.append(
                [
                    name,
                    s["n"],
                    ex["kinetic_solves"],
                    pr["kinetic_solves"],
                    pc["kinetic_solves"],
                    pc["pruned_instantiations"],
                    round(ex["wall_ms"], 2),
                    round(pc["wall_ms"], 2),
                    round(ex["wall_ms"] / max(pc["wall_ms"], 1e-9), 1),
                ]
            )
    record_table(
        "E12: index-pruned atom evaluation "
        f"(2 classes, horizon {HORIZON}; best of {REPEATS}; solves = "
        "closed-form kinetic solver calls)",
        [
            "fleet",
            "n/class",
            "solves exh.",
            "solves pruned",
            "solves +cache",
            "pruned insts",
            "exh. ms",
            "accel ms",
            "speedup x",
        ],
        rows,
    )
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    # Pruning must never *increase* solve counts, anywhere.
    for name in scenarios:
        for s in report["scenarios"][name]:
            ex = s["modes"]["exhaustive"]
            pr = s["modes"]["pruned"]
            pc = s["modes"]["pruned+cached"]
            assert pr["kinetic_solves"] <= ex["kinetic_solves"], (name, s)
            assert pc["kinetic_solves"] <= pr["kinetic_solves"], (name, s)
            assert pr["pruned_instantiations"] > 0, (name, s)
    if SMOKE:
        return
    # The acceptance bar: on the sparse fleet at the largest size, >=5x
    # fewer kinetic solves and >=2x faster wall time than exhaustive.
    top = report["scenarios"]["sparse"][-1]
    ex = top["modes"]["exhaustive"]
    pc = top["modes"]["pruned+cached"]
    assert ex["kinetic_solves"] >= 5 * max(pc["kinetic_solves"], 1), top
    assert pc["wall_ms"] * 2 <= ex["wall_ms"], top
