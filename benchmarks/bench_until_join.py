"""E6 — the Until join's worst case is |R1| x |R2| (appendix).

"In the worst case, this algorithm may run in time proportional to the
product of the sizes of R1 and R2 respectively."

The worst case arises when the two operand relations share no variables:
every pair of rows joins.  We build such relations with n rows each and
time the join; expected shape: output rows = n^2 and time grows
quadratically in n.  For contrast, the shared-variable case (a 1:1 join)
stays linear.
"""

from __future__ import annotations

import time

from repro.core import FutureHistory, MostDatabase, ObjectClass
from repro.ftl.ast import Compare, Const, Attr, Inside, Until, Var
from repro.ftl.context import EvalContext
from repro.ftl.evaluator import IntervalEvaluator
from repro.geometry import Point
from repro.spatial import Polygon

SIZES = (8, 16, 32, 64)


def build_ctx(n: int) -> EvalContext:
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(-10_000, -10_000, 10_000, 10_000))
    for i in range(n):
        # Distinct positions; everyone is always inside the huge region P.
        db.add_moving_object("cars", f"c{i}", Point(float(i), 0.0), Point(1, 0))
    return EvalContext(
        FutureHistory(db), horizon=30, bindings={"o": "cars", "n": "cars"}
    )


def disjoint_until(ctx: EvalContext):
    """g1 over variable o, g2 over variable n: no shared variables."""
    evaluator = IntervalEvaluator(ctx)
    formula = Until(Inside(Var("o"), "P"), Inside(Var("n"), "P"))
    return evaluator.evaluate(formula)


def shared_until(ctx: EvalContext):
    """Both operands over the same variable: 1:1 join."""
    evaluator = IntervalEvaluator(ctx)
    formula = Until(
        Inside(Var("o"), "P"),
        Compare(">=", Attr(Var("o"), "x_position"), Const(0)),
    )
    return evaluator.evaluate(formula)


def test_until_join_worst_case(benchmark, record_table):
    rows = []
    for n in SIZES:
        ctx = build_ctx(n)
        start = time.perf_counter()
        rel = disjoint_until(ctx)
        t_disjoint = time.perf_counter() - start
        assert len(rel) == n * n  # the product join

        start = time.perf_counter()
        rel_shared = shared_until(ctx)
        t_shared = time.perf_counter() - start
        assert len(rel_shared) == n

        rows.append(
            [
                n,
                n * n,
                round(t_disjoint * 1e3, 2),
                n,
                round(t_shared * 1e3, 2),
            ]
        )
    record_table(
        "E6: Until join cost, disjoint-variable (worst case) vs shared-"
        "variable operands",
        ["|R1|=|R2|", "output (disjoint)", "disjoint ms", "output (shared)", "shared ms"],
        rows,
    )
    # Quadratic vs linear: scaling n by 8 must scale the disjoint time by
    # far more than the shared one.
    growth_disjoint = rows[-1][2] / max(rows[0][2], 1e-6)
    growth_shared = rows[-1][4] / max(rows[0][4], 1e-6)
    assert growth_disjoint > growth_shared

    ctx = build_ctx(24)
    benchmark(lambda: disjoint_until(ctx))
