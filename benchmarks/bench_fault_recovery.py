"""E7 — fault recovery cost: messages to convergence vs drop rate.

The ack/retry pipeline buys convergence under loss by spending
retransmissions.  We sweep the per-link drop probability and measure, per
chaos run, the message overhead over the fault-free twin and the extra
ticks of drain the retries need after the faults heal.  Expected shape:
both overheads grow with the drop rate (super-linearly as drops compound
with retry backoff), while every run still converges tuple-for-tuple.
"""

from __future__ import annotations

import statistics

from repro.workloads import ChaosConfig, run_chaos

SEEDS_PER_RATE = 8
DROP_RATES = (0.0, 0.1, 0.3, 0.5, 0.7)


def run_rate(drop: float) -> tuple[float, float, float, int]:
    """Returns (mean messages, mean overhead x, mean drain ticks, converged)."""
    messages, overhead, drain, converged = [], [], [], 0
    for seed in range(SEEDS_PER_RATE):
        # Other fault knobs pinned off so the sweep isolates the drop
        # rate (delays alone already race the retry timer).
        result = run_chaos(
            ChaosConfig(
                seed=seed,
                drop=drop,
                delay=(0, 0),
                duplicate=0.0,
                reorder=0.0,
                crash=False,
            )
        )
        messages.append(result.faulty.messages)
        overhead.append(
            result.faulty.messages / max(1, result.clean.messages)
        )
        drain.append(result.faulty.ticks - result.config.run_ticks)
        converged += result.converged and result.faulty.drained
    return (
        statistics.mean(messages),
        statistics.mean(overhead),
        statistics.mean(drain),
        converged,
    )


def test_fault_recovery(benchmark, record_table):
    rows = []
    for drop in DROP_RATES:
        mean_msgs, mean_overhead, mean_drain, converged = run_rate(drop)
        rows.append(
            [
                drop,
                round(mean_msgs, 1),
                round(mean_overhead, 2),
                round(mean_drain, 1),
                f"{converged}/{SEEDS_PER_RATE}",
            ]
        )
    benchmark(run_rate, 0.3)
    record_table(
        "E7: messages to convergence vs drop rate "
        f"({SEEDS_PER_RATE} seeds per rate)",
        ["drop rate", "messages", "overhead x", "drain ticks", "converged"],
        rows,
    )
    # Every run converges; message overhead grows with the drop rate.
    assert all(row[4] == f"{SEEDS_PER_RATE}/{SEEDS_PER_RATE}" for row in rows)
    overheads = [row[2] for row in rows]
    assert overheads[0] <= 1.01  # lossless: no retransmission overhead
    assert overheads[-1] > overheads[0]
