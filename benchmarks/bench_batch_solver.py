"""E13 — vectorized batch kinetic solving (DESIGN.md §8).

On dense workloads nearly every instantiation needs a real solve, so the
scalar path pays the full python toll — motion decomposition, quadratic
or crossing solving, interval assembly — once per row.  The batch
backend submits all surviving rows of an atom as one numpy solve.  Two
scenarios scale a ``cars`` fleet to ``n = 100k``:

* ``proximity`` — ``DIST(c, v) <= 40`` against a two-van reference set
  (rows grow linearly in ``n``; one quadratic solve per row).
* ``region`` — ``INSIDE(c, P)`` against a 32-edge polygon, the
  edge-heavy shape where per-row scalar costs multiply (32 segment
  crossings per row) while the vectorized sweep grows only its array
  width.

Both modes run with ``index_pruning=False``: E13 isolates the solver
layer, and on these dense fleets the R-tree gate prunes almost nothing
while dominating wall time in *both* modes, which would only mask the
solver difference being measured.

Answers are asserted identical across modes, tuple for tuple, and solve
counts must match exactly — batching changes *how* the solves run, never
how many there are.  The acceptance bar (>=10x at identical solve counts
on a dense ``n >= 1k`` world) is asserted on the region scenario at
``n = 1000``; larger sizes are reported as scale curves.  Results are
registered as a table and written to ``BENCH_batch_solver.json`` at the
repo root.  Setting ``BATCH_SOLVER_SMOKE=1`` shrinks the sweep to a
seconds-long CI smoke run and skips the speedup assertions (tiny batches
don't amortise the numpy dispatch).
"""

from __future__ import annotations

import json
import math
import os
import random
import time
from pathlib import Path

from repro.core import FutureHistory, MostDatabase, ObjectClass
from repro.ftl import parse_query
from repro.ftl.context import EvalContext
from repro.ftl.evaluator import IntervalEvaluator
from repro.geometry import Point
from repro.spatial import Polygon

SMOKE = os.environ.get("BATCH_SOLVER_SMOKE") == "1"

HORIZON = 24
SIZES = [64] if SMOKE else [64, 1_000, 10_000, 100_000]

SCENARIOS = {
    "proximity": "RETRIEVE c FROM cars c, vans v WHERE DIST(c, v) <= 40",
    "region": "RETRIEVE c FROM cars c WHERE INSIDE(c, P)",
}

RESULT_PATH = Path(__file__).parents[1] / "BENCH_batch_solver.json"

MODES = {
    "scalar": dict(batch_solver=False, index_pruning=False),
    "batch": dict(batch_solver=True, index_pruning=False),
}


def build_world(n: int) -> MostDatabase:
    """A dense fleet: ``n`` cars in a ±50 box (inside the DIST bound of
    almost every van and straddling the region boundary), so the solver
    — scalar or batched — does the real work on every row."""
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    db.create_class(ObjectClass("vans", spatial_dimensions=2))
    db.define_region(
        "P",
        Polygon(
            [
                Point(
                    35 * math.cos(2 * math.pi * k / 32),
                    35 * math.sin(2 * math.pi * k / 32),
                )
                for k in range(32)
            ]
        ),
    )
    rng = random.Random(2026)
    for i in range(n):
        db.add_moving_object(
            "cars",
            f"c{i}",
            Point(rng.uniform(-50, 50), rng.uniform(-50, 50)),
            Point(rng.uniform(-2, 2), rng.uniform(-2, 2)),
        )
    for i in range(2):
        db.add_moving_object(
            "vans",
            f"v{i}",
            Point(rng.uniform(-20, 20), rng.uniform(-20, 20)),
            Point(rng.uniform(-1, 1), rng.uniform(-1, 1)),
        )
    return db


def run_mode(db, query, repeats: int, **flags) -> dict:
    """Best-of-``repeats`` cold-cache evaluation (the cache is cleared
    before every repeat: this bench measures solving, not replay)."""
    best = float("inf")
    counters = None
    relation = None
    for _ in range(repeats):
        db.kinetic_cache.clear()
        ctx = EvalContext(FutureHistory(db), HORIZON, query.bindings)
        evaluator = IntervalEvaluator(ctx, **flags)
        start = time.perf_counter()
        relation = evaluator.evaluate(query.where)
        best = min(best, time.perf_counter() - start)
        counters = evaluator.counters()
    out = {"wall_ms": best * 1e3, "relation": relation, **counters}
    out["solves_per_sec"] = counters["kinetic_solves"] / max(best, 1e-9)
    return out


def run_scenario(name: str, db, n: int) -> dict:
    query = parse_query(SCENARIOS[name])
    repeats = 2 if n <= 1_000 else 1
    key = lambda r: sorted(  # noqa: E731
        (inst, tuple((i.start, i.end) for i in iset.intervals))
        for inst, iset in r.rows()
    )
    results = {}
    baseline = None
    for mode, flags in MODES.items():
        out = run_mode(db, query, repeats, **flags)
        rows = key(out.pop("relation"))
        if baseline is None:
            baseline = rows
        else:
            assert rows == baseline, (
                f"{mode} changed the {name} answer at n={n}"
            )
        results[mode] = out
    scalar, batch = results["scalar"], results["batch"]
    assert batch["kinetic_solves"] == scalar["kinetic_solves"], (
        f"batching changed the {name} solve count at n={n}"
    )
    return {"scenario": name, "n": n, "rows": len(baseline), "modes": results}


def test_batch_solving_beats_scalar_on_dense_fleets(record_table):
    scenarios = []
    for n in SIZES:
        db = build_world(n)
        for name in SCENARIOS:
            scenarios.append(run_scenario(name, db, n))
    report: dict = {
        "benchmark": "batch_solver",
        "horizon": HORIZON,
        "smoke": SMOKE,
        "queries": SCENARIOS,
        "scenarios": scenarios,
    }
    rows = []
    for s in scenarios:
        sc = s["modes"]["scalar"]
        ba = s["modes"]["batch"]
        rows.append(
            [
                s["scenario"],
                s["n"],
                sc["kinetic_solves"],
                round(sc["wall_ms"], 1),
                round(ba["wall_ms"], 1),
                round(sc["solves_per_sec"]),
                round(ba["solves_per_sec"]),
                round(sc["wall_ms"] / max(ba["wall_ms"], 1e-9), 1),
            ]
        )
    record_table(
        "E13: batch kinetic solving "
        f"(dense fleet, horizon {HORIZON}, index gate off, cold cache; "
        "identical answers and solve counts both modes)",
        [
            "scenario",
            "n",
            "solves",
            "scalar ms",
            "batch ms",
            "scalar solves/s",
            "batch solves/s",
            "speedup x",
        ],
        rows,
    )
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    if SMOKE:
        return
    for s in scenarios:
        if s["n"] < 1_000:
            continue
        sc = s["modes"]["scalar"]
        ba = s["modes"]["batch"]
        # Batching never loses on a dense world of n >= 1k...
        assert ba["wall_ms"] <= sc["wall_ms"], s
        # ...and the acceptance bar — >=10x at identical solve counts —
        # is held on the edge-heavy region scenario at n = 1k.
        if s["scenario"] == "region" and s["n"] == 1_000:
            assert ba["wall_ms"] * 10 <= sc["wall_ms"], s
