"""E1 / Figure 1 — the three query types produce different answers.

Reproduces the paper's only figure (the conceptual diagram of section 2.3)
behaviourally, using the paper's own discriminating scenario: the
speed-doubling query ``R`` with the update sequence 5t → 7t (at time 1) →
10t (at time 2).  The expected shape: the instantaneous and continuous
queries *never* retrieve ``o``; the persistent query retrieves it exactly
from time 2.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ContinuousQuery,
    InstantaneousQuery,
    MostDatabase,
    ObjectClass,
    PersistentQuery,
)
from repro.ftl import parse_query
from repro.geometry import Point
from repro.motion import LinearFunction

R_QUERY = (
    "RETRIEVE o FROM cars o WHERE [x := o.x_position.function]"
    " EVENTUALLY o.x_position.function >= 2 * x"
)


def build_db() -> MostDatabase:
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    db.add_moving_object("cars", "o", Point(0, 0), Point(5, 0))
    return db


def run_scenario() -> list[list[object]]:
    """One full run; returns the Figure-1 table rows."""
    db = build_db()
    query = parse_query(R_QUERY)
    instantaneous = InstantaneousQuery(query, horizon=10)
    continuous = ContinuousQuery(db, query, horizon=10)
    persistent = PersistentQuery(db, query, horizon=10)

    rows: list[list[object]] = []

    def snap(time: int, event: str) -> None:
        rows.append(
            [
                time,
                event,
                sorted(instantaneous.evaluate(db)),
                sorted(continuous.current()),
                sorted(persistent.current()),
            ]
        )

    snap(0, "speed = 5")
    db.clock.tick(1)
    db.update_dynamic("o", "x_position", function=LinearFunction(7))
    snap(1, "speed := 7")
    db.clock.tick(1)
    db.update_dynamic("o", "x_position", function=LinearFunction(10))
    snap(2, "speed := 10")
    return rows


def test_fig1_query_types(benchmark, record_table):
    rows = benchmark(run_scenario)
    record_table(
        "E1 (Figure 1): section 2.3 query R under the three query types",
        ["t", "event", "instantaneous", "continuous", "persistent"],
        rows,
    )
    # The paper's claim, exactly:
    assert rows[0][2] == rows[1][2] == rows[2][2] == []   # instantaneous
    assert rows[0][3] == rows[1][3] == rows[2][3] == []   # continuous
    assert rows[0][4] == [] and rows[1][4] == []
    assert rows[2][4] == [("o",)]                          # persistent at t=2
