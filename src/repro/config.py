"""Environment-driven configuration knobs.

Deployment-facing settings that must be tunable without code changes are
read from ``REPRO_*`` environment variables:

* ``REPRO_KINETIC_CACHE_SIZE`` — FIFO bound of the database-wide
  :class:`~repro.ftl.atoms.KineticSolveCache` when the
  ``MostDatabase(kinetic_cache_size=...)`` constructor argument is left at
  its default.  A positive integer.
* ``REPRO_PARALLEL_WORKERS`` — worker count used by ``parallel="auto"``
  and by :func:`repro.parallel.resolve_workers` when no explicit count is
  given.  A positive integer.
* ``REPRO_PARALLEL_START_METHOD`` — multiprocessing start method for the
  shard worker pool: ``fork``, ``spawn`` or ``forkserver``.  Defaults to
  the platform default (``fork`` on Linux).

Every variable is validated on read: nonsense values raise
:class:`~repro.errors.ConfigError` naming the variable and the offending
value rather than silently falling back, so a typo in a deployment
manifest fails loudly.
"""

from __future__ import annotations

import os

from repro.errors import ConfigError

__all__ = [
    "env_int",
    "kinetic_cache_entries",
    "parallel_workers",
    "parallel_start_method",
]

KINETIC_CACHE_SIZE_VAR = "REPRO_KINETIC_CACHE_SIZE"
PARALLEL_WORKERS_VAR = "REPRO_PARALLEL_WORKERS"
PARALLEL_START_METHOD_VAR = "REPRO_PARALLEL_START_METHOD"

_START_METHODS = ("fork", "spawn", "forkserver")


def env_int(
    name: str, *, minimum: int = 0, maximum: int | None = None
) -> int | None:
    """An integer environment variable, validated.

    Returns ``None`` when the variable is unset or empty.  Raises
    :class:`ConfigError` when the value is not an integer or falls outside
    ``[minimum, maximum]``.
    """
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return None
    try:
        value = int(raw.strip())
    except ValueError:
        raise ConfigError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ConfigError(f"{name} must be <= {maximum}, got {value}")
    return value


def kinetic_cache_entries() -> int | None:
    """The ``REPRO_KINETIC_CACHE_SIZE`` override, or ``None`` when unset."""
    return env_int(KINETIC_CACHE_SIZE_VAR, minimum=1)


def parallel_workers() -> int | None:
    """The ``REPRO_PARALLEL_WORKERS`` override, or ``None`` when unset."""
    return env_int(PARALLEL_WORKERS_VAR, minimum=1)


def parallel_start_method() -> str | None:
    """The ``REPRO_PARALLEL_START_METHOD`` override, or ``None`` when unset."""
    raw = os.environ.get(PARALLEL_START_METHOD_VAR)
    if raw is None or raw.strip() == "":
        return None
    method = raw.strip()
    if method not in _START_METHODS:
        raise ConfigError(
            f"{PARALLEL_START_METHOD_VAR} must be one of "
            f"{', '.join(_START_METHODS)}; got {raw!r}"
        )
    return method
