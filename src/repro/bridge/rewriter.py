"""The 2^k decomposition of section 5.1.

"The transformation is based on the following equivalence:
``F = (F' ∧ p) ∨ (F'' ∧ ¬p)``, where ``F'`` is ``F`` with ``p`` replaced
by true and ``F''`` is ``F`` with ``p`` replaced by false."  Applied
recursively over the ``k`` dynamic atoms, this yields up to ``2^k``
queries whose WHERE clauses are free of dynamic attributes; each carries
the polarity assignment its rows must be checked against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbms.expressions import Expr, Literal

TRUE = Literal(True)
FALSE = Literal(False)


@dataclass(frozen=True)
class Variant:
    """One decomposed query: the static WHERE clause plus the polarity
    each dynamic atom must evaluate to on the returned rows."""

    where: Expr
    polarities: tuple[tuple[Expr, bool], ...]


def decompose(where: Expr, dynamic_atoms: list[Expr]) -> list[Variant]:
    """All ``2^k`` static variants of ``where``.

    The paper notes "if k is small this may not be a serious problem";
    experiment E5 measures exactly how the cost grows with ``k``.
    """
    variants = [Variant(where=where, polarities=())]
    for atom in dynamic_atoms:
        next_variants: list[Variant] = []
        for variant in variants:
            next_variants.append(
                Variant(
                    where=variant.where.substitute(atom, TRUE),
                    polarities=variant.polarities + ((atom, True),),
                )
            )
            next_variants.append(
                Variant(
                    where=variant.where.substitute(atom, FALSE),
                    polarities=variant.polarities + ((atom, False),),
                )
            )
        variants = next_variants
    return variants
