"""Dynamic-attribute discovery in schemas and WHERE clauses.

By the storage convention of section 5.1, a dynamic attribute ``A`` of a
table appears as the three columns ``A.value``, ``A.updatetime`` and
``A.function``; a bare reference to ``A`` in a query is a *dynamic
reference* the MOST layer must resolve, while references to the
sub-attribute columns go straight through to the DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbms.expressions import Expr
from repro.dbms.schema import Schema

SUB_ATTRIBUTES = ("value", "updatetime", "function")


@dataclass(frozen=True)
class DynamicColumns:
    """The three storage columns of one dynamic attribute."""

    attribute: str
    value: str
    updatetime: str
    function: str


def dynamic_attributes_of(schema: Schema) -> dict[str, DynamicColumns]:
    """Dynamic attributes implied by a table schema.

    ``A`` is dynamic iff all of ``A.value``, ``A.updatetime`` and
    ``A.function`` are columns.
    """
    names = set(schema.names)
    out: dict[str, DynamicColumns] = {}
    for name in names:
        if not name.endswith(".value"):
            continue
        attr = name[: -len(".value")]
        if f"{attr}.updatetime" in names and f"{attr}.function" in names:
            out[attr] = DynamicColumns(
                attribute=attr,
                value=f"{attr}.value",
                updatetime=f"{attr}.updatetime",
                function=f"{attr}.function",
            )
    return out


def strip_binding(name: str, bindings: dict[str, str]) -> tuple[str | None, str]:
    """Split a possibly-qualified reference into (binding, bare name)."""
    head, _, rest = name.partition(".")
    if head in bindings and rest:
        return head, rest
    return None, name


def dynamic_refs_in(
    expr: Expr,
    bindings: dict[str, str],
    table_dynamics: dict[str, dict[str, DynamicColumns]],
) -> set[tuple[str, str]]:
    """``(binding, attribute)`` pairs of bare dynamic references in an
    expression tree.

    ``bindings`` maps FROM bindings to table names; ``table_dynamics``
    maps table names to their dynamic attributes.
    """
    out: set[tuple[str, str]] = set()
    for name in expr.references():
        binding, bare = strip_binding(name, bindings)
        candidates = (
            [binding]
            if binding is not None
            else list(bindings)
        )
        for b in candidates:
            dynamics = table_dynamics.get(bindings[b], {})
            if bare in dynamics:
                out.add((b, bare))
    return out


def dynamic_atoms_in(
    where: Expr | None,
    bindings: dict[str, str],
    table_dynamics: dict[str, dict[str, DynamicColumns]],
) -> list[Expr]:
    """The WHERE-clause atoms that reference a dynamic attribute, in
    appearance order and deduplicated."""
    if where is None:
        return []
    seen: list[Expr] = []
    for atom in where.atoms():
        if atom in seen:
            continue
        if dynamic_refs_in(atom, bindings, table_dynamics):
            seen.append(atom)
    return seen
