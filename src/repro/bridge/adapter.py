"""``MostOnDbms`` — the interception layer of section 5.1.

The MOST system sits between the user and the DBMS:

* DDL helpers create tables storing each dynamic attribute as its three
  sub-attribute columns (``A.value``, ``A.updatetime``, ``A.function``;
  the function column stores the slope of a linear function, the paper's
  simplifying assumption).
* Queries with no dynamic references pass straight through.
* Dynamic references in the SELECT list are answered by fetching the
  sub-attributes and computing ``value + function * (now - updatetime)``.
* Dynamic atoms in the WHERE clause trigger the 2^k decomposition; rows
  of each variant are post-filtered by evaluating the atoms at query
  time — or, when a :class:`~repro.index.DynamicAttributeIndex` is
  registered for the attribute, by joining with the key set the index
  reports as satisfying the atom.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bridge.atoms import (
    DynamicColumns,
    dynamic_atoms_in,
    dynamic_attributes_of,
    dynamic_refs_in,
    strip_binding,
)
from repro.bridge.rewriter import Variant, decompose
from repro.core.dynamic import DynamicAttribute
from repro.dbms.database import Database
from repro.dbms.expressions import ColumnRef, Comparison, Expr, Literal
from repro.dbms.relation import Relation
from repro.dbms.schema import Column, Schema
from repro.dbms.sql.ast import Select, Statement
from repro.dbms.sql.parser import parse_statement
from repro.dbms.types import FLOAT
from repro.errors import SqlError
from repro.index.dynamicindex import DynamicAttributeIndex
from repro.motion.functions import LinearFunction


@dataclass
class BridgeStats:
    """Work counters for experiment E5."""

    passthrough: int = 0
    decomposed: int = 0
    variants_issued: int = 0
    rows_post_filtered: int = 0
    index_filtered_atoms: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.passthrough = 0
        self.decomposed = 0
        self.variants_issued = 0
        self.rows_post_filtered = 0
        self.index_filtered_atoms = 0


class MostOnDbms:
    """The MOST software system built on top of an existing DBMS."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.stats = BridgeStats()
        self._indexes: dict[tuple[str, str], DynamicAttributeIndex] = {}
        self._sat_cache: dict[tuple, set[object]] = {}

    # ------------------------------------------------------------------
    # DDL / DML helpers
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        static_columns: list[Column],
        dynamic_attributes: list[str],
        key: str | None = None,
    ) -> None:
        """Create a table storing each dynamic attribute as three
        sub-attribute columns."""
        columns = list(static_columns)
        for attr in dynamic_attributes:
            columns.append(Column(f"{attr}.value", FLOAT))
            columns.append(Column(f"{attr}.updatetime", FLOAT))
            columns.append(Column(f"{attr}.function", FLOAT))
        self.db.create_table(name, Schema(columns, key=key))

    def insert(
        self,
        table: str,
        static_values: dict[str, object],
        dynamic_values: dict[str, DynamicAttribute] | None = None,
    ) -> None:
        """Insert a row, expanding dynamic attributes into sub-attributes."""
        mapping = dict(static_values)
        for attr, triple in (dynamic_values or {}).items():
            mapping[f"{attr}.value"] = triple.value
            mapping[f"{attr}.updatetime"] = triple.updatetime
            mapping[f"{attr}.function"] = triple.speed
        tbl = self.db.table(table)
        row = tbl.schema.row_from_mapping(mapping)
        tbl.insert(row)

    def update_motion(
        self, table: str, key: object, attr: str, triple: DynamicAttribute
    ) -> None:
        """Explicitly update one dynamic attribute of one row.

        Routed through a regular UPDATE statement so the commit lands in
        the update log (continuous queries over the bridge revalidate off
        that log).
        """
        from repro.dbms.sql.ast import Update

        tbl = self.db.table(table)
        if tbl.schema.key is None:
            raise SqlError(f"table {table!r} has no key")
        stmt = Update(
            table=table,
            assignments=(
                (f"{attr}.value", Literal(triple.value)),
                (f"{attr}.updatetime", Literal(triple.updatetime)),
                (f"{attr}.function", Literal(triple.speed)),
            ),
            where=Comparison("=", ColumnRef(tbl.schema.key), Literal(key)),
        )
        if self.db.execute(stmt) == 0:
            raise SqlError(f"no row with key {key!r} in {table!r}")
        index = self._indexes.get((table, attr))
        if index is not None and key in index:
            index.update(key, triple)

    def register_index(
        self, table: str, attr: str, index: DynamicAttributeIndex
    ) -> None:
        """Attach a dynamic-attribute index for the indexed evaluation
        variant of section 5.1."""
        self._indexes[(table, attr)] = index

    # ------------------------------------------------------------------
    # Query interception
    # ------------------------------------------------------------------
    def execute(self, sql: str | Statement) -> Relation | int:
        """Run one statement through the MOST layer."""
        stmt = parse_statement(sql) if isinstance(sql, str) else sql
        if not isinstance(stmt, Select):
            return self.db.execute(stmt)
        return self._execute_select(stmt)

    def query(self, sql: str | Statement) -> Relation:
        """Run a SELECT through the MOST layer."""
        result = self.execute(sql)
        if not isinstance(result, Relation):
            raise SqlError("query() requires a SELECT statement")
        return result

    # ------------------------------------------------------------------
    def _execute_select(self, stmt: Select) -> Relation:
        bindings = {ref.binding: ref.name for ref in stmt.tables}
        table_dynamics = {
            name: dynamic_attributes_of(self.db.table(name).schema)
            for name in {ref.name for ref in stmt.tables}
        }

        where_refs = (
            dynamic_refs_in(stmt.where, bindings, table_dynamics)
            if stmt.where is not None
            else set()
        )
        target_refs: set[tuple[str, str]] = set()
        if stmt.targets is not None:
            for t in stmt.targets:
                target_refs |= dynamic_refs_in(t.expr, bindings, table_dynamics)

        if not where_refs and not target_refs:
            self.stats.passthrough += 1
            return self.db.execute(stmt)  # type: ignore[return-value]

        atoms = dynamic_atoms_in(stmt.where, bindings, table_dynamics)
        variants = (
            decompose(stmt.where, atoms)
            if stmt.where is not None and atoms
            else [Variant(where=stmt.where, polarities=())]  # type: ignore[arg-type]
        )
        if atoms:
            self.stats.decomposed += 1

        now = self.db.clock.now
        envs: list[dict[str, object]] = []
        for variant in variants:
            self.stats.variants_issued += 1
            rows = self._run_variant(stmt, variant.where)
            for env in rows:
                if self._check_polarities(
                    env, variant.polarities, bindings, table_dynamics, now
                ):
                    envs.append(env)

        return self._project(stmt, envs, bindings, table_dynamics, now)

    def _run_variant(
        self, stmt: Select, where: Expr | None
    ) -> list[dict[str, object]]:
        """Execute one static variant, returning qualified row envs.

        The variant fetches every column of every FROM table (the paper
        adds the sub-attributes and keys to the target list; fetching all
        columns subsumes both with this in-memory engine)."""
        from repro.dbms.planner import Planner

        variant = Select(targets=None, tables=stmt.tables, where=where)
        planner = Planner(
            {name: self.db.table(name) for name in self.db.tables()},
            self.db.stats,
        )
        plan, _targets = planner.plan(variant)
        self.db.stats.statements += 1
        return list(plan.rows())

    # ------------------------------------------------------------------
    def _current_value(
        self,
        env: dict[str, object],
        binding: str,
        columns: DynamicColumns,
        now: float,
    ) -> float | None:
        value = env[f"{binding}.{columns.value}"]
        updatetime = env[f"{binding}.{columns.updatetime}"]
        slope = env[f"{binding}.{columns.function}"]
        if value is None or updatetime is None or slope is None:
            return None
        return DynamicAttribute(
            value=value, updatetime=updatetime, function=LinearFunction(slope)
        ).value_at(now)

    def _augment_env(
        self,
        env: dict[str, object],
        bindings: dict[str, str],
        table_dynamics: dict[str, dict[str, DynamicColumns]],
        now: float,
    ) -> dict[str, object]:
        """Extend a row env with the computed current value of every
        dynamic attribute, under its bare name."""
        out = dict(env)
        for binding, table in bindings.items():
            for attr, columns in table_dynamics.get(table, {}).items():
                out[f"{binding}.{attr}"] = self._current_value(
                    env, binding, columns, now
                )
        return out

    def _check_polarities(
        self,
        env: dict[str, object],
        polarities: tuple[tuple[Expr, bool], ...],
        bindings: dict[str, str],
        table_dynamics: dict[str, dict[str, DynamicColumns]],
        now: float,
    ) -> bool:
        if not polarities:
            return True
        augmented = self._augment_env(env, bindings, table_dynamics, now)
        for atom, wanted in polarities:
            verdict = self._atom_via_index(atom, env, bindings, table_dynamics, now)
            if verdict is None:
                self.stats.rows_post_filtered += 1
                verdict = atom.eval(augmented) is True
            if verdict != wanted:
                return False
        return True

    def _atom_via_index(
        self,
        atom: Expr,
        env: dict[str, object],
        bindings: dict[str, str],
        table_dynamics: dict[str, dict[str, DynamicColumns]],
        now: float,
    ) -> bool | None:
        """Answer an atom through a registered index when it has the shape
        ``A op literal`` on an indexed attribute; ``None`` = not indexable."""
        if not isinstance(atom, Comparison):
            return None
        left, right, op = atom.left, atom.right, atom.op
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
            return None
        if op not in ("<", "<=", ">", ">="):
            return None
        if not isinstance(right.value, (int, float)) or isinstance(
            right.value, bool
        ):
            return None
        binding, bare = strip_binding(left.name, bindings)
        candidates = [binding] if binding else list(bindings)
        for b in candidates:
            table = bindings[b]
            if bare not in table_dynamics.get(table, {}):
                continue
            index = self._indexes.get((table, bare))
            if index is None:
                return None
            tbl = self.db.table(table)
            if tbl.schema.key is None:
                return None
            key = env[f"{b}.{tbl.schema.key}"]
            bound = float(right.value)  # type: ignore[arg-type]
            cache_key = (table, bare, op, bound, now)
            hits = self._sat_cache.get(cache_key)
            if hits is None:
                hits = index.satisfying(op, bound, now)
                if len(self._sat_cache) > 256:
                    self._sat_cache.clear()
                self._sat_cache[cache_key] = hits
                self.stats.index_filtered_atoms += 1
            return key in hits
        return None

    # ------------------------------------------------------------------
    def _project(
        self,
        stmt: Select,
        envs: list[dict[str, object]],
        bindings: dict[str, str],
        table_dynamics: dict[str, dict[str, DynamicColumns]],
        now: float,
    ) -> Relation:
        from repro.dbms.executor import _infer_type

        if stmt.targets is None:
            # SELECT *: all stored columns, qualified when multi-table.
            multi = len(stmt.tables) > 1
            columns: list[Column] = []
            keys: list[str] = []
            for ref in stmt.tables:
                tbl = self.db.table(ref.name)
                for col in tbl.schema.columns:
                    name = (
                        f"{ref.binding}.{col.name}" if multi else col.name
                    )
                    columns.append(Column(name, col.type))
                    keys.append(f"{ref.binding}.{col.name}")
            rows = [tuple(env[k] for k in keys) for env in envs]
            return Relation(Schema(columns), rows)

        names = []
        for t in stmt.targets:
            if t.alias is not None:
                names.append(t.alias)
            elif isinstance(t.expr, ColumnRef):
                names.append(t.expr.name)
            else:
                names.append(str(t.expr))
        if len(set(names)) != len(names):
            raise SqlError(f"duplicate output column names: {names}")
        value_rows = []
        for env in envs:
            augmented = self._augment_env(env, bindings, table_dynamics, now)
            value_rows.append(
                tuple(t.expr.eval(augmented) for t in stmt.targets)
            )
        columns = [
            Column(name, _infer_type([r[i] for r in value_rows]))
            for i, name in enumerate(names)
        ]
        return Relation(Schema(columns), value_rows)
