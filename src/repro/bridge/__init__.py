"""MOST on top of an existing DBMS (section 5.1 of the paper).

"We store each dynamic attribute A as three DBMS attributes A.value,
A.updatetime, and A.function.  Any query posed to the DBMS is first
examined (and possibly modified) by the MOST system, and so is the answer
of the DBMS before it is returned to the user."

* :mod:`repro.bridge.atoms` — discovery of dynamic attributes in a schema
  and of the WHERE-clause atoms that reference them.
* :mod:`repro.bridge.rewriter` — the 2^k decomposition
  ``F = (F' ∧ p) ∨ (F'' ∧ ¬p)`` applied recursively over the dynamic
  atoms.
* :mod:`repro.bridge.adapter` — :class:`MostOnDbms`, the interception
  layer: passthrough for purely static queries, sub-attribute fetching +
  value computation for dynamic SELECT targets, decomposition +
  post-filtering (or index joining) for dynamic WHERE atoms.
"""

from repro.bridge.atoms import dynamic_attributes_of, dynamic_atoms_in
from repro.bridge.rewriter import decompose
from repro.bridge.adapter import MostOnDbms
from repro.bridge.temporal import (
    BridgeContinuousQuery,
    ClassSpec,
    TemporalBridge,
)

__all__ = [
    "dynamic_attributes_of",
    "dynamic_atoms_in",
    "decompose",
    "MostOnDbms",
    "BridgeContinuousQuery",
    "ClassSpec",
    "TemporalBridge",
]
