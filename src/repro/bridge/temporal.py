"""FTL queries on top of the DBMS (section 5.1, last paragraph).

"Note that the procedure in the appendix given for processing FTL formulas
can be modified to take advantage of the query processing capabilities of
the DBMS ... corresponding to g we compute a relation G ... by using the
decomposition method for non-temporal queries described above.  All the
relations computed in this fashion are combined using the procedure in the
appendix, according to the structure of the formula f."

:class:`TemporalBridge` realises that pipeline: it retrieves the dynamic
sub-attribute columns from the underlying DBMS (plain, non-temporal
SELECTs), reconstructs the MOST view — objects whose dynamic attributes
are the stored ``(value, updatetime, function)`` triples — and runs the
appendix interval algorithm over it.  A fresh view is loaded per query, so
answers always reflect the current DBMS contents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bridge.adapter import MostOnDbms
from repro.bridge.atoms import dynamic_attributes_of
from repro.core.database import MostDatabase, Region
from repro.core.dynamic import DynamicAttribute
from repro.core.objects import ObjectClass
from repro.core.queries import Answer, InstantaneousQuery
from repro.errors import SchemaError, SqlError
from repro.ftl.query import FtlQuery
from repro.motion.functions import LinearFunction


@dataclass(frozen=True)
class ClassSpec:
    """How one DBMS table maps onto a MOST object class.

    Attributes:
        table: the DBMS table (created via
            :meth:`~repro.bridge.MostOnDbms.create_table`).
        position_attributes: names of the dynamic attributes that form the
            spatial position, in axis order (length 0, 2 or 3).
        scalar_attributes: further dynamic attributes (fuel, temperature).
        static_columns: plain columns to expose as static attributes.
    """

    table: str
    position_attributes: tuple[str, ...] = ()
    scalar_attributes: tuple[str, ...] = ()
    static_columns: tuple[str, ...] = ()


class TemporalBridge:
    """Answers FTL queries against tables of a :class:`MostOnDbms` layer."""

    def __init__(
        self,
        layer: MostOnDbms,
        classes: dict[str, ClassSpec],
        regions: dict[str, Region] | None = None,
    ) -> None:
        self.layer = layer
        self.classes = dict(classes)
        self.regions = dict(regions or {})
        for name, spec in self.classes.items():
            self._validate(name, spec)

    def _validate(self, class_name: str, spec: ClassSpec) -> None:
        table = self.layer.db.table(spec.table)
        if table.schema.key is None:
            raise SchemaError(
                f"table {spec.table!r} needs a key to serve as class "
                f"{class_name!r}"
            )
        dynamics = dynamic_attributes_of(table.schema)
        for attr in spec.position_attributes + spec.scalar_attributes:
            if attr not in dynamics:
                raise SchemaError(
                    f"{attr!r} is not a dynamic attribute of {spec.table!r}"
                )
        if len(spec.position_attributes) not in (0, 2, 3):
            raise SchemaError("position needs 0, 2 or 3 attributes")
        for col in spec.static_columns:
            table.schema.index_of(col)

    # ------------------------------------------------------------------
    def load_view(self) -> MostDatabase:
        """Reconstruct the MOST view from the current DBMS contents.

        One non-temporal SELECT per table fetches the sub-attribute
        columns; the triples are reassembled into dynamic attributes.
        """
        view = MostDatabase(clock=self.layer.db.clock)
        for name, region in self.regions.items():
            view.define_region(name, region)
        for class_name, spec in self.classes.items():
            table = self.layer.db.table(spec.table)
            dim = len(spec.position_attributes)
            view.create_class(
                ObjectClass(
                    class_name,
                    static_attributes=tuple(spec.static_columns),
                    dynamic_attributes=tuple(spec.scalar_attributes),
                    spatial_dimensions=dim,
                )
            )
            cls = view.object_class(class_name)
            rel = self.layer.db.query(f"SELECT * FROM {spec.table}")
            schema = rel.schema
            key_idx = schema.index_of(table.schema.key)
            for row in rel:
                dynamic: dict[str, DynamicAttribute] = {}
                # Positions map onto the implicit x/y/z attributes.
                for axis_name, attr in zip(
                    cls.position_attributes, spec.position_attributes
                ):
                    dynamic[axis_name] = self._triple(schema, row, attr)
                for attr in spec.scalar_attributes:
                    dynamic[attr] = self._triple(schema, row, attr)
                static = {
                    col: row[schema.index_of(col)]
                    for col in spec.static_columns
                }
                view.add_object(
                    class_name, row[key_idx], static=static, dynamic=dynamic
                )
        return view

    @staticmethod
    def _triple(schema, row, attr: str) -> DynamicAttribute:
        value = row[schema.index_of(f"{attr}.value")]
        updatetime = row[schema.index_of(f"{attr}.updatetime")]
        slope = row[schema.index_of(f"{attr}.function")]
        if value is None or updatetime is None or slope is None:
            raise SqlError(
                f"row has NULL sub-attributes for dynamic attribute {attr!r}"
            )
        return DynamicAttribute(
            value=value,
            updatetime=updatetime,
            function=LinearFunction(slope),
        )

    # ------------------------------------------------------------------
    def answer(
        self, query: FtlQuery, horizon: int, method: str = "interval"
    ) -> Answer:
        """The full interval answer of an FTL query over the DBMS data."""
        unknown = set(query.bindings.values()) - set(self.classes)
        if unknown:
            raise SchemaError(
                f"query ranges over unmapped classes {sorted(unknown)}"
            )
        view = self.load_view()
        return InstantaneousQuery(query, horizon).answer(view, method=method)

    def evaluate(
        self, query: FtlQuery, horizon: int, method: str = "interval"
    ) -> set[tuple]:
        """Instantaneous answer at the current clock tick."""
        return self.answer(query, horizon, method=method).at(
            self.layer.db.clock.now
        )

    def continuous(
        self, query: FtlQuery, horizon: int, method: str = "interval"
    ) -> "BridgeContinuousQuery":
        """Register a continuous query over the DBMS data."""
        return BridgeContinuousQuery(self, query, horizon, method)


class BridgeContinuousQuery:
    """A continuous query maintained against DBMS updates.

    Like :class:`~repro.core.queries.ContinuousQuery` but the data lives
    in the relational substrate: the materialised ``Answer(CQ)`` is
    recomputed lazily after any commit touching a mapped table.
    """

    def __init__(
        self,
        bridge: TemporalBridge,
        query: FtlQuery,
        horizon: int,
        method: str = "interval",
    ) -> None:
        self.bridge = bridge
        self.query = query
        self.horizon = horizon
        self.method = method
        self.expires_at = bridge.layer.db.clock.now + horizon
        self.evaluations = 0
        self._dirty = False
        self._cancelled = False
        self._tables = {spec.table for spec in bridge.classes.values()}
        self._answer = self._evaluate()
        self._unsubscribe = bridge.layer.db.log.subscribe(self._on_commit)

    def _evaluate(self) -> Answer:
        self.evaluations += 1
        remaining = max(
            0, self.expires_at - self.bridge.layer.db.clock.now
        )
        return self.bridge.answer(self.query, remaining, method=self.method)

    def _on_commit(self, record) -> None:
        if not self._cancelled and record.table in self._tables:
            self._dirty = True

    def current(self) -> set[tuple]:
        """The display at the current clock tick."""
        if self._cancelled:
            raise SqlError("query was cancelled")
        now = self.bridge.layer.db.clock.now
        if now > self.expires_at:
            return set()
        if self._dirty:
            self._answer = self._evaluate()
            self._dirty = False
        return self._answer.at(now)

    def answer_tuples(self):
        """The current ``Answer(CQ)`` tuples."""
        if self._dirty:
            self._answer = self._evaluate()
            self._dirty = False
        return self._answer.tuples

    def cancel(self) -> None:
        """Stop maintaining the answer."""
        if not self._cancelled:
            self._unsubscribe()
            self._cancelled = True
