"""Points and vectors in 2-D / 3-D Euclidean space.

The paper's spatial object classes carry ``X.POSITION``, ``Y.POSITION``,
``Z.POSITION`` attributes (section 2); :class:`Point` is the value those
triples denote.  A single immutable tuple-backed class serves as both point
and displacement vector, which keeps the kinetic algebra (`p0 + v * t`)
readable.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.errors import SpatialError


class Point:
    """An immutable point (or displacement vector) with 1–3 coordinates."""

    __slots__ = ("_coords",)

    def __init__(self, *coords: float) -> None:
        if not 1 <= len(coords) <= 3:
            raise SpatialError(
                f"points must have 1 to 3 coordinates, got {len(coords)}"
            )
        self._coords = tuple(float(c) for c in coords)

    @classmethod
    def of(cls, coords: Iterable[float]) -> "Point":
        """Build from any iterable of coordinates."""
        return cls(*coords)

    @classmethod
    def zero(cls, dim: int) -> "Point":
        """The origin of ``dim``-dimensional space."""
        return cls(*([0.0] * dim))

    # ------------------------------------------------------------------
    # Coordinate access
    # ------------------------------------------------------------------
    @property
    def coords(self) -> tuple[float, ...]:
        """The raw coordinate tuple."""
        return self._coords

    @property
    def dim(self) -> int:
        """Number of coordinates."""
        return len(self._coords)

    @property
    def x(self) -> float:
        """First coordinate."""
        return self._coords[0]

    @property
    def y(self) -> float:
        """Second coordinate."""
        if len(self._coords) < 2:
            raise SpatialError("point has no y coordinate")
        return self._coords[1]

    @property
    def z(self) -> float:
        """Third coordinate."""
        if len(self._coords) < 3:
            raise SpatialError("point has no z coordinate")
        return self._coords[2]

    def __iter__(self) -> Iterator[float]:
        return iter(self._coords)

    def __getitem__(self, idx: int) -> float:
        return self._coords[idx]

    def __len__(self) -> int:
        return len(self._coords)

    # ------------------------------------------------------------------
    # Vector algebra
    # ------------------------------------------------------------------
    def _check_dim(self, other: "Point") -> None:
        if self.dim != other.dim:
            raise SpatialError(
                f"dimension mismatch: {self.dim} vs {other.dim}"
            )

    def __add__(self, other: "Point") -> "Point":
        self._check_dim(other)
        return Point(*(a + b for a, b in zip(self._coords, other._coords)))

    def __sub__(self, other: "Point") -> "Point":
        self._check_dim(other)
        return Point(*(a - b for a, b in zip(self._coords, other._coords)))

    def __mul__(self, scalar: float) -> "Point":
        return Point(*(a * scalar for a in self._coords))

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(*(-a for a in self._coords))

    def dot(self, other: "Point") -> float:
        """Inner product."""
        self._check_dim(other)
        return sum(a * b for a, b in zip(self._coords, other._coords))

    def cross2d(self, other: "Point") -> float:
        """Z component of the 2-D cross product (signed area test)."""
        if self.dim != 2 or other.dim != 2:
            raise SpatialError("cross2d requires 2-D points")
        return self.x * other.y - self.y * other.x

    @property
    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.norm_squared)

    @property
    def norm_squared(self) -> float:
        """Squared Euclidean length (avoids the sqrt in hot paths)."""
        return sum(a * a for a in self._coords)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance — the paper's ``DIST(o1, o2)`` method."""
        return (self - other).norm

    def midpoint(self, other: "Point") -> "Point":
        """Point halfway between the two inputs."""
        return (self + other) * 0.5

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self._coords == other._coords

    def __hash__(self) -> int:
        return hash(self._coords)

    def __repr__(self) -> str:
        return f"Point{self._coords}"

    def is_close(self, other: "Point", tol: float = 1e-9) -> bool:
        """Approximate equality within absolute tolerance ``tol``."""
        return (
            self.dim == other.dim
            and all(
                abs(a - b) <= tol
                for a, b in zip(self._coords, other._coords)
            )
        )


#: Alias making intent explicit where a Point is used as a displacement.
Vector = Point


def dist(a: Point, b: Point) -> float:
    """The paper's ``DIST`` spatial method as a free function."""
    return a.distance_to(b)
