"""The MOST database: clock, object store, updates, and the update log.

The database holds object classes, their objects, and named spatial
regions (the polygons and circles queries refer to).  All explicit updates
go through :meth:`MostDatabase.update_motion` /
:meth:`~MostDatabase.update_static` so that

* the update log records every change (persistent queries replay it,
  section 2.3),
* registered continuous queries are told their materialised
  ``Answer(CQ)`` may have changed (section 2.3: "a continuous query CQ has
  to be reevaluated when an update occurs that may change the set of
  tuples Answer(CQ)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.core.dynamic import DynamicAttribute
from repro.core.objects import MostObject, ObjectClass
from repro.errors import SchemaError
from repro.geometry import Point
from repro.motion.functions import LinearFunction, TimeFunction
from repro.spatial.polygon import Polygon
from repro.spatial.regions import Ball
from repro.temporal import SimulationClock

Region = Polygon | Ball


@dataclass(frozen=True)
class MostUpdate:
    """One explicit update of an object attribute.

    ``old``/``new`` are static values or :class:`DynamicAttribute` triples
    depending on the attribute kind.  ``class_name`` and ``kind`` let
    listeners (continuous queries, triggers) decide relevance without a
    database lookup; they default to ``None``/``"dynamic"`` for updates
    constructed outside :class:`MostDatabase`.
    """

    time: int
    object_id: object
    attribute: str
    old: object
    new: object
    class_name: str | None = None
    kind: str = "dynamic"


UpdateListener = Callable[[MostUpdate], None]


class MostDatabase:
    """Object classes + objects + named regions under one global clock."""

    def __init__(
        self,
        clock: SimulationClock | None = None,
        kinetic_cache_size: int | None = None,
    ) -> None:
        self.clock = clock if clock is not None else SimulationClock()
        #: Bound on the kinetic-solve memo table (None = the default,
        #: ``repro.ftl.atoms.DEFAULT_CACHE_ENTRIES``).
        self.kinetic_cache_size = kinetic_cache_size
        self._classes: dict[str, ObjectClass] = {}
        self._objects: dict[object, MostObject] = {}
        self._by_class: dict[str, list[object]] = {}
        self._regions: dict[str, Region] = {}
        self._log: list[MostUpdate] = []
        self._listeners: list[UpdateListener] = []
        self._last_seq: dict[object, int] = {}
        self._last_update_time: dict[object, int] = {}
        self._tracked: set[object] = set()
        self._kinetic_cache = None
        #: Network-delivered updates refused as stale or duplicate.
        self.ingest_rejected = 0

    @property
    def kinetic_cache(self):
        """The database-wide kinetic-solve memo table (lazily created).

        Shared by every evaluator querying this database; motion updates
        invalidate naturally because the frozen dynamic-attribute triples
        are part of every key (see :mod:`repro.ftl.atoms`).
        """
        if self._kinetic_cache is None:
            from repro.config import kinetic_cache_entries
            from repro.ftl.atoms import KineticSolveCache  # avoid cycle

            size = self.kinetic_cache_size
            if size is None:
                size = kinetic_cache_entries()
            if size is None:
                self._kinetic_cache = KineticSolveCache()
            else:
                self._kinetic_cache = KineticSolveCache(max_entries=size)
        return self._kinetic_cache

    # ------------------------------------------------------------------
    # Classes and regions
    # ------------------------------------------------------------------
    def create_class(self, object_class: ObjectClass) -> ObjectClass:
        """Register an object class."""
        if object_class.name in self._classes:
            raise SchemaError(f"class {object_class.name!r} already exists")
        self._classes[object_class.name] = object_class
        self._by_class[object_class.name] = []
        return object_class

    def object_class(self, name: str) -> ObjectClass:
        """Class by name."""
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown object class {name!r}") from None

    def class_names(self) -> list[str]:
        """All registered class names."""
        return list(self._classes)

    def define_region(self, name: str, region: Region) -> None:
        """Register a named polygon or ball for use in queries."""
        if name in self._regions:
            raise SchemaError(f"region {name!r} already exists")
        self._regions[name] = region

    def region_names(self) -> list[str]:
        """All defined region names."""
        return list(self._regions)

    def region(self, name: str) -> Region:
        """Named region lookup."""
        try:
            return self._regions[name]
        except KeyError:
            raise SchemaError(f"unknown region {name!r}") from None

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------
    def add_object(
        self,
        class_name: str,
        object_id: object,
        static: Mapping[str, object] | None = None,
        dynamic: Mapping[str, DynamicAttribute] | None = None,
    ) -> MostObject:
        """Insert a new object."""
        cls = self.object_class(class_name)
        if object_id in self._objects:
            raise SchemaError(f"object {object_id!r} already exists")
        obj = MostObject(object_id, cls, static=static, dynamic=dynamic)
        self._objects[object_id] = obj
        self._by_class[class_name].append(object_id)
        self._last_update_time[object_id] = self.clock.now
        return obj

    def add_moving_object(
        self,
        class_name: str,
        object_id: object,
        position: Point,
        velocity: Point | None = None,
        static: Mapping[str, object] | None = None,
        dynamic_extra: Mapping[str, DynamicAttribute] | None = None,
    ) -> MostObject:
        """Convenience: insert a spatial object from position + motion
        vector (the common case of section 1)."""
        cls = self.object_class(class_name)
        if not cls.is_spatial:
            raise SchemaError(f"class {class_name!r} is not spatial")
        if position.dim != cls.spatial_dimensions:
            raise SchemaError(
                f"position has {position.dim} coordinates, class needs "
                f"{cls.spatial_dimensions}"
            )
        now = self.clock.now
        speeds = (
            velocity.coords
            if velocity is not None
            else (0.0,) * cls.spatial_dimensions
        )
        dynamic = dict(dynamic_extra or {})
        for name, coord, speed in zip(
            cls.position_attributes, position.coords, speeds
        ):
            dynamic[name] = DynamicAttribute.linear(coord, speed, updatetime=now)
        return self.add_object(
            class_name, object_id, static=static, dynamic=dynamic
        )

    def get(self, object_id: object) -> MostObject:
        """Object by id."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise SchemaError(f"unknown object {object_id!r}") from None

    def objects_of(self, class_name: str) -> list[MostObject]:
        """All objects of one class, in insertion order."""
        self.object_class(class_name)
        return [self._objects[i] for i in self._by_class[class_name]]

    def class_count(self, class_name: str) -> int:
        """Number of objects of one class (O(1) population check)."""
        self.object_class(class_name)
        return len(self._by_class[class_name])

    def all_objects(self) -> Iterator[MostObject]:
        """Every object in the database."""
        return iter(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Explicit updates
    # ------------------------------------------------------------------
    def update_static(
        self, object_id: object, attr: str, value: object
    ) -> None:
        """Explicitly update a static attribute."""
        obj = self.get(object_id)
        old = obj._set_static(attr, value)
        self._commit(
            MostUpdate(
                self.clock.now,
                object_id,
                attr,
                old,
                value,
                class_name=obj.object_class.name,
                kind="static",
            )
        )

    def update_dynamic(
        self,
        object_id: object,
        attr: str,
        value: float | None = None,
        function: TimeFunction | None = None,
    ) -> None:
        """Explicitly update a dynamic attribute (value, function or both)
        at the current clock time."""
        obj = self.get(object_id)
        old = obj.dynamic_attribute(attr)
        new = old.updated(self.clock.now, value=value, function=function)
        obj._set_dynamic(attr, new)
        self._commit(
            MostUpdate(
                self.clock.now,
                object_id,
                attr,
                old,
                new,
                class_name=obj.object_class.name,
                kind="dynamic",
            )
        )

    def update_motion(
        self,
        object_id: object,
        velocity: Point,
        position: Point | None = None,
    ) -> None:
        """Update a spatial object's motion vector (and optionally snap its
        position, e.g. from a GPS fix)."""
        obj = self.get(object_id)
        names = obj.object_class.position_attributes
        if velocity.dim != len(names):
            raise SchemaError("velocity dimension mismatch")
        for axis, name in enumerate(names):
            self.update_dynamic(
                object_id,
                name,
                value=None if position is None else position[axis],
                function=LinearFunction(velocity[axis]),
            )

    # ------------------------------------------------------------------
    # Network ingest + staleness accounting (fault-tolerant pipeline)
    # ------------------------------------------------------------------
    def track(self, object_id: object) -> None:
        """Mark an object as *remotely sourced*: its dynamic attributes
        arrive over the network, so it participates in staleness
        accounting.  Server-local objects (named regions' reference
        objects, stationary beacons) stay untracked and always count as
        fresh."""
        self.get(object_id)
        self._tracked.add(object_id)

    def is_tracked(self, object_id: object) -> bool:
        """Whether the object participates in staleness accounting."""
        return object_id in self._tracked

    def last_update_time(self, object_id: object) -> int:
        """The tick the object was last heard from (creation time when it
        has never been updated)."""
        self.get(object_id)
        return self._last_update_time[object_id]

    def staleness(self, object_id: object) -> int:
        """Ticks since the object was last heard from.

        Untracked (server-local) objects are always fresh (0): their
        attributes never travel over the network, so there is nothing to
        go stale.
        """
        if object_id not in self._tracked:
            self.get(object_id)
            return 0
        return self.clock.now - self._last_update_time[object_id]

    def last_ingested_seq(self, object_id: object) -> int:
        """Highest sequence number applied for the object (-1 if none)."""
        return self._last_seq.get(object_id, -1)

    def ingest_motion(
        self,
        object_id: object,
        seq: int,
        velocity: Point,
        position: Point,
        measured_at: int,
    ) -> bool:
        """Apply one network-delivered motion update, idempotently.

        The update carries the position fix *at measurement time*; a
        delayed delivery extrapolates it along the reported velocity to
        the current tick, so a late update installs the same trajectory
        the sender observed.  Updates whose ``seq`` is at or below the
        highest already applied for the object are stale duplicates or
        out-of-order stragglers: they are rejected (counted in
        :attr:`ingest_rejected`) and leave the database untouched.

        Returns whether the update was applied.
        """
        obj = self.get(object_id)
        if seq <= self._last_seq.get(object_id, -1):
            self.ingest_rejected += 1
            return False
        names = obj.object_class.position_attributes
        if velocity.dim != len(names) or position.dim != len(names):
            raise SchemaError("motion update dimension mismatch")
        now = self.clock.now
        if measured_at > now:
            raise SchemaError(
                f"update measured at {measured_at} arrives at {now}"
            )
        self._last_seq[object_id] = seq
        self._tracked.add(object_id)
        extrapolated = Point(
            *(
                p + v * (now - measured_at)
                for p, v in zip(position.coords, velocity.coords)
            )
        )
        self.update_motion(object_id, velocity, position=extrapolated)
        return True

    # ------------------------------------------------------------------
    # Log + listeners
    # ------------------------------------------------------------------
    @property
    def log(self) -> tuple[MostUpdate, ...]:
        """The full update log in commit order."""
        return tuple(self._log)

    def on_update(self, listener: UpdateListener) -> Callable[[], None]:
        """Subscribe to updates; returns an unsubscribe function."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def _commit(self, update: MostUpdate) -> None:
        self._log.append(update)
        self._last_update_time[update.object_id] = update.time
        for listener in list(self._listeners):
            listener(update)

    # ------------------------------------------------------------------
    # Attribute timelines (persistent queries, section 2.3)
    # ------------------------------------------------------------------
    def attribute_timeline(
        self, object_id: object, attr: str, since: float = 0.0
    ) -> list[tuple[float, DynamicAttribute]]:
        """The versions a dynamic attribute went through.

        Returns ``[(from_time, triple)]`` sorted by time: version ``i`` is
        in force from ``from_time_i`` until the next version.  This is the
        "information about the way the database is updated over time" that
        persistent-query evaluation requires.
        """
        obj = self.get(object_id)
        current = obj.dynamic_attribute(attr)
        versions: list[tuple[float, DynamicAttribute]] = []
        for update in self._log:
            if update.object_id != object_id or update.attribute != attr:
                continue
            if not isinstance(update.new, DynamicAttribute):
                continue
            versions.append((update.time, update.new))
        if not versions or versions[0][0] > since:
            # The initial version: whatever was in force before the first
            # logged update (or the current triple when never updated).
            first_old = None
            for update in self._log:
                if (
                    update.object_id == object_id
                    and update.attribute == attr
                    and isinstance(update.old, DynamicAttribute)
                ):
                    first_old = update.old
                    break
            versions.insert(
                0, (since, first_old if first_old is not None else current)
            )
        return versions
