"""The three MOST query types (section 2.3 of the paper).

* :class:`InstantaneousQuery` — evaluated once on the future history
  beginning at entry time.
* :class:`ContinuousQuery` — "our processing algorithm evaluates the query
  once, and returns a set of tuples (ν, begin, end)"; the materialised
  ``Answer(CQ)`` is revalidated whenever an explicit update may change it,
  and re-display per tick is just an interval lookup.
* :class:`PersistentQuery` — a sequence of instantaneous queries all
  anchored at entry time, re-evaluated at every database update over the
  *recorded* history (the paper postpones this algorithm; we evaluate it
  with the reference per-state semantics over the replayed update log).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.database import MostDatabase, MostUpdate
from repro.core.history import FutureHistory, RecordedHistory
from repro.errors import QueryError
from repro.ftl.query import FtlQuery
from repro.ftl.relations import AnswerTuple, FtlRelation


@dataclass
class Answer:
    """A materialised query answer: the relation plus its flat tuples."""

    relation: FtlRelation
    computed_at: int
    horizon: int

    @property
    def tuples(self) -> list[AnswerTuple]:
        """``Answer(CQ)`` as (instantiation, begin, end) tuples."""
        return self.relation.answer_tuples()

    def at(self, t: float) -> set[tuple]:
        """Instantiations displayed at tick ``t`` ("the system presents to
        the user at each clock-tick t the instantiations of the tuples
        having an interval that contains t")."""
        return self.relation.satisfied_at(t)


class InstantaneousQuery:
    """An instantaneous query: one evaluation on the history starting at
    entry time."""

    def __init__(self, query: FtlQuery, horizon: int) -> None:
        if horizon < 0:
            raise QueryError("horizon must be non-negative")
        self.query = query
        self.horizon = horizon

    def evaluate(
        self, db: MostDatabase, method: str = "interval"
    ) -> set[tuple]:
        """The instantiations satisfying the query *now* (tuples whose
        interval contains the entry tick)."""
        return self.answer(db, method=method).at(db.clock.now)

    def answer(self, db: MostDatabase, method: str = "interval") -> Answer:
        """The full interval answer (also used by continuous queries)."""
        history = FutureHistory(db)
        relation = self.query.evaluate(history, self.horizon, method=method)
        return Answer(
            relation=relation, computed_at=db.clock.now, horizon=self.horizon
        )


class ContinuousQuery:
    """A registered continuous query with a maintained ``Answer(CQ)``.

    On registration the query is evaluated once.  Explicit updates that
    may affect the answer trigger reevaluation (counted in
    :attr:`evaluations` — experiment E4 reads this); clock ticks do *not*,
    which is the whole point of the single-evaluation scheme.
    """

    def __init__(
        self,
        db: MostDatabase,
        query: FtlQuery,
        horizon: int,
        method: str = "interval",
    ) -> None:
        if horizon < 0:
            raise QueryError("horizon must be non-negative")
        self.db = db
        self.query = query
        self.horizon = horizon
        self.method = method
        self.created_at = db.clock.now
        self.expires_at = db.clock.now + horizon
        self.evaluations = 0
        self._dirty = False
        self.answer: Answer = self._evaluate()
        self._unsubscribe = db.on_update(self._on_update)
        self._cancelled = False

    # ------------------------------------------------------------------
    def _evaluate(self) -> Answer:
        self.evaluations += 1
        history = FutureHistory(self.db)
        remaining = max(0, self.expires_at - self.db.clock.now)
        relation = self.query.evaluate(history, remaining, method=self.method)
        return Answer(
            relation=relation,
            computed_at=self.db.clock.now,
            horizon=remaining,
        )

    def _on_update(self, update: MostUpdate) -> None:
        if self._cancelled or self.db.clock.now > self.expires_at:
            return
        if self._affects(update):
            # Lazy revalidation: a motion-vector change touches several
            # axis attributes in one logical update; recomputing on the
            # next read coalesces them into a single reevaluation.
            self._dirty = True

    def _ensure_fresh(self) -> None:
        if self._dirty and self.db.clock.now <= self.expires_at:
            self.answer = self._evaluate()
        self._dirty = False

    def _affects(self, update: MostUpdate) -> bool:
        """Whether an update may change ``Answer(CQ)``.

        Conservative test: the updated object belongs to one of the
        classes the query ranges over.
        """
        try:
            cls = self.db.get(update.object_id).object_class.name
        except Exception:
            return True
        return cls in set(self.query.bindings.values())

    # ------------------------------------------------------------------
    def current(self) -> set[tuple]:
        """The display at the current clock tick."""
        if self._cancelled:
            raise QueryError("query was cancelled")
        now = self.db.clock.now
        if now > self.expires_at:
            return set()
        self._ensure_fresh()
        return self.answer.at(now)

    def answer_tuples(self) -> list[AnswerTuple]:
        """The current ``Answer(CQ)`` tuples."""
        self._ensure_fresh()
        return self.answer.tuples

    def cancel(self) -> None:
        """Stop maintaining the answer ("until cancelled")."""
        if not self._cancelled:
            self._unsubscribe()
            self._cancelled = True


class PersistentQuery:
    """A persistent query anchored at its entry time.

    "A persistent query at time t is a sequence of instantaneous queries
    on the infinite history starting at t ... evaluated at each time
    t' >= t the database is updated."  Evaluation replays the update log
    through a :class:`RecordedHistory` and checks satisfaction at the
    anchor tick.
    """

    def __init__(
        self,
        db: MostDatabase,
        query: FtlQuery,
        horizon: int,
        method: str = "auto",
    ) -> None:
        if horizon < 0:
            raise QueryError("horizon must be non-negative")
        if method not in ("auto", "interval", "naive"):
            raise QueryError(f"unknown method {method!r}")
        self.db = db
        self.query = query
        self.horizon = horizon
        self.method = method
        #: Which evaluator actually answered the last evaluation.
        self.last_method: str | None = None
        self.anchor = db.clock.now
        self.evaluations = 0
        self._cancelled = False
        self._current: set[tuple] = self._evaluate()
        self._unsubscribe = db.on_update(self._on_update)
        self._listeners: list[Callable[[set[tuple]], None]] = []

    def _evaluate(self) -> set[tuple]:
        """Evaluate over the recorded history anchored at entry time.

        The paper defers persistent-query processing; here the appendix
        interval algorithm handles it whenever the recorded trajectories
        are continuous piecewise-linear (the update log then yields a
        single piecewise moving point per object), with the per-state
        reference evaluator as the general fallback.
        """
        self.evaluations += 1
        history = RecordedHistory(self.db, self.anchor)
        if self.method in ("auto", "interval"):
            try:
                relation = self.query.evaluate(
                    history, self.horizon, method="interval"
                )
                self.last_method = "interval"
                return relation.satisfied_at(self.anchor)
            except QueryError:
                if self.method == "interval":
                    raise
        relation = self.query.evaluate(history, self.horizon, method="naive")
        self.last_method = "naive"
        return relation.satisfied_at(self.anchor)

    def _on_update(self, update: MostUpdate) -> None:
        if self._cancelled:
            return
        result = self._evaluate()
        if result != self._current:
            self._current = result
            for listener in list(self._listeners):
                listener(result)

    # ------------------------------------------------------------------
    def current(self) -> set[tuple]:
        """The instantiations currently satisfying the anchored query."""
        return set(self._current)

    def on_change(self, listener: Callable[[set[tuple]], None]) -> None:
        """Subscribe to answer changes (the trigger hook)."""
        self._listeners.append(listener)

    def cancel(self) -> None:
        """Stop re-evaluating."""
        if not self._cancelled:
            self._unsubscribe()
            self._cancelled = True
