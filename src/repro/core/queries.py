"""The three MOST query types (section 2.3 of the paper).

* :class:`InstantaneousQuery` — evaluated once on the future history
  beginning at entry time.
* :class:`ContinuousQuery` — "our processing algorithm evaluates the query
  once, and returns a set of tuples (ν, begin, end)"; the materialised
  ``Answer(CQ)`` is revalidated whenever an explicit update may change it,
  and re-display per tick is just an interval lookup.
* :class:`PersistentQuery` — a sequence of instantaneous queries all
  anchored at entry time, re-evaluated at every database update over the
  *recorded* history (the paper postpones this algorithm; we evaluate it
  with the reference per-state semantics over the replayed update log).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.database import MostDatabase, MostUpdate
from repro.core.history import FutureHistory, RecordedHistory
from repro.errors import FtlSemanticsError, QueryError, SchemaError
from repro.ftl.analysis import AnalysisResult, CostModel, Diagnostic
from repro.ftl.analysis.deps import Dep, DepAnalysis, update_footprint
from repro.ftl.analysis.validity import (
    ValidityAnalysis,
    analyze_query_validity,
    class_motion_events,
    update_divergence,
)
from repro.ftl.analysis.plan import EvalPlan
from repro.ftl.context import EvalContext
from repro.ftl.incremental import (
    PartialIntervalEvaluator,
    QueryCache,
    evaluate_with_cache,
)
from repro.ftl.query import FtlQuery
from repro.ftl.relations import AnswerTuple, FtlRelation


def _require_bound_classes(query: FtlQuery, db: MostDatabase) -> None:
    """Fail fast when the query ranges over a class the database lacks.

    Registration-time gate shared by every query class (and the
    continuous-query server's subscription registry): a query whose FROM
    clause names a class absent from this database raises a clean
    :class:`~repro.errors.SchemaError` naming the missing classes, never
    a deep evaluator error at first refresh.
    """
    known = set(db.class_names())
    missing = sorted(
        {cls for cls in query.bindings.values() if cls not in known}
    )
    if missing:
        names = ", ".join(repr(c) for c in missing)
        have = ", ".join(repr(c) for c in sorted(known)) or "none"
        raise SchemaError(
            f"query ranges over unknown object class(es) {names}; "
            f"classes defined in this database: {have}"
        )


def _analyze_or_raise(query: FtlQuery, db: MostDatabase) -> AnalysisResult:
    """Run the static analyzer against the database schema, failing fast.

    Every query class gates evaluation on this: a query the analyzer
    rejects (unknown attribute, unsafe construct, ...) never reaches an
    evaluator, so malformed queries fail at registration with a
    span-carrying :class:`~repro.errors.FtlAnalysisError` instead of an
    :class:`~repro.errors.FtlSemanticsError` mid-evaluation.
    """
    analysis = query.analyze(schema=db)
    analysis.raise_on_error()
    analysis.warn_on_lints()
    return analysis


@dataclass(frozen=True)
class StampedTuple:
    """One ``Answer(CQ)`` tuple with its staleness annotation.

    ``max_age`` is the age (ticks since last heard from) of the *oldest*
    object whose dynamic attributes the tuple was computed from —
    ``support`` is that full instantiation, targets and non-target bound
    variables alike.  ``degraded`` flags tuples whose ``max_age`` exceeds
    the query's staleness bound: they are suppressed from the degraded
    answer but still reported here so a client can render them greyed
    out rather than silently absent.
    """

    values: tuple
    begin: float
    end: float
    max_age: float
    support: tuple
    degraded: bool

    def active_at(self, t: float) -> bool:
        """Whether this tuple is displayed at clock tick ``t``."""
        return self.begin <= t <= self.end


def _object_age(db: MostDatabase, object_id: object) -> float:
    """Ticks since ``object_id`` was heard from (inf when unknown)."""
    try:
        return db.staleness(object_id)
    except SchemaError:
        return float("inf")


def _stamp_rows(
    db: MostDatabase,
    relation: FtlRelation,
    positions: list[int],
    bound: float | None,
    lo: float | None = None,
    hi: float | None = None,
) -> list[StampedTuple]:
    """Flatten an unprojected relation into stamped answer tuples."""
    out: list[StampedTuple] = []
    for inst, iset in relation.rows():
        age = max((_object_age(db, v) for v in inst), default=0.0)
        degraded = bound is not None and age > bound
        values = tuple(inst[p] for p in positions)
        if lo is not None and hi is not None:
            iset = iset.clip(lo, hi)
        for iv in iset:
            out.append(
                StampedTuple(values, iv.start, iv.end, age, inst, degraded)
            )
    return out


@dataclass
class Answer:
    """A materialised query answer: the relation plus its flat tuples."""

    relation: FtlRelation
    computed_at: int
    horizon: int

    @property
    def tuples(self) -> list[AnswerTuple]:
        """``Answer(CQ)`` as (instantiation, begin, end) tuples."""
        return self.relation.answer_tuples()

    def at(self, t: float) -> set[tuple]:
        """Instantiations displayed at tick ``t`` ("the system presents to
        the user at each clock-tick t the instantiations of the tuples
        having an interval that contains t")."""
        return self.relation.satisfied_at(t)


class InstantaneousQuery:
    """An instantaneous query: one evaluation on the history starting at
    entry time."""

    def __init__(self, query: FtlQuery, horizon: int) -> None:
        if horizon < 0:
            raise QueryError("horizon must be non-negative")
        self.query = query
        self.horizon = horizon
        #: Schema-less static analysis, refined against the actual
        #: database schema on the first evaluation per database.
        self.analysis = query.analyze()
        self.analysis.raise_on_error()
        self.analysis.warn_on_lints()
        self._analyzed_dbs: set[int] = set()

    def _gate(self, db: MostDatabase) -> None:
        """Re-run the analyzer against ``db``'s schema (once per db)."""
        if id(db) not in self._analyzed_dbs:
            _require_bound_classes(self.query, db)
            self.analysis = _analyze_or_raise(self.query, db)
            self._analyzed_dbs.add(id(db))

    def evaluate(
        self, db: MostDatabase, method: str = "interval"
    ) -> set[tuple]:
        """The instantiations satisfying the query *now* (tuples whose
        interval contains the entry tick)."""
        return self.answer(db, method=method).at(db.clock.now)

    def answer(self, db: MostDatabase, method: str = "interval") -> Answer:
        """The full interval answer (also used by continuous queries)."""
        self._gate(db)
        history = FutureHistory(db)
        relation = self.query.evaluate(history, self.horizon, method=method)
        return Answer(
            relation=relation, computed_at=db.clock.now, horizon=self.horizon
        )

    def stamped(
        self,
        db: MostDatabase,
        method: str = "interval",
        staleness_bound: float | None = None,
    ) -> list[StampedTuple]:
        """The answer with per-tuple staleness annotations.

        Each tuple carries the ``max_age`` of the dynamic attributes it
        was computed from; with a ``staleness_bound``, tuples depending
        on objects not heard from within the bound come back flagged
        ``degraded`` (the graceful-degradation rule — see DESIGN.md §4).
        """
        self._gate(db)
        history = FutureHistory(db)
        relation = self.query.evaluate_full(
            history, self.horizon, method=method
        )
        positions = [
            relation.variables.index(t) for t in self.query.targets
        ]
        return _stamp_rows(db, relation, positions, staleness_bound)


class ContinuousQuery:
    """A registered continuous query with a maintained ``Answer(CQ)``.

    On registration the query is evaluated once.  Explicit updates that
    may affect the answer trigger reevaluation (counted in
    :attr:`evaluations` — experiment E4 reads this); clock ticks do *not*,
    which is the whole point of the single-evaluation scheme.

    With ``method="incremental"`` the initial evaluation caches every
    per-subformula relation, updates accumulate the *dirty-instantiation*
    frontier (which objects changed, hence which variable instantiations
    can differ), and revalidation patches only those rows through
    :class:`~repro.ftl.incremental.PartialIntervalEvaluator` — falling
    back to full reevaluation when the formula contains an assignment
    quantifier, when the population of a bound class changed, or when an
    update cannot be attributed to a bound object (see DESIGN.md).
    Formula-level fallbacks are reported: :attr:`incremental_rejection`
    is the static-analysis diagnostic (FTL401/FTL403) naming the
    disqualifying subformula, ``None`` when incremental maintenance is
    in effect.

    Update relevance is decided by :meth:`affects` against a static
    *read-set* (DESIGN.md §10): updates whose (class, kind) footprint
    the query provably never reads are dropped (:attr:`skipped_by_deps`),
    and within an incremental refresh, cached subtrees whose read-sets
    are disjoint from the accumulated dirty footprints are reused
    without recomputation (:attr:`subtrees_skipped`).

    On top of the read-set gate sits the *temporal-validity* gate
    (pass 8, DESIGN.md §11): when the static analysis proves the whole
    condition's answer valid through the query's expiration horizon
    (no read class has a motion event before it), a covered update
    whose kinetic consequences provably lie beyond the horizon — a
    pure re-anchor "heartbeat", say — is dropped without dirtying the
    answer (:attr:`horizon_skipped`); within an incremental refresh,
    touched subtrees whose validity stamp and dirty divergence times
    both reach the window end are reused
    (:attr:`horizon_subtrees_skipped`); and the kinetic-solve cache
    serves pure time advance by clipping horizon-stamped entries
    instead of re-solving.  ``validity_horizons=False`` disables all
    three (the differential twin of the soundness wall).
    """

    _METHODS = ("interval", "naive", "incremental")

    def __init__(
        self,
        db: MostDatabase,
        query: FtlQuery,
        horizon: int,
        method: str = "interval",
        staleness_bound: float | None = None,
        ordered: bool = True,
        index_pruning: bool = True,
        solve_cache: bool = True,
        batch_solver: bool = True,
        validity_horizons: bool = True,
        parallel: object = None,
    ) -> None:
        if horizon < 0:
            raise QueryError("horizon must be non-negative")
        if method not in self._METHODS:
            raise QueryError(f"unknown method {method!r}")
        if staleness_bound is not None and staleness_bound < 0:
            raise QueryError("staleness bound must be non-negative")
        #: Worker count for sharded full refreshes (DESIGN.md §12); 1
        #: keeps everything in-process.  Incremental *patch* refreshes
        #: stay serial either way — their dirty frontier is small by
        #: construction — but the initial evaluation and every full
        #: fallback shard across the pool.
        self.parallel_workers = 1
        if parallel is not None:
            from repro.parallel import resolve_workers

            self.parallel_workers = resolve_workers(parallel)
            if self.parallel_workers > 1 and method == "naive":
                raise QueryError(
                    "parallel evaluation requires the interval method "
                    "(got method='naive')"
                )
        self.db = db
        self.query = query
        self.horizon = horizon
        self.method = method
        #: Evaluate through a cost-ordered plan (built once at
        #: registration from the actual class populations) instead of
        #: syntactic operand order; answers are identical either way.
        self.ordered = ordered
        #: Answer atom instantiations outside the trajectory-MBR candidate
        #: sets without kinetic solves (DESIGN.md §7); answers are
        #: identical either way.
        self.index_pruning = index_pruning
        #: Reuse kinetic solves across refreshes through the database-wide
        #: memo table (updates invalidate via attribute updatetimes).
        self.solve_cache = solve_cache
        #: Submit each atom's surviving instantiations to the vectorized
        #: kinetic backend as one batch (DESIGN.md §8); answers are
        #: identical either way.
        self.batch_solver = batch_solver
        #: Suppress tuples depending on objects not heard from within
        #: this many ticks (None = no degradation).
        self.staleness_bound = staleness_bound
        #: Tuples suppressed by the staleness bound at the last read.
        self.suppressed = 0
        self.created_at = db.clock.now
        self.expires_at = db.clock.now + horizon
        #: Total answer refreshes (full + incremental) — experiment E4.
        self.evaluations = 0
        #: Of which, full reevaluations.
        self.full_evaluations = 0
        #: Of which, incremental (patch-based) refreshes.
        self.incremental_refreshes = 0
        #: Rows recomputed across all incremental refreshes.
        self.rows_recomputed = 0
        self._bound_classes = frozenset(query.bindings.values())
        # Unknown classes fail at registration with a SchemaError naming
        # them — never a deep evaluator error at first refresh.
        _require_bound_classes(query, db)
        #: Static analysis against the database schema; errors raise
        #: FtlAnalysisError before the first evaluation.
        self.analysis = _analyze_or_raise(query, db)
        #: The cost-ordered evaluation plan all refreshes run through.
        #: The continuous query owns it: the plan keeps the ordered
        #: formula tree alive, so the ``id``-keyed incremental caches
        #: stay valid across refreshes.
        self.plan: EvalPlan | None = None
        if ordered:
            sizes = {
                cls: db.class_count(cls) for cls in self._bound_classes
            }
            try:
                self.plan = query.plan_for(
                    model=CostModel(class_sizes=sizes, horizon=horizon)
                )
            except FtlSemanticsError:
                self.plan = None
        #: With ``method="incremental"``, the diagnostics naming each
        #: subformula (FTL401) or free-ranging target (FTL403) that
        #: forces the fallback to full reevaluation; empty when the
        #: query is incrementally maintainable.
        self.incremental_rejections: tuple[Diagnostic, ...] = ()
        if method == "incremental":
            rejections: list[Diagnostic] = []
            if self.analysis.fragment is not None:
                rejections.extend(self.analysis.fragment.blockers)
            rejections.extend(
                d for d in self.analysis.diagnostics if d.code == "FTL403"
            )
            self.incremental_rejections = tuple(rejections)
        #: The first rejection (or None) — the one-line explanation of
        #: why an incremental registration fell back.
        self.incremental_rejection: Diagnostic | None = (
            self.incremental_rejections[0]
            if self.incremental_rejections
            else None
        )
        self._use_incremental = (
            method == "incremental" and not self.incremental_rejections
        )
        self._eval_method = "interval" if method == "incremental" else method
        #: Static update-impact analysis (DESIGN.md §10): the read-set of
        #: every plan node, keyed over the tree the evaluators actually
        #: walk (the plan's ordered tree when there is one).  ``None``
        #: disables dependency pruning — every update stays relevant.
        self._deps: DepAnalysis | None = None
        try:
            if self.plan is not None:
                self._deps = self.plan.dependency_analysis(schema=db)
            else:
                from repro.ftl.analysis.deps import analyze_query_deps

                self._deps = analyze_query_deps(query, schema=db)
        except Exception:
            self._deps = None
        #: Updates ignored because their (class, kind) footprint lies
        #: outside the query's inferred read-set.
        self.skipped_by_deps = 0
        #: Plan subtrees the incremental evaluator skipped because their
        #: read-set was disjoint from the dirty updates' footprints.
        self.subtrees_skipped = 0
        #: Temporal-validity analysis (pass 8, DESIGN.md §11): symbolic
        #: per-node horizons over the same tree ``_deps`` is keyed on.
        #: ``None`` disables horizon skipping and stamped solve reuse.
        self.validity_horizons = validity_horizons
        self._validity: ValidityAnalysis | None = None
        if validity_horizons and self._deps is not None:
            try:
                if self.plan is not None:
                    self._validity = self.plan.validity_analysis(schema=db)
                else:
                    self._validity = analyze_query_validity(
                        query, schema=db, deps=self._deps
                    )
            except Exception:
                self._validity = None
        #: Covered updates dropped because their kinetic consequences
        #: provably lie beyond the query's validity horizon.
        self.horizon_skipped = 0
        #: Plan subtrees the incremental evaluator reused because the
        #: dirty updates' divergence times lie beyond the window end.
        self.horizon_subtrees_skipped = 0
        #: Concrete per-node expiry stamps of the last refresh, keyed by
        #: ``id(subformula)`` over the evaluated tree.
        self._validity_stamps: dict[int, float] | None = None
        #: The whole condition's concrete ``t_expire`` at the last
        #: refresh (clamped to the expiration horizon).
        self._valid_until: float = float(db.clock.now)
        #: Whether the last refresh proved the root horizon reaches the
        #: expiration horizon — the static gate for update skipping.
        self._horizon_eligible = False
        #: Per dirty footprint, the earliest divergence time of its
        #: accumulated updates; ``None`` when tracking stands down.
        self._dirty_divergence: dict[Dep, float] | None = {}
        self._dirty = False
        self._needs_full = False
        self._dirty_objects: set[object] = set()
        #: Footprints of the updates accumulated since the last refresh;
        #: ``None`` when some accepted update could not be attributed
        #: (subtree skipping then stands down for that refresh).
        self._dirty_deps: set[Dep] | None = set()
        self._rf: FtlRelation | None = None
        self._cache: QueryCache | None = None
        self._target_positions: list[int] = []
        self._population: dict[str, int] = {}
        self._answer: Answer | None = None
        self._last_refresh = db.clock.now
        self._cancelled = False
        self._full_evaluate()
        self._unsubscribe = db.on_update(self._on_update)

    # ------------------------------------------------------------------
    @property
    def answer(self) -> Answer:
        """The materialised ``Answer(CQ)`` (projected onto the targets).

        Under incremental maintenance the unprojected ``R_f`` is the
        maintained object; the projection is built lazily here, clipped to
        the still-displayable window ``[last refresh, expiration]``.
        """
        if self._answer is None:
            assert self._rf is not None
            relation = self._rf.project(self.query.targets).clipped(
                self._last_refresh, self.expires_at
            )
            self._answer = Answer(
                relation=relation,
                computed_at=self._last_refresh,
                horizon=max(0, self.expires_at - self._last_refresh),
            )
        return self._answer

    @property
    def cached_relations(self) -> int:
        """Subformula relations held by the incremental cache (0 when the
        query is not incrementally maintained).  The continuous-query
        server's metrics report this per registered query."""
        return 0 if self._cache is None else len(self._cache)

    # ------------------------------------------------------------------
    def _full_evaluate(self) -> None:
        self.evaluations += 1
        self.full_evaluations += 1
        now = self.db.clock.now
        history = FutureHistory(self.db)
        remaining = max(0, self.expires_at - now)
        self._compute_validity_stamps(now)
        if self._use_incremental:
            if self.parallel_workers > 1:
                # Sharded initial evaluation: the merged per-subformula
                # trace equals the serial trace bit for bit (keyed union
                # per node — see repro.parallel.evaluator), so it seeds
                # the incremental cache exactly like evaluate_with_cache.
                from repro.parallel.evaluator import (
                    ShardedIntervalEvaluator,
                )

                sharded = ShardedIntervalEvaluator(
                    self.query,
                    history,
                    remaining,
                    self.parallel_workers,
                    plan=self.plan,
                    ordered=self.plan is not None,
                    index_pruning=self.index_pruning,
                    solve_cache=self.solve_cache,
                    batch_solver=self.batch_solver,
                    validity=self._validity_stamps,
                    want_trace=True,
                )
                self._rf = sharded.evaluate()
                cache = QueryCache()
                cache.relations = sharded.trace or {}
                self._cache = cache
            else:
                rf, cache, _evaluator = evaluate_with_cache(
                    self.query,
                    history,
                    remaining,
                    plan=self.plan,
                    index_pruning=self.index_pruning,
                    solve_cache=self.solve_cache,
                    batch_solver=self.batch_solver,
                    validity=self._validity_stamps,
                )
                self._rf = rf
                self._cache = cache
        else:
            # The unprojected relation is the maintained object for every
            # method: its instantiations name the objects each tuple's
            # intervals were computed from, which staleness-aware
            # degradation needs (the projection is built lazily).
            self._rf = self.query.evaluate_full(
                history,
                remaining,
                method=self._eval_method,
                ordered=False,
                plan=self.plan,
                index_pruning=self.index_pruning,
                solve_cache=self.solve_cache,
                batch_solver=self.batch_solver,
                validity=self._validity_stamps,
                parallel=self.parallel_workers,
            )
            self._cache = None
        self._target_positions = [
            self._rf.variables.index(t) for t in self.query.targets
        ]
        self._population = self._population_counts()
        self._answer = None
        self._last_refresh = now

    def _refresh_incremental(self) -> None:
        self.evaluations += 1
        self.incremental_refreshes += 1
        now = self.db.clock.now
        remaining = max(0, self.expires_at - now)
        history = FutureHistory(self.db, snapshot=False)
        ctx = EvalContext(history, remaining, self.query.bindings)
        self._compute_validity_stamps(now)
        evaluator = PartialIntervalEvaluator(
            ctx,
            self._cache,
            frozenset(self._dirty_objects),
            plan=self.plan,
            index_pruning=self.index_pruning,
            solve_cache=self.solve_cache,
            batch_solver=self.batch_solver,
            deps=self._deps,
            dirty_deps=(
                frozenset(self._dirty_deps)
                if self._dirty_deps is not None
                else None
            ),
            validity=self._validity_stamps,
            dirty_divergence=(
                dict(self._dirty_divergence)
                if self._dirty_divergence is not None
                else None
            ),
        )
        self._rf = evaluator.refresh(self.query.where)
        self.rows_recomputed += evaluator.rows_recomputed
        self.subtrees_skipped += evaluator.subtrees_skipped
        self.horizon_subtrees_skipped += evaluator.horizon_subtrees_skipped
        self._last_refresh = now
        self._answer = None

    def _compute_validity_stamps(self, now: int) -> None:
        """Concretize the static validity horizons at refresh time.

        Scans the bound classes' dynamic attributes for the earliest
        future motion event (leg boundary or scheduled expiry) and turns
        the symbolic per-node horizons into absolute expiry stamps.  The
        stamps flow into the evaluator (window-shifted cache reuse and
        horizon-pruned incremental refresh) and into the update-stream
        gate (:meth:`_beyond_validity_horizon`).  Any failure degrades
        to "no stamps" — every consumer treats that as "never skip".
        """
        if self._validity is None:
            return
        end = float(self.expires_at)
        t_eval = float(now)
        try:
            events = class_motion_events(
                self.db, self._validity.dynamic_classes(), t_eval, end
            )
            self._validity_stamps = self._validity.concretize(
                events, t_eval, end
            )
            root_expiry = self._validity.root_horizon.concretize(
                events, t_eval, end
            )
        except Exception:
            self._validity_stamps = None
            self._valid_until = t_eval
            self._horizon_eligible = False
            return
        self._valid_until = min(root_expiry, end)
        self._horizon_eligible = (
            not self._validity.root_horizon.bottom and root_expiry >= end
        )

    def _beyond_validity_horizon(self, update: MostUpdate) -> bool:
        """Whether ``update`` provably cannot change the answer before
        the query expires (the temporal-validity gate).

        Requires (a) the whole formula's concrete horizon — computed at
        the last refresh — to cover the remaining lifetime, and (b) the
        update to leave its attribute's trajectory pointwise unchanged
        on the remaining window.  Staleness of (a) is harmless: the
        divergence test (b) alone proves the database state the cached
        answer was derived from persists through ``expires_at``.
        """
        if self._validity is None or not self._horizon_eligible:
            return False
        end = float(self.expires_at)
        return update_divergence(update, end) >= end

    def _on_update(self, update: MostUpdate) -> None:
        if self._cancelled or self.db.clock.now > self.expires_at:
            return
        if not self.affects(update):
            return
        if self._beyond_validity_horizon(update):
            # The update is covered by the read-set but provably leaves
            # every read trajectory unchanged through expiry (e.g. a
            # heartbeat re-anchoring the same motion law): the cached
            # answer stays exact, so don't even mark the query dirty.
            self.horizon_skipped += 1
            return
        # Lazy revalidation: a motion-vector change touches several
        # axis attributes in one logical update; recomputing on the
        # next read coalesces them into a single reevaluation.
        self._dirty = True
        if self._resolve_class(update) is None:
            # Can't attribute the update to a bound object — conservative
            # full reevaluation on the next read.
            self._needs_full = True
        else:
            self._dirty_objects.add(update.object_id)
            if self._dirty_deps is not None:
                footprint = update_footprint(update, self.db)
                if footprint is None:
                    self._dirty_deps = None
                    self._dirty_divergence = None
                else:
                    self._dirty_deps.add(footprint)
                    if self._dirty_divergence is not None:
                        div = update_divergence(
                            update, float(self.expires_at)
                        )
                        prev = self._dirty_divergence.get(footprint)
                        self._dirty_divergence[footprint] = (
                            div if prev is None else min(prev, div)
                        )

    def _ensure_fresh(self) -> None:
        if self._dirty and self.db.clock.now <= self.expires_at:
            if self._can_refresh_incrementally():
                self._refresh_incremental()
            else:
                self._full_evaluate()
        self._dirty = False
        self._needs_full = False
        self._dirty_objects.clear()
        self._dirty_deps = set()
        self._dirty_divergence = {}

    def _can_refresh_incrementally(self) -> bool:
        return (
            self._use_incremental
            and not self._needs_full
            and self._cache is not None
            and bool(self._dirty_objects)
            and self._population_counts() == self._population
        )

    def _population_counts(self) -> dict[str, int]:
        return {
            cls: self.db.class_count(cls) for cls in self._bound_classes
        }

    def _resolve_class(self, update: MostUpdate) -> str | None:
        """The updated object's class name, or ``None`` when unknown."""
        if update.class_name is not None:
            return update.class_name
        try:
            return self.db.get(update.object_id).object_class.name
        except SchemaError:
            return None

    def _known_object(self, object_id: object) -> bool:
        """Whether ``object_id`` names a live object in the database."""
        try:
            self.db.get(object_id)
        except SchemaError:
            return False
        return True

    def affects(self, update: MostUpdate) -> bool:
        """Whether an update may change ``Answer(CQ)``.

        Two-stage test.  First the class gate: the updated object must
        belong to a class the query ranges over, and — when the update
        carries class metadata — must actually be a live object of this
        database (an update for a known class but an id the database has
        never seen cannot appear in any instantiation).  An update that
        carries no class metadata *and* names an unknown id stays
        conservatively relevant.

        Then the dependency gate (DESIGN.md §10): the update's
        (class, kind) footprint — position, attribute, or static — must
        intersect the query's statically inferred read-set; updates the
        read-set provably ignores are counted in :attr:`skipped_by_deps`
        and dropped without dirtying the answer.
        """
        cls = self._resolve_class(update)
        if cls is None:
            return True
        if cls not in self._bound_classes:
            return False
        if update.class_name is not None and not self._known_object(
            update.object_id
        ):
            # The class is bound, but the id never entered the database:
            # no instantiation can mention it, so the update is inert.
            return False
        if self._deps is None:
            return True
        footprint = update_footprint(update, self.db)
        if footprint is None:
            return True
        if not self._deps.query_reads.covers(footprint):
            self.skipped_by_deps += 1
            return False
        return True

    # Backwards-compatible alias (the method predates the public name).
    _affects = affects

    @property
    def needs_refresh(self) -> bool:
        """Whether the next read will recompute ``Answer(CQ)``.

        The subscription registry polls this to skip refresh work for
        queries no relevant update has touched since their last read.
        """
        return (
            self._dirty
            and not self._cancelled
            and self.db.clock.now <= self.expires_at
        )

    @property
    def valid_until(self) -> float:
        """Absolute time through which the current answer is statically
        guaranteed exact absent updates (the concrete root horizon from
        the last refresh, clamped to :attr:`expires_at`).  Equal to the
        last refresh time when the analyzer bottomed out."""
        return self._valid_until

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Bring ``Answer(CQ)`` up to date without displaying it.

        This is the per-update maintenance cost in isolation — what the
        incremental-maintenance benchmark measures.
        """
        if self._cancelled:
            raise QueryError("query was cancelled")
        self._ensure_fresh()

    def _is_fresh(self, inst: tuple) -> bool:
        """Whether every object the instantiation reads is within the
        staleness bound."""
        bound = self.staleness_bound
        return all(_object_age(self.db, v) <= bound for v in inst)

    def current(self) -> set[tuple]:
        """The display at the current clock tick.

        With a staleness bound, instantiations depending on an object not
        heard from within the bound are suppressed (counted in
        :attr:`suppressed`) — the degraded answer never presents a tuple
        as current on the strength of data older than the bound.
        """
        if self._cancelled:
            raise QueryError("query was cancelled")
        now = self.db.clock.now
        if now > self.expires_at:
            return set()
        self._ensure_fresh()
        insts = self._rf.satisfied_at(now)
        if self.staleness_bound is not None:
            kept = {inst for inst in insts if self._is_fresh(inst)}
            self.suppressed = len(insts) - len(kept)
            insts = kept
        return {
            tuple(inst[p] for p in self._target_positions) for inst in insts
        }

    def answer_tuples(self, include_stale: bool = False) -> list[AnswerTuple]:
        """The current ``Answer(CQ)`` tuples.

        With a staleness bound, tuples supported by out-of-date objects
        are suppressed unless ``include_stale`` is set (the chaos
        harness's convergence check wants the full answer)."""
        self._ensure_fresh()
        if self.staleness_bound is None or include_stale:
            return self.answer.tuples
        filtered = FtlRelation(self._rf.variables)
        suppressed = 0
        for inst, iset in self._rf.rows():
            if self._is_fresh(inst):
                filtered.add(inst, iset)
            else:
                suppressed += 1
        self.suppressed = suppressed
        relation = filtered.project(self.query.targets).clipped(
            self._last_refresh, self.expires_at
        )
        return relation.answer_tuples()

    def stamped_tuples(self) -> list[StampedTuple]:
        """Every ``Answer(CQ)`` tuple with its staleness annotation —
        degraded tuples included, flagged rather than suppressed."""
        self._ensure_fresh()
        return _stamp_rows(
            self.db,
            self._rf,
            self._target_positions,
            self.staleness_bound,
            self._last_refresh,
            self.expires_at,
        )

    def cancel(self) -> None:
        """Stop maintaining the answer ("until cancelled")."""
        if not self._cancelled:
            self._unsubscribe()
            self._cancelled = True


class PersistentQuery:
    """A persistent query anchored at its entry time.

    "A persistent query at time t is a sequence of instantaneous queries
    on the infinite history starting at t ... evaluated at each time
    t' >= t the database is updated."  Evaluation replays the update log
    through a :class:`RecordedHistory` and checks satisfaction at the
    anchor tick.
    """

    def __init__(
        self,
        db: MostDatabase,
        query: FtlQuery,
        horizon: int,
        method: str = "auto",
    ) -> None:
        if horizon < 0:
            raise QueryError("horizon must be non-negative")
        if method not in ("auto", "interval", "naive"):
            raise QueryError(f"unknown method {method!r}")
        self.db = db
        self.query = query
        self.horizon = horizon
        self.method = method
        _require_bound_classes(query, db)
        #: Static analysis against the database schema (fail fast).
        self.analysis = _analyze_or_raise(query, db)
        #: Which evaluator actually answered the last evaluation.
        self.last_method: str | None = None
        self.anchor = db.clock.now
        self.evaluations = 0
        self._cancelled = False
        self._current: set[tuple] = self._evaluate()
        self._unsubscribe = db.on_update(self._on_update)
        self._listeners: list[Callable[[set[tuple]], None]] = []

    def _evaluate(self) -> set[tuple]:
        """Evaluate over the recorded history anchored at entry time.

        The paper defers persistent-query processing; here the appendix
        interval algorithm handles it whenever the recorded trajectories
        are continuous piecewise-linear (the update log then yields a
        single piecewise moving point per object), with the per-state
        reference evaluator as the general fallback.
        """
        self.evaluations += 1
        history = RecordedHistory(self.db, self.anchor)
        if self.method in ("auto", "interval"):
            try:
                relation = self.query.evaluate(
                    history, self.horizon, method="interval"
                )
                self.last_method = "interval"
                return relation.satisfied_at(self.anchor)
            except QueryError:
                if self.method == "interval":
                    raise
        relation = self.query.evaluate(history, self.horizon, method="naive")
        self.last_method = "naive"
        return relation.satisfied_at(self.anchor)

    def _on_update(self, update: MostUpdate) -> None:
        if self._cancelled:
            return
        result = self._evaluate()
        if result != self._current:
            self._current = result
            for listener in list(self._listeners):
                listener(result)

    # ------------------------------------------------------------------
    def current(self) -> set[tuple]:
        """The instantiations currently satisfying the anchored query."""
        return set(self._current)

    def on_change(self, listener: Callable[[set[tuple]], None]) -> None:
        """Subscribe to answer changes (the trigger hook)."""
        self._listeners.append(listener)

    def cancel(self) -> None:
        """Stop re-evaluating."""
        if not self._cancelled:
            self._unsubscribe()
            self._cancelled = True
