"""Temporal triggers (section 2.3 of the paper).

"Observe that continuous and persistent queries can be used to define
temporal triggers.  Such a trigger is simply one of these two types of
queries, coupled with an action and possibly an event."

A :class:`TemporalTrigger` wraps a continuous or persistent query and
fires its action whenever an instantiation *enters* the answer (and
optionally when one leaves).
"""

from __future__ import annotations

from typing import Callable

from repro.core.database import MostDatabase, MostUpdate
from repro.core.queries import ContinuousQuery, PersistentQuery
from repro.errors import QueryError

Action = Callable[[tuple], None]


class TemporalTrigger:
    """Fires an action when the underlying query's answer changes.

    For a continuous query, the answer is time-dependent even without
    updates, so the trigger checks on every clock tick *and* after every
    database update.  For a persistent query it reacts to the query's own
    change notifications.
    """

    def __init__(
        self,
        db: MostDatabase,
        query: ContinuousQuery | PersistentQuery,
        on_enter: Action,
        on_leave: Action | None = None,
    ) -> None:
        if not isinstance(query, (ContinuousQuery, PersistentQuery)):
            raise QueryError(
                "a trigger wraps a continuous or persistent query"
            )
        self.db = db
        self.query = query
        self.on_enter = on_enter
        self.on_leave = on_leave
        self.firings = 0
        self._active: set[tuple] = set(query.current())
        self._cancelled = False
        if isinstance(query, ContinuousQuery):
            db.clock.on_tick(self._check)
            self._unsub = db.on_update(self._check_update)
        else:
            query.on_change(lambda _result: self._check(db.clock.now))
            self._unsub = lambda: None
        # Fire for anything already satisfied at registration time.
        for inst in sorted(self._active, key=str):
            self.firings += 1
            self.on_enter(inst)

    # ------------------------------------------------------------------
    def _check_update(self, update: MostUpdate) -> None:
        if isinstance(self.query, ContinuousQuery) and not self.query.affects(
            update
        ):
            # Updates the continuous query provably cannot observe —
            # objects of unbound classes, ids the database never admitted,
            # or (class, kind) footprints outside the query's static
            # read-set (DESIGN.md §10) — leave the answer untouched: skip
            # the recheck rather than force a spurious reevaluation.
            return
        self._check(self.db.clock.now)

    def _check(self, _now: int) -> None:
        if self._cancelled:
            return
        current = set(self.query.current())
        for inst in sorted(current - self._active, key=str):
            self.firings += 1
            self.on_enter(inst)
        if self.on_leave is not None:
            for inst in sorted(self._active - current, key=str):
                self.on_leave(inst)
        self._active = current

    def cancel(self) -> None:
        """Detach from the clock and update stream."""
        if not self._cancelled:
            self._cancelled = True
            self.db.clock.remove_listener(self._check)
            self._unsub()
