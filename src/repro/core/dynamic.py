"""Dynamic attributes (section 2.1 of the paper).

A dynamic attribute ``A`` is represented by three sub-attributes —
``A.value``, ``A.updatetime`` and ``A.function`` — where the function maps
elapsed time to displacement and is 0 at 0.  "At time ``A.updatetime`` the
value of ``A`` is ``A.value``, and until the next update of ``A`` the value
of ``A`` at time ``A.updatetime + t0`` is given by
``A.value + A.function(t0)``."

Users can query the value *or any sub-attribute independently* (e.g. "the
objects for which ``X.POSITION.function = 5*t``"), so the sub-attributes
are first-class here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MotionError
from repro.motion.functions import LinearFunction, TimeFunction, ZERO_FUNCTION


@dataclass(frozen=True)
class DynamicAttribute:
    """One dynamic attribute: the (value, updatetime, function) triple.

    Immutable — an explicit update produces a new instance via
    :meth:`updated`, which is what lets the recorded history keep old
    versions for persistent queries.
    """

    value: float
    updatetime: float = 0.0
    function: TimeFunction = ZERO_FUNCTION

    def __post_init__(self) -> None:
        probe = self.function.value(0.0)
        if probe != 0.0:
            raise MotionError(
                f"A.function must satisfy function(0) == 0, got {probe}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def static(cls, value: float) -> "DynamicAttribute":
        """A degenerate dynamic attribute that never moves."""
        return cls(value=value, updatetime=0.0, function=ZERO_FUNCTION)

    @classmethod
    def linear(
        cls, value: float, speed: float, updatetime: float = 0.0
    ) -> "DynamicAttribute":
        """The motion-vector case: value changes at constant ``speed``."""
        return cls(
            value=value, updatetime=updatetime, function=LinearFunction(speed)
        )

    # ------------------------------------------------------------------
    def value_at(self, t: float) -> float:
        """The attribute's value at absolute time ``t``.

        Defined for ``t >= updatetime`` (the implied future); earlier times
        extrapolate backwards, which the recorded history never asks for.
        """
        return self.value + self.function.value(t - self.updatetime)

    @property
    def speed(self) -> float:
        """Constant rate of change, when the function is linear."""
        if not self.function.is_linear:
            raise MotionError("speed undefined for a nonlinear function")
        return self.function.value(1.0)

    def updated(
        self,
        at_time: float,
        value: float | None = None,
        function: TimeFunction | None = None,
    ) -> "DynamicAttribute":
        """An explicit update at ``at_time``.

        "An explicit update of a dynamic attribute may change its value
        sub-attribute, or its function sub-attribute, or both": omitting
        ``value`` keeps the value the old motion implies at ``at_time``;
        omitting ``function`` keeps the old function.
        """
        if at_time < self.updatetime:
            raise MotionError(
                f"update at {at_time} precedes updatetime {self.updatetime}"
            )
        new_value = value if value is not None else self.value_at(at_time)
        new_function = function if function is not None else self.function
        return DynamicAttribute(
            value=new_value, updatetime=at_time, function=new_function
        )

    def sub_attribute(self, name: str) -> object:
        """Access a sub-attribute by its paper name:
        ``value`` / ``updatetime`` / ``function``."""
        if name == "value":
            return self.value
        if name == "updatetime":
            return self.updatetime
        if name == "function":
            return self.function
        raise MotionError(f"unknown sub-attribute {name!r}")

    def __str__(self) -> str:
        return (
            f"(value={self.value:g}, updatetime={self.updatetime:g},"
            f" function={self.function})"
        )
