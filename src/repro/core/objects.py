"""Object classes and objects of the MOST model (section 2).

"A database is a set of object-classes ... An object-class is a set of
attributes.  Some object-classes are designated as spatial.  A spatial
object class has three attributes called X.POSITION, Y.POSITION,
Z.POSITION, denoting the object's position in space."

Here every attribute is declared either *static* or *dynamic*
(section 2.1); spatial classes implicitly declare their position
attributes as dynamic.  Objects store static attribute values directly and
dynamic ones as :class:`~repro.core.dynamic.DynamicAttribute` triples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.dynamic import DynamicAttribute
from repro.errors import SchemaError
from repro.geometry import Point
from repro.motion.functions import ShiftedFunction, TimeFunction
from repro.motion.moving import MovingPoint

#: Canonical names of the spatial position attributes.  (The paper writes
#: ``X.POSITION``; dots are kept out of attribute names so FTL's
#: ``object.attribute`` syntax stays unambiguous.)
X_POSITION = "x_position"
Y_POSITION = "y_position"
Z_POSITION = "z_position"

_POSITION_NAMES = (X_POSITION, Y_POSITION, Z_POSITION)


@dataclass(frozen=True)
class ObjectClass:
    """An object class: named attributes, each static or dynamic.

    Args:
        name: class name (``MOTELS``, ``aircraft``, ...).
        static_attributes: names of static attributes.
        dynamic_attributes: names of non-positional dynamic attributes
            (temperature, fuel, ...).
        spatial_dimensions: 0 for a plain class; 2 or 3 adds the implicit
            dynamic position attributes.
    """

    name: str
    static_attributes: tuple[str, ...] = ()
    dynamic_attributes: tuple[str, ...] = ()
    spatial_dimensions: int = 0

    def __post_init__(self) -> None:
        if self.spatial_dimensions not in (0, 2, 3):
            raise SchemaError("spatial_dimensions must be 0, 2 or 3")
        everything = (
            list(self.static_attributes)
            + list(self.dynamic_attributes)
            + list(self.position_attributes)
        )
        if len(set(everything)) != len(everything):
            raise SchemaError(
                f"duplicate attribute names in class {self.name}: {everything}"
            )

    @property
    def is_spatial(self) -> bool:
        """Whether the class carries position attributes."""
        return self.spatial_dimensions > 0

    @property
    def position_attributes(self) -> tuple[str, ...]:
        """The implicit dynamic position attribute names."""
        return _POSITION_NAMES[: self.spatial_dimensions]

    @property
    def all_dynamic(self) -> tuple[str, ...]:
        """All dynamic attribute names, positions included."""
        return tuple(self.dynamic_attributes) + self.position_attributes

    def is_dynamic(self, attr: str) -> bool:
        """Whether ``attr`` is dynamic in this class."""
        return attr in self.dynamic_attributes or attr in self.position_attributes

    def has_attribute(self, attr: str) -> bool:
        """Whether ``attr`` is declared (static or dynamic)."""
        return (
            attr in self.static_attributes
            or attr in self.dynamic_attributes
            or attr in self.position_attributes
        )


class MostObject:
    """One object: an id plus static values and dynamic triples."""

    __slots__ = ("object_id", "object_class", "_static", "_dynamic")

    def __init__(
        self,
        object_id: object,
        object_class: ObjectClass,
        static: Mapping[str, object] | None = None,
        dynamic: Mapping[str, DynamicAttribute] | None = None,
    ) -> None:
        static = dict(static or {})
        dynamic = dict(dynamic or {})
        for name in static:
            if name not in object_class.static_attributes:
                raise SchemaError(
                    f"{name!r} is not a static attribute of {object_class.name}"
                )
        for name in dynamic:
            if not object_class.is_dynamic(name):
                raise SchemaError(
                    f"{name!r} is not a dynamic attribute of {object_class.name}"
                )
        missing = [
            name for name in object_class.all_dynamic if name not in dynamic
        ]
        if missing:
            raise SchemaError(
                f"object {object_id!r} missing dynamic attributes {missing}"
            )
        self.object_id = object_id
        self.object_class = object_class
        self._static = static
        self._dynamic = dynamic

    # ------------------------------------------------------------------
    # Attribute access
    # ------------------------------------------------------------------
    def static_value(self, attr: str) -> object:
        """A static attribute's stored value (NULL when never set)."""
        if attr not in self.object_class.static_attributes:
            raise SchemaError(
                f"{attr!r} is not a static attribute of "
                f"{self.object_class.name}"
            )
        return self._static.get(attr)

    def dynamic_attribute(self, attr: str) -> DynamicAttribute:
        """A dynamic attribute's current (value, updatetime, function)."""
        try:
            return self._dynamic[attr]
        except KeyError:
            raise SchemaError(
                f"{attr!r} is not a dynamic attribute of "
                f"{self.object_class.name}"
            ) from None

    def value_at(self, attr: str, t: float) -> object:
        """The attribute's value at time ``t`` — the evaluation rule the
        DBMS applies when a query mentions a dynamic attribute."""
        if self.object_class.is_dynamic(attr):
            return self._dynamic[attr].value_at(t)
        return self.static_value(attr)

    # ------------------------------------------------------------------
    # Spatial view
    # ------------------------------------------------------------------
    def moving_point(self) -> MovingPoint:
        """The object's position as a moving point.

        The per-axis dynamic attributes may have different update times;
        they are re-anchored onto the latest one so a single
        :class:`MovingPoint` describes the object from there on.
        """
        if not self.object_class.is_spatial:
            raise SchemaError(
                f"class {self.object_class.name} is not spatial"
            )
        attrs = [
            self._dynamic[name]
            for name in self.object_class.position_attributes
        ]
        anchor_time = max(a.updatetime for a in attrs)
        anchor = Point(*(a.value_at(anchor_time) for a in attrs))
        functions: list[TimeFunction] = [
            a.function
            if a.updatetime == anchor_time
            else ShiftedFunction(a.function, anchor_time - a.updatetime)
            for a in attrs
        ]
        return MovingPoint(anchor, functions, anchor_time=anchor_time)

    def position_at(self, t: float) -> Point:
        """Position at time ``t`` (spatial classes only)."""
        if not self.object_class.is_spatial:
            raise SchemaError(
                f"class {self.object_class.name} is not spatial"
            )
        return Point(
            *(
                self._dynamic[name].value_at(t)
                for name in self.object_class.position_attributes
            )
        )

    # ------------------------------------------------------------------
    # Mutation (package-internal; go through MostDatabase.update_* so the
    # update log stays authoritative)
    # ------------------------------------------------------------------
    def _set_static(self, attr: str, value: object) -> object:
        old = self.static_value(attr)
        self._static[attr] = value
        return old

    def _set_dynamic(self, attr: str, new: DynamicAttribute) -> DynamicAttribute:
        old = self.dynamic_attribute(attr)
        self._dynamic[attr] = new
        return old

    def __repr__(self) -> str:
        return (
            f"MostObject({self.object_id!r}, class={self.object_class.name})"
        )
