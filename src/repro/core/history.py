"""Database histories (section 2.2 of the paper).

"A database history is an infinite sequence of database states, one for
each clock tick ... the database history is an abstract concept,
introduced solely for providing formal semantics to our temporal query
language, FTL.  The database history does not consume space."

Accordingly, the classes here never materialise states eagerly:

* :class:`FutureHistory` — the history implied at a time point ``t``:
  every future state is "identical to the state at time t, except for the
  value of the dynamic attributes", which evolve under the functions
  frozen at ``t``.  This is the history instantaneous and continuous
  queries are evaluated on.
* :class:`RecordedHistory` — the history anchored at an earlier time that
  *persistent* queries are re-evaluated on: the recorded past (replayed
  from the update log) followed by the future implied by the current
  state.
* :class:`DatabaseState` — a lazy view of one state, mostly for
  presentation and the naive reference evaluator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.dynamic import DynamicAttribute
from repro.errors import QueryError
from repro.geometry import Point
from repro.motion.moving import MovingPoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.database import MostDatabase, Region


class DatabaseState:
    """One state of a history: attribute values at a fixed time stamp."""

    def __init__(self, history: "History", time: float) -> None:
        self._history = history
        self.time = time

    def value(self, object_id: object, attr: str) -> object:
        """Attribute value in this state."""
        return self._history.value(object_id, attr, self.time)

    def position(self, object_id: object) -> Point:
        """Spatial position in this state."""
        return self._history.position(object_id, self.time)

    def __repr__(self) -> str:
        return f"DatabaseState(time={self.time})"


class History:
    """Common behaviour of future and recorded histories."""

    def __init__(self, db: "MostDatabase", start: float) -> None:
        self.db = db
        self.start = start

    # -- population ----------------------------------------------------
    def object_ids(self, class_name: str) -> list[object]:
        """Ids of the class's objects (population frozen at ``start``)."""
        raise NotImplementedError

    def value(self, object_id: object, attr: str, t: float) -> object:
        """Attribute value at time ``t`` of this history."""
        raise NotImplementedError

    def position(self, object_id: object, t: float) -> Point:
        """Spatial position at time ``t``."""
        obj = self.db.get(object_id)
        return Point(
            *(
                self.value(object_id, name, t)
                for name in obj.object_class.position_attributes
            )
        )

    def state(self, t: float) -> DatabaseState:
        """The state with time stamp ``t`` (must not precede ``start``)."""
        if t < self.start:
            raise QueryError(
                f"state {t} precedes the history start {self.start}"
            )
        return DatabaseState(self, t)

    def region(self, name: str) -> "Region":
        """Named region lookup (regions are static database objects)."""
        return self.db.region(name)


class FutureHistory(History):
    """The infinite history implied by the database contents at ``start``.

    By default dynamic-attribute triples and static values are snapshotted
    at construction, so later explicit updates do not leak in — exactly
    the "tentative answer" semantics of section 1.  With
    ``snapshot=False`` the history reads through to the live database
    state instead: construction is O(1) regardless of population, which is
    what incremental continuous-query refreshes need (they evaluate
    synchronously, so no update can interleave with the read-through).
    """

    def __init__(
        self,
        db: "MostDatabase",
        start: float | None = None,
        snapshot: bool = True,
    ) -> None:
        super().__init__(db, db.clock.now if start is None else start)
        self._snapshot = snapshot
        #: Update-log length at construction — the content version of a
        #: snapshotting history.  Sharded evaluation keys its shipped
        #: motion snapshots on this (a snapshot history's contents are
        #: frozen here, no matter how the database moves on).
        self.build_log_len = len(db._log)
        self._population: dict[str, list[object]] = {}
        self._dynamic: dict[tuple[object, str], DynamicAttribute] = {}
        self._static: dict[tuple[object, str], object] = {}
        if not snapshot:
            return
        self._population = {
            cls: [o.object_id for o in db.objects_of(cls)]
            for cls in db.class_names()
        }
        for obj in db.all_objects():
            for attr in obj.object_class.all_dynamic:
                self._dynamic[(obj.object_id, attr)] = obj.dynamic_attribute(attr)
            for attr in obj.object_class.static_attributes:
                self._static[(obj.object_id, attr)] = obj.static_value(attr)

    def object_ids(self, class_name: str) -> list[object]:
        self.db.object_class(class_name)
        if not self._snapshot:
            return [o.object_id for o in self.db.objects_of(class_name)]
        return list(self._population.get(class_name, ()))

    def value(self, object_id: object, attr: str, t: float) -> object:
        if not self._snapshot:
            obj = self.db.get(object_id)
            if obj.object_class.is_dynamic(attr):
                return obj.dynamic_attribute(attr).value_at(t)
            if obj.object_class.has_attribute(attr):
                return obj.static_value(attr)
            raise QueryError(
                f"object {object_id!r} has no attribute {attr!r} in this "
                "history"
            )
        key = (object_id, attr)
        if key in self._dynamic:
            return self._dynamic[key].value_at(t)
        if key in self._static:
            return self._static[key]
        raise QueryError(
            f"object {object_id!r} has no attribute {attr!r} in this history"
        )

    def moving_point(self, object_id: object) -> MovingPoint:
        """The object's motion as frozen at ``start`` — the input to the
        kinetic solvers of the FTL interval algorithm."""
        from repro.core.objects import MostObject  # local to avoid cycle

        obj = self.db.get(object_id)
        if not self._snapshot:
            return obj.moving_point()
        snapshot = MostObject(
            object_id,
            obj.object_class,
            static={
                a: self._static[(object_id, a)]
                for a in obj.object_class.static_attributes
            },
            dynamic={
                a: self._dynamic[(object_id, a)]
                for a in obj.object_class.all_dynamic
            },
        )
        return snapshot.moving_point()

    def dynamic_triple(self, object_id: object, attr: str) -> DynamicAttribute:
        """The frozen (value, updatetime, function) of one attribute."""
        if not self._snapshot:
            obj = self.db.get(object_id)
            if not obj.object_class.is_dynamic(attr):
                raise QueryError(
                    f"object {object_id!r} has no dynamic attribute {attr!r}"
                )
            return obj.dynamic_attribute(attr)
        try:
            return self._dynamic[(object_id, attr)]
        except KeyError:
            raise QueryError(
                f"object {object_id!r} has no dynamic attribute {attr!r}"
            ) from None


class RecordedHistory(History):
    """The history anchored at ``start``, replaying recorded updates.

    For ``t`` between ``start`` and the current clock time, attribute
    values come from the update-log timeline (which version of the triple
    was in force at ``t``); beyond the current time they follow the
    current triples — the shape persistent queries need (the speed-
    doubling query ``R`` of section 2.3).
    """

    def object_ids(self, class_name: str) -> list[object]:
        return [o.object_id for o in self.db.objects_of(class_name)]

    def value(self, object_id: object, attr: str, t: float) -> object:
        obj = self.db.get(object_id)
        if not obj.object_class.is_dynamic(attr):
            return self._static_value_at(object_id, attr, t)
        timeline = self.db.attribute_timeline(object_id, attr, since=self.start)
        triple = timeline[0][1]
        for from_time, version in timeline:
            if from_time <= t:
                triple = version
            else:
                break
        return triple.value_at(t)

    def _static_value_at(self, object_id: object, attr: str, t: float) -> object:
        obj = self.db.get(object_id)
        value = obj.static_value(attr)
        # Roll back updates committed after t.
        for update in reversed(self.db.log):
            if (
                update.object_id == object_id
                and update.attribute == attr
                and update.time > t
            ):
                value = update.old
        return value

    def moving_point(self, object_id: object) -> MovingPoint:
        """The object's full recorded-plus-implied trajectory as a single
        piecewise-linear moving point.

        This is what lets *persistent* queries run through the appendix
        interval algorithm (processing the paper defers to future work):
        each axis timeline of linear versions becomes one
        :class:`~repro.motion.PiecewiseLinearFunction` anchored at the
        history start, with the current version extending into the implied
        future.

        Raises:
            QueryError: when a version is nonlinear, or an update snapped
                the position discontinuously (a jump cannot be expressed
                as a continuous piecewise function — callers fall back to
                the per-state evaluator).
        """
        from repro.motion.functions import PiecewiseLinearFunction

        obj = self.db.get(object_id)
        names = obj.object_class.position_attributes
        if not names:
            raise QueryError(
                f"class {obj.object_class.name} is not spatial"
            )
        anchor_coords: list[float] = []
        functions = []
        for attr in names:
            timeline = self.db.attribute_timeline(
                object_id, attr, since=self.start
            )
            anchor_value: float | None = None
            pieces: list[tuple[float, float]] = []
            for i, (from_time, triple) in enumerate(timeline):
                if not triple.function.is_linear:
                    raise QueryError(
                        "recorded trajectory is not piecewise linear"
                    )
                effective_from = max(from_time, self.start)
                value_at_from = triple.value_at(effective_from)
                if anchor_value is None:
                    anchor_value = value_at_from
                elif i > 0:
                    previous = timeline[i - 1][1]
                    if abs(previous.value_at(effective_from) - value_at_from) > 1e-9:
                        raise QueryError(
                            f"attribute {attr!r} of {object_id!r} jumps at "
                            f"t={effective_from}; interval evaluation needs "
                            "a continuous trajectory"
                        )
                rel = effective_from - self.start
                if pieces and pieces[-1][0] == rel:
                    pieces[-1] = (rel, triple.speed)  # same-tick re-update
                else:
                    pieces.append((rel, triple.speed))
            anchor_coords.append(anchor_value)
            functions.append(PiecewiseLinearFunction(pieces))
        return MovingPoint(
            Point(*anchor_coords), functions, anchor_time=self.start
        )
