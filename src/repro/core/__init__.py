"""The MOST data model — the paper's primary contribution.

* :mod:`repro.core.dynamic` — dynamic attributes: the
  ``(value, updatetime, function)`` triple of section 2.1.
* :mod:`repro.core.objects` — object classes (spatial and plain) and
  objects whose attributes may be static or dynamic.
* :mod:`repro.core.database` — the MOST database: the global clock, the
  object store, explicit updates, and the update log that drives
  continuous-query revalidation and persistent-query replay.
* :mod:`repro.core.history` — database histories (section 2.2): the
  implied future history at a time point, and the recorded history that
  persistent queries replay.
* :mod:`repro.core.queries` — the three query types of section 2.3:
  instantaneous, continuous (with the materialised ``Answer(CQ)``), and
  persistent.
* :mod:`repro.core.triggers` — temporal triggers: a continuous or
  persistent query "coupled with an action" (section 2.3).
"""

from repro.core.dynamic import DynamicAttribute
from repro.core.objects import (
    X_POSITION,
    Y_POSITION,
    Z_POSITION,
    MostObject,
    ObjectClass,
)
from repro.core.database import MostDatabase, MostUpdate
from repro.core.history import DatabaseState, FutureHistory, RecordedHistory
from repro.core.queries import (
    Answer,
    AnswerTuple,
    ContinuousQuery,
    InstantaneousQuery,
    PersistentQuery,
    StampedTuple,
)
from repro.core.triggers import TemporalTrigger

__all__ = [
    "DynamicAttribute",
    "ObjectClass",
    "MostObject",
    "X_POSITION",
    "Y_POSITION",
    "Z_POSITION",
    "MostDatabase",
    "MostUpdate",
    "DatabaseState",
    "FutureHistory",
    "RecordedHistory",
    "InstantaneousQuery",
    "ContinuousQuery",
    "PersistentQuery",
    "Answer",
    "AnswerTuple",
    "StampedTuple",
    "TemporalTrigger",
]
