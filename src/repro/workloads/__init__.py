"""Synthetic workloads: fleets, update processes, and named scenarios.

The paper's evaluation substrate is real vehicles and aircraft with GPS
feeds; the generators here are the synthetic equivalent (seeded and fully
deterministic), exercising the identical code paths: objects enter the
database as (position, motion-vector, update-time) triples and change
their vectors over time.
"""

from repro.workloads.chaos import (
    ChaosConfig,
    ChaosResult,
    RunResult,
    chaos_sweep,
    run_chaos,
)
from repro.workloads.generators import (
    motion_update_process,
    random_attributes,
    random_fleet,
    random_movers,
)
from repro.workloads.scenarios import (
    air_traffic_scenario,
    convoy_scenario,
    motel_scenario,
)

__all__ = [
    "ChaosConfig",
    "ChaosResult",
    "RunResult",
    "chaos_sweep",
    "run_chaos",
    "random_fleet",
    "random_movers",
    "random_attributes",
    "motion_update_process",
    "motel_scenario",
    "air_traffic_scenario",
    "convoy_scenario",
]
