"""Seeded generators for fleets of moving objects and update streams."""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.database import MostDatabase
from repro.core.dynamic import DynamicAttribute
from repro.core.objects import ObjectClass
from repro.errors import QueryError, SchemaError
from repro.geometry import Point
from repro.motion.moving import MovingPoint, linear_moving_point


def random_fleet(
    db: MostDatabase,
    n: int,
    class_name: str = "objects",
    area: tuple[float, float] = (0.0, 1000.0),
    speed_range: tuple[float, float] = (-5.0, 5.0),
    seed: int = 0,
    static_attributes: dict[str, tuple[float, float]] | None = None,
) -> list[object]:
    """Populate ``db`` with ``n`` 2-D moving objects.

    Creates the object class if absent (with the given static attribute
    names, drawn uniformly from their ranges).  Returns the object ids.
    """
    rng = random.Random(seed)
    static_attributes = static_attributes or {}
    try:
        cls = db.object_class(class_name)
    except SchemaError:
        cls = db.create_class(
            ObjectClass(
                class_name,
                static_attributes=tuple(static_attributes),
                spatial_dimensions=2,
            )
        )
    if not cls.is_spatial:
        raise QueryError(f"class {class_name!r} is not spatial")
    ids = []
    for i in range(n):
        object_id = f"{class_name}-{i}"
        position = Point(
            rng.uniform(*area), rng.uniform(*area)
        )
        velocity = Point(
            rng.uniform(*speed_range), rng.uniform(*speed_range)
        )
        statics = {
            name: rng.uniform(*bounds)
            for name, bounds in static_attributes.items()
        }
        db.add_moving_object(
            class_name, object_id, position, velocity, static=statics
        )
        ids.append(object_id)
    return ids


def random_movers(
    n: int,
    area: tuple[float, float] = (0.0, 1000.0),
    speed_range: tuple[float, float] = (-5.0, 5.0),
    seed: int = 0,
) -> list[tuple[str, MovingPoint]]:
    """Bare ``(id, MovingPoint)`` pairs — the spatial-index workload."""
    rng = random.Random(seed)
    out = []
    for i in range(n):
        mover = linear_moving_point(
            Point(rng.uniform(*area), rng.uniform(*area)),
            Point(rng.uniform(*speed_range), rng.uniform(*speed_range)),
        )
        out.append((f"m{i}", mover))
    return out


def random_attributes(
    n: int,
    value_range: tuple[float, float] = (-100.0, 100.0),
    speed_range: tuple[float, float] = (-2.0, 2.0),
    seed: int = 0,
) -> list[tuple[str, DynamicAttribute]]:
    """Bare ``(id, DynamicAttribute)`` pairs — the 1-D index workload."""
    rng = random.Random(seed)
    return [
        (
            f"a{i}",
            DynamicAttribute.linear(
                rng.uniform(*value_range), rng.uniform(*speed_range)
            ),
        )
        for i in range(n)
    ]


def motion_update_process(
    db: MostDatabase,
    object_ids: list[object],
    ticks: int,
    change_probability: float,
    speed_range: tuple[float, float] = (-5.0, 5.0),
    seed: int = 0,
) -> Iterator[tuple[int, object]]:
    """Advance the clock ``ticks`` times; each tick each object changes
    its motion vector with probability ``change_probability``.

    Yields ``(time, object_id)`` per update, matching the paper's premise
    that the motion vector changes "less frequently than the position of
    the object".
    """
    if not 0.0 <= change_probability <= 1.0:
        raise QueryError("change probability must be in [0, 1]")
    rng = random.Random(seed)
    for _ in range(ticks):
        now = db.clock.tick()
        for object_id in object_ids:
            if rng.random() < change_probability:
                velocity = Point(
                    rng.uniform(*speed_range), rng.uniform(*speed_range)
                )
                db.update_motion(object_id, velocity)
                yield now, object_id
