"""Named scenarios from the paper's introduction.

* :func:`motel_scenario` — the travelling car and the MOTELS relation
  ("Display motels (with availability and cost) within a radius of 5
  miles", section 1).
* :func:`air_traffic_scenario` — the air-traffic-control query Q
  ("retrieve all the airplanes that will come within 30 miles of the
  airport in the next 10 minutes", section 1).
* :func:`convoy_scenario` — mobile computers hosting their own objects
  for the distributed relationship queries of section 5.3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.database import MostDatabase
from repro.core.objects import ObjectClass
from repro.distributed.network import SimNetwork
from repro.distributed.node import MobileNode
from repro.geometry import Point
from repro.motion.moving import linear_moving_point
from repro.spatial.regions import Ball


@dataclass
class MotelWorld:
    """The motel scenario: a car among stationary motels."""

    db: MostDatabase
    car_id: str
    motel_ids: list[str]

    #: The section 1 continuous query, as FTL text.
    QUERY = (
        "RETRIEVE m FROM motels m, cars c WHERE DIST(c, m) <= 5"
    )


def motel_scenario(
    n_motels: int = 20,
    road_length: float = 200.0,
    car_speed: float = 1.0,
    seed: int = 0,
) -> MotelWorld:
    """A car driving along a road lined with motels.

    Motels are spatial but stationary (their positions are degenerate
    dynamic attributes), each with a ``price`` and ``availability``.
    """
    rng = random.Random(seed)
    db = MostDatabase()
    db.create_class(
        ObjectClass(
            "motels",
            static_attributes=("price", "availability"),
            spatial_dimensions=2,
        )
    )
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    motel_ids = []
    for i in range(n_motels):
        object_id = f"motel-{i}"
        db.add_moving_object(
            "motels",
            object_id,
            Point(rng.uniform(0, road_length), rng.uniform(-3, 3)),
            static={
                "price": round(rng.uniform(40, 240), 2),
                "availability": float(rng.randint(0, 30)),
            },
        )
        motel_ids.append(object_id)
    db.add_moving_object(
        "cars", "car", Point(0.0, 0.0), Point(car_speed, 0.0)
    )
    return MotelWorld(db=db, car_id="car", motel_ids=motel_ids)


@dataclass
class AirTrafficWorld:
    """The air-traffic scenario: aircraft around an airport."""

    db: MostDatabase
    aircraft_ids: list[str]
    airport: Point

    #: The paper's query Q (30 miles, next 10 minutes).
    QUERY = (
        "RETRIEVE a FROM aircraft a, airports ap "
        "WHERE EVENTUALLY WITHIN 10 DIST(a, ap) <= 30"
    )


def air_traffic_scenario(
    n_aircraft: int = 30,
    region: float = 500.0,
    speed: float = 8.0,
    seed: int = 0,
) -> AirTrafficWorld:
    """Aircraft with random positions and headings; one airport at the
    origin (a stationary spatial object)."""
    rng = random.Random(seed)
    db = MostDatabase()
    db.create_class(
        ObjectClass("aircraft", static_attributes=("callsign",), spatial_dimensions=2)
    )
    db.create_class(ObjectClass("airports", spatial_dimensions=2))
    db.add_moving_object("airports", "airport", Point(0.0, 0.0))
    db.define_region("NEAR_AIRPORT", Ball(Point(0.0, 0.0), 30.0))
    ids = []
    for i in range(n_aircraft):
        object_id = f"plane-{i}"
        angle = rng.uniform(0, 6.283185307)
        import math

        db.add_moving_object(
            "aircraft",
            object_id,
            Point(rng.uniform(-region, region), rng.uniform(-region, region)),
            Point(speed * math.cos(angle), speed * math.sin(angle)),
            static={"callsign": f"FL{i:03d}"},
        )
        ids.append(object_id)
    return AirTrafficWorld(db=db, aircraft_ids=ids, airport=Point(0.0, 0.0))


@dataclass
class ConvoyWorld:
    """The distributed convoy: one mobile computer per vehicle."""

    network: SimNetwork
    leader: MobileNode
    vehicles: list[MobileNode]


def convoy_scenario(
    n_vehicles: int = 8,
    spacing: float = 5.0,
    speed: float = 2.0,
    straggler_every: int = 4,
    seed: int = 0,
) -> ConvoyWorld:
    """A convoy heading east; every ``straggler_every``-th vehicle drifts
    off course (so relationship queries have something to find)."""
    network = SimNetwork()
    leader = MobileNode(
        "leader", network, linear_moving_point(Point(0.0, 0.0), Point(speed, 0.0))
    )
    vehicles = []
    for i in range(n_vehicles):
        drifts = straggler_every > 0 and (i + 1) % straggler_every == 0
        velocity = (
            Point(speed * 0.6, 0.8) if drifts else Point(speed, 0.0)
        )
        vehicles.append(
            MobileNode(
                f"v{i}",
                network,
                linear_moving_point(
                    Point(-spacing * (i + 1), 0.0), velocity
                ),
            )
        )
    return ConvoyWorld(network=network, leader=leader, vehicles=vehicles)
