"""Chaos harness: differential testing of the fault-tolerant pipeline.

One seeded world is driven twice through *identical* motion-update
schedules:

* the **faulty** run injects a :class:`~repro.distributed.FaultPlan`
  (drop / delay / reorder / duplicate / node crash) that heals at
  ``run_ticks``, then drains until every reporter's retry queue and the
  network's in-flight queue are empty;
* the **clean** twin uses a zero-fault plan (same asynchronous delivery
  semantics, no injected faults) and runs to the same final tick.

Two properties are checked (the PR's acceptance criteria):

1. **Convergence** — once faults heal and retries drain, the continuous
   query's answer, clipped to the still-displayable window, is
   tuple-for-tuple identical to the fault-free run's.
2. **Bounded staleness while degraded** — at every tick, no tuple the
   degraded answer emits depends on a dynamic attribute older than the
   query's ``staleness_bound``.

Positions and velocities are drawn on an integer grid so that a late
update extrapolated to its apply tick reconstructs the sender's
trajectory *exactly* (float products of small integers are exact), which
is what makes tuple-for-tuple convergence a fair assertion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.database import MostDatabase
from repro.core.objects import ObjectClass
from repro.core.queries import ContinuousQuery
from repro.distributed.network import FaultPlan, LinkFaults, SimNetwork
from repro.distributed.node import MobileNode
from repro.distributed.updates import MotionReporter, UpdateServer
from repro.ftl import parse_query
from repro.geometry import Point
from repro.motion import linear_moving_point
from repro.temporal import SimulationClock


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos experiment: world size, fault rates, and timing."""

    seed: int = 0
    n_trackers: int = 3
    radius: float = 60.0
    horizon: int = 120
    run_ticks: int = 16
    max_drain: int = 60
    drop: float = 0.3
    delay: tuple[int, int] = (0, 3)
    duplicate: float = 0.15
    reorder: float = 0.2
    crash: bool = True
    staleness_bound: int = 6
    method: str = "incremental"

    QUERY = "RETRIEVE v FROM trackers v, beacons b WHERE DIST(v, b) <= {r}"


@dataclass
class RunResult:
    """Outcome of one driven run (faulty or clean)."""

    answer: frozenset
    ticks: int
    violations: int
    drained: bool
    messages: int
    retransmissions: int
    ingest_rejected: int
    suppressed_ticks: int


@dataclass
class ChaosResult:
    """Outcome of one differential chaos experiment."""

    config: ChaosConfig
    converged: bool
    faulty: RunResult
    clean: RunResult

    @property
    def ok(self) -> bool:
        """Converged, drained, and never emitted an over-age tuple."""
        return (
            self.converged
            and self.faulty.drained
            and self.faulty.violations == 0
            and self.clean.violations == 0
        )


def fault_plan(config: ChaosConfig) -> FaultPlan:
    """The seeded fault plan for the faulty run (heals at ``run_ticks``)."""
    rng = random.Random(config.seed * 7919 + 1)
    crashes: dict[str, list[tuple[float, float]]] = {}
    if config.crash and config.n_trackers > 0:
        victim = rng.randrange(config.n_trackers)
        start = rng.randint(1, max(1, config.run_ticks // 2))
        end = min(
            config.run_ticks - 1,
            start + rng.randint(2, max(2, config.run_ticks // 2)),
        )
        if end >= start:
            crashes[f"tracker-{victim}"] = [(start, end)]
    return FaultPlan(
        seed=config.seed,
        default=LinkFaults(
            drop=config.drop,
            duplicate=config.duplicate,
            delay=config.delay,
            reorder=config.reorder,
        ),
        crashes=crashes,
        heal_at=config.run_ticks,
    )


def clean_plan(config: ChaosConfig) -> FaultPlan:
    """The zero-fault twin: same asynchronous delivery, no faults."""
    return FaultPlan(seed=config.seed)


def update_schedule(
    config: ChaosConfig,
) -> list[tuple[int, int, Point]]:
    """Seeded ``(tick, tracker index, new velocity)`` motion changes.

    Velocities come from a small integer grid (see the module docstring)
    and every tracker changes course roughly every 4 ticks.
    """
    rng = random.Random(config.seed * 104729 + 2)
    out: list[tuple[int, int, Point]] = []
    for tick in range(1, config.run_ticks):
        for idx in range(config.n_trackers):
            if rng.random() < 0.25:
                out.append(
                    (
                        tick,
                        idx,
                        Point(
                            float(rng.randint(-3, 3)),
                            float(rng.randint(-3, 3)),
                        ),
                    )
                )
    return out


@dataclass
class _World:
    clock: SimulationClock
    db: MostDatabase
    network: SimNetwork
    server: UpdateServer
    nodes: list[MobileNode]
    reporters: list[MotionReporter]
    cq: ContinuousQuery
    violations: int = 0
    suppressed_ticks: int = 0
    trace: dict[int, set] = field(default_factory=dict)


def _build(config: ChaosConfig, plan: FaultPlan) -> _World:
    rng = random.Random(config.seed * 15485863 + 3)
    clock = SimulationClock()
    db = MostDatabase(clock)
    network = SimNetwork(clock, faults=plan)
    db.create_class(ObjectClass("trackers", spatial_dimensions=2))
    db.create_class(ObjectClass("beacons", spatial_dimensions=2))
    # The beacon is server-local (untracked): it never goes stale.
    db.add_moving_object("beacons", "beacon", Point(0.0, 0.0))
    server = UpdateServer(db, network)
    nodes: list[MobileNode] = []
    reporters: list[MotionReporter] = []
    for i in range(config.n_trackers):
        object_id = f"tracker-{i}"
        position = Point(
            float(rng.randint(-50, 50)), float(rng.randint(-50, 50))
        )
        velocity = Point(
            float(rng.randint(-3, 3)), float(rng.randint(-3, 3))
        )
        db.add_moving_object("trackers", object_id, position, velocity)
        db.track(object_id)
        node = MobileNode(
            object_id,
            network,
            linear_moving_point(position, velocity),
        )
        nodes.append(node)
        reporters.append(MotionReporter(node, object_id=object_id))
    cq = ContinuousQuery(
        db,
        parse_query(config.QUERY.format(r=config.radius)),
        horizon=config.horizon,
        method=config.method,
        staleness_bound=config.staleness_bound,
    )
    return _World(clock, db, network, server, nodes, reporters, cq)


def _check_tick(world: _World, config: ChaosConfig) -> None:
    """The bounded-staleness invariant at the current tick."""
    now = world.clock.now
    bound = config.staleness_bound
    shown = world.cq.current()
    world.trace[now] = shown
    if world.cq.suppressed:
        world.suppressed_ticks += 1
    fresh_values = set()
    for stamped in world.cq.stamped_tuples():
        if not stamped.active_at(now):
            continue
        if stamped.degraded:
            continue
        fresh_values.add(stamped.values)
        if any(world.db.staleness(v) > bound for v in stamped.support):
            world.violations += 1
    # The degraded display must be exactly the fresh instantiations —
    # nothing suppressed that is fresh, nothing emitted that is stale.
    if shown != fresh_values:
        world.violations += 1


def _quiescent(world: _World) -> bool:
    return world.network.in_flight == 0 and all(
        r.in_flight == 0 for r in world.reporters
    )


def _drive(
    world: _World,
    config: ChaosConfig,
    schedule: list[tuple[int, int, Point]],
    until: int | None,
) -> tuple[int, bool]:
    """Run the simulation; returns ``(final tick, drained)``.

    With ``until=None`` the run lasts ``run_ticks`` plus however much
    drain it needs (capped at ``max_drain``); with a tick given, the run
    lasts exactly that long (the clean twin mirrors the faulty run's
    length so both answers are clipped at the same instant).
    """
    by_tick: dict[int, list[tuple[int, Point]]] = {}
    for tick, idx, velocity in schedule:
        by_tick.setdefault(tick, []).append((idx, velocity))
    _check_tick(world, config)
    end = until if until is not None else config.run_ticks + config.max_drain
    drained = False
    while world.clock.now < end:
        for idx, velocity in by_tick.get(world.clock.now, ()):
            world.reporters[idx].report(velocity)
        world.clock.tick()
        _check_tick(world, config)
        if (
            until is None
            and world.clock.now >= config.run_ticks
            and _quiescent(world)
        ):
            drained = True
            break
    if until is not None:
        drained = _quiescent(world)
    return world.clock.now, drained


def _final_answer(world: _World) -> frozenset:
    """The converged answer, clipped to the still-displayable window."""
    world.cq.refresh()
    relation = world.cq.answer.relation.clipped(
        world.clock.now, world.cq.expires_at
    )
    return frozenset(relation.answer_tuples())


def run_chaos(config: ChaosConfig) -> ChaosResult:
    """One differential experiment: faulty run vs clean twin."""
    schedule = update_schedule(config)

    faulty_world = _build(config, fault_plan(config))
    final_tick, drained = _drive(faulty_world, config, schedule, until=None)
    faulty = RunResult(
        answer=_final_answer(faulty_world),
        ticks=final_tick,
        violations=faulty_world.violations,
        drained=drained,
        messages=faulty_world.network.stats.attempted,
        retransmissions=sum(
            r.retransmissions for r in faulty_world.reporters
        ),
        ingest_rejected=faulty_world.db.ingest_rejected,
        suppressed_ticks=faulty_world.suppressed_ticks,
    )

    clean_world = _build(config, clean_plan(config))
    _, clean_drained = _drive(clean_world, config, schedule, until=final_tick)
    clean = RunResult(
        answer=_final_answer(clean_world),
        ticks=final_tick,
        violations=clean_world.violations,
        drained=clean_drained,
        messages=clean_world.network.stats.attempted,
        retransmissions=sum(
            r.retransmissions for r in clean_world.reporters
        ),
        ingest_rejected=clean_world.db.ingest_rejected,
        suppressed_ticks=clean_world.suppressed_ticks,
    )

    return ChaosResult(
        config=config,
        converged=faulty.answer == clean.answer,
        faulty=faulty,
        clean=clean,
    )


def chaos_sweep(
    seeds: range | list[int], **overrides: object
) -> list[ChaosResult]:
    """Run one experiment per seed, varying the fault mix with the seed."""
    results = []
    for seed in seeds:
        rng = random.Random(seed * 31337 + 4)
        config = ChaosConfig(
            seed=seed,
            drop=rng.choice([0.1, 0.2, 0.3, 0.5]),
            delay=(0, rng.randint(0, 4)),
            duplicate=rng.choice([0.0, 0.1, 0.3]),
            reorder=rng.choice([0.0, 0.2, 0.5]),
            crash=rng.random() < 0.6,
            **overrides,  # type: ignore[arg-type]
        )
        results.append(run_chaos(config))
    return results
