"""repro — a reproduction of *Modeling and Querying Moving Objects*
(Sistla, Wolfson, Chamberlain, Dao; ICDE 1997).

The package implements the paper end to end:

* the **MOST data model** (:mod:`repro.core`): dynamic attributes,
  database histories, and the three query types (instantaneous,
  continuous, persistent);
* **FTL**, the Future Temporal Logic query language (:mod:`repro.ftl`):
  parser, the naive per-state reference semantics, and the appendix
  interval-relation algorithm;
* **dynamic-attribute indexing** (:mod:`repro.index`): function-line
  plots in (time, value) space under a region tree or R-tree, plus the
  3-D (x, y, t) variant for 2-D movement;
* **MOST on top of a DBMS** (:mod:`repro.bridge` over :mod:`repro.dbms`,
  a from-scratch relational engine with a mini-SQL dialect): the 2^k
  query decomposition of section 5.1;
* **mobile/distributed processing** (:mod:`repro.distributed`):
  transmission policies for ``Answer(CQ)`` and the three distributed
  query classes with their competing strategies.

Quickstart::

    from repro import MostDatabase, ObjectClass, InstantaneousQuery, parse_query
    from repro.geometry import Point
    from repro.spatial import Polygon

    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(0, 0, 10, 10))
    db.add_moving_object("cars", "rww860", Point(-5, 5), Point(1, 0))

    q = parse_query("RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 8 INSIDE(o, P)")
    print(InstantaneousQuery(q, horizon=60).evaluate(db))
"""

from repro.core import (
    Answer,
    AnswerTuple,
    ContinuousQuery,
    DynamicAttribute,
    InstantaneousQuery,
    MostDatabase,
    MostObject,
    ObjectClass,
    PersistentQuery,
    TemporalTrigger,
)
from repro.errors import FtlAnalysisError, ReproError
from repro.ftl import (
    AnalysisResult,
    Diagnostic,
    FtlQuery,
    QueryCompiler,
    analyze_query,
    compile_query,
    parse_formula,
    parse_query,
)

__version__ = "0.1.0"

__all__ = [
    "MostDatabase",
    "ObjectClass",
    "MostObject",
    "DynamicAttribute",
    "InstantaneousQuery",
    "ContinuousQuery",
    "PersistentQuery",
    "TemporalTrigger",
    "Answer",
    "AnswerTuple",
    "FtlQuery",
    "parse_query",
    "parse_formula",
    "QueryCompiler",
    "compile_query",
    "analyze_query",
    "AnalysisResult",
    "Diagnostic",
    "ReproError",
    "FtlAnalysisError",
    "__version__",
]
