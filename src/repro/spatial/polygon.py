"""Simple polygons: containment, convexity, and edge geometry.

The paper's queries are dominated by ``INSIDE(o, P)`` where ``P`` is a
polygon object ("Retrieve the objects that will intersect the polygon P
within 3 minutes").  This module gives the static geometry; the kinetic
layer turns it into satisfaction *intervals* for moving points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SpatialError
from repro.spatial.geometry import Point


@dataclass(frozen=True)
class Edge:
    """A directed polygon edge from ``a`` to ``b``."""

    a: Point
    b: Point

    @property
    def vector(self) -> Point:
        """Displacement from ``a`` to ``b``."""
        return self.b - self.a

    def side_of(self, p: Point) -> float:
        """Signed area test: > 0 when ``p`` is left of the directed edge."""
        return (self.b - self.a).cross2d(p - self.a)


class Polygon:
    """A simple (non-self-intersecting) polygon in the plane.

    Vertices are stored counter-clockwise regardless of input orientation.
    Boundary points count as *inside* — consistent with the paper's
    INSIDE/OUTSIDE dichotomy where the two predicates partition the plane
    up to the boundary.
    """

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Sequence[Point]) -> None:
        pts = list(vertices)
        if len(pts) < 3:
            raise SpatialError("a polygon needs at least 3 vertices")
        if any(p.dim != 2 for p in pts):
            raise SpatialError("polygon vertices must be 2-D points")
        if len(set(pts)) != len(pts):
            raise SpatialError("polygon vertices must be distinct")
        if _signed_area(pts) < 0:
            pts.reverse()
        if _signed_area(pts) == 0:
            raise SpatialError("degenerate polygon with zero area")
        self._vertices = tuple(pts)

    @classmethod
    def rectangle(cls, x0: float, y0: float, x1: float, y1: float) -> "Polygon":
        """Axis-aligned rectangle from corner ``(x0, y0)`` to ``(x1, y1)``."""
        if x1 <= x0 or y1 <= y0:
            raise SpatialError("rectangle corners must be strictly ordered")
        return cls(
            [Point(x0, y0), Point(x1, y0), Point(x1, y1), Point(x0, y1)]
        )

    @classmethod
    def regular(cls, center: Point, radius: float, sides: int) -> "Polygon":
        """Regular ``sides``-gon inscribed in a circle."""
        import math

        if sides < 3:
            raise SpatialError("a regular polygon needs at least 3 sides")
        if radius <= 0:
            raise SpatialError("radius must be positive")
        return cls(
            [
                Point(
                    center.x + radius * math.cos(2 * math.pi * k / sides),
                    center.y + radius * math.sin(2 * math.pi * k / sides),
                )
                for k in range(sides)
            ]
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> tuple[Point, ...]:
        """Counter-clockwise vertex ring."""
        return self._vertices

    @property
    def edges(self) -> list[Edge]:
        """Directed edges in ring order."""
        verts = self._vertices
        return [
            Edge(verts[i], verts[(i + 1) % len(verts)])
            for i in range(len(verts))
        ]

    @property
    def area(self) -> float:
        """Enclosed area (always positive)."""
        return _signed_area(list(self._vertices))

    @property
    def centroid(self) -> Point:
        """Area centroid of the polygon."""
        acc_x = acc_y = 0.0
        area2 = 0.0
        verts = self._vertices
        for i in range(len(verts)):
            a, b = verts[i], verts[(i + 1) % len(verts)]
            cross = a.cross2d(b)
            area2 += cross
            acc_x += (a.x + b.x) * cross
            acc_y += (a.y + b.y) * cross
        return Point(acc_x / (3 * area2), acc_y / (3 * area2))

    @property
    def is_convex(self) -> bool:
        """Whether every interior angle is at most 180 degrees."""
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            a, b, c = verts[i], verts[(i + 1) % n], verts[(i + 2) % n]
            if (b - a).cross2d(c - b) < 0:
                return False
        return True

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` of the vertex ring."""
        xs = [p.x for p in self._vertices]
        ys = [p.y for p in self._vertices]
        return min(xs), min(ys), max(xs), max(ys)

    # ------------------------------------------------------------------
    # Containment
    # ------------------------------------------------------------------
    def contains(self, p: Point) -> bool:
        """Point-in-polygon test (boundary inclusive), ray casting with an
        exact boundary pre-check."""
        if p.dim != 2:
            raise SpatialError("containment test requires a 2-D point")
        if self.on_boundary(p):
            return True
        inside = False
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            a, b = verts[i], verts[(i + 1) % n]
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def on_boundary(self, p: Point, tol: float = 1e-12) -> bool:
        """Whether ``p`` lies on an edge of the polygon."""
        for edge in self.edges:
            ab = edge.vector
            ap = p - edge.a
            if abs(ab.cross2d(ap)) > tol * max(1.0, ab.norm_squared):
                continue
            dot = ab.dot(ap)
            if -tol <= dot <= ab.norm_squared + tol:
                return True
        return False

    def translated(self, delta: Point) -> "Polygon":
        """The polygon moved rigidly by ``delta`` — used for moving regions
        such as the driver's circle that "moves as a rigid body having the
        motion vector of the car" (section 1)."""
        return Polygon([v + delta for v in self._vertices])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:
        return f"Polygon({list(self._vertices)!r})"


def _signed_area(vertices: Iterable[Point]) -> float:
    pts = list(vertices)
    acc = 0.0
    for i in range(len(pts)):
        acc += pts[i].cross2d(pts[(i + 1) % len(pts)])
    return acc / 2.0
