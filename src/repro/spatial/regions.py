"""Non-polygonal regions: circles/spheres and axis-aligned boxes.

Circles back the paper's radius queries ("Display motels within a radius of
5 miles"); spheres back ``WITHIN-A-SPHERE``; boxes back the spatial-index
rectangles of section 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpatialError
from repro.spatial.geometry import Point


@dataclass(frozen=True)
class Ball:
    """A closed ball (circle in 2-D, sphere in 3-D) of radius ``radius``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise SpatialError("ball radius may not be negative")

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies in the closed ball (relative tolerance, so
        boundary points survive floating-point noise at any scale)."""
        r2 = self.radius * self.radius
        slack = 1e-9 * max(1.0, r2, p.norm_squared)
        return (p - self.center).norm_squared <= r2 + slack

    def translated(self, delta: Point) -> "Ball":
        """Rigidly moved ball (the moving query-circle of section 1)."""
        return Ball(self.center + delta, self.radius)

    @property
    def dim(self) -> int:
        """Spatial dimensionality."""
        return self.center.dim


#: A circle is just a 2-D ball; keep both names for readability at call sites.
Circle = Ball
Sphere = Ball


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned box ``[lo_i, hi_i]`` per axis.

    This is the "rectangle" vocabulary of the section 4 index: spatial
    indexes "use a hierarchical recursive decomposition of space, usually
    into rectangles".
    """

    lo: Point
    hi: Point

    def __post_init__(self) -> None:
        if self.lo.dim != self.hi.dim:
            raise SpatialError("box corners must share a dimension")
        if any(l > h for l, h in zip(self.lo, self.hi)):
            raise SpatialError("box lower corner exceeds upper corner")

    @classmethod
    def from_bounds(cls, *bounds: tuple[float, float]) -> "Box":
        """Build from per-axis ``(lo, hi)`` pairs."""
        return cls(
            Point(*(b[0] for b in bounds)), Point(*(b[1] for b in bounds))
        )

    @property
    def dim(self) -> int:
        """Spatial dimensionality."""
        return self.lo.dim

    @property
    def center(self) -> Point:
        """Geometric center."""
        return self.lo.midpoint(self.hi)

    @property
    def extents(self) -> tuple[float, ...]:
        """Per-axis side lengths."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> float:
        """Product of side lengths (area in 2-D)."""
        acc = 1.0
        for side in self.extents:
            acc *= side
        return acc

    def contains(self, p: Point) -> bool:
        """Closed containment of a point."""
        return all(
            l <= c <= h for l, c, h in zip(self.lo, p, self.hi)
        )

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` lies entirely within this box."""
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersects(self, other: "Box") -> bool:
        """Closed overlap test between two boxes."""
        return all(
            sl <= oh and ol <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def union(self, other: "Box") -> "Box":
        """Smallest box covering both inputs."""
        return Box(
            Point(*(min(a, b) for a, b in zip(self.lo, other.lo))),
            Point(*(max(a, b) for a, b in zip(self.hi, other.hi))),
        )

    def intersection(self, other: "Box") -> "Box | None":
        """Overlap box, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Box(
            Point(*(max(a, b) for a, b in zip(self.lo, other.lo))),
            Point(*(min(a, b) for a, b in zip(self.hi, other.hi))),
        )

    def split(self) -> list["Box"]:
        """The 2^dim equal children of a recursive decomposition —
        quadrants in 2-D, octants in 3-D (section 4's hierarchical
        decomposition step)."""
        mid = self.center
        children: list[Box] = []
        for mask in range(1 << self.dim):
            lo = []
            hi = []
            for axis in range(self.dim):
                if mask & (1 << axis):
                    lo.append(mid[axis])
                    hi.append(self.hi[axis])
                else:
                    lo.append(self.lo[axis])
                    hi.append(mid[axis])
            children.append(Box(Point(*lo), Point(*hi)))
        return children

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"[{l:g},{h:g}]" for l, h in zip(self.lo, self.hi)
        )
        return f"Box({pairs})"
