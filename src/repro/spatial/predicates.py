"""Instantaneous spatial methods of the MOST model.

Section 2 of the paper: spatial object classes carry methods representing
"spatial relationships among the objects at a certain point in time",
returning true or false — ``INSIDE(o, P)``, ``OUTSIDE(o, P)``,
``WITHIN-A-SPHERE(r, o1, ..., ok)`` — plus integer-valued methods such as
``DIST(o1, o2)``.  These are the *base case* relations the appendix
algorithm evaluates; the kinetic layer lifts them to satisfaction
intervals.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import SpatialError
from repro.spatial.geometry import Point
from repro.spatial.polygon import Polygon
from repro.spatial.regions import Ball


def inside(point: Point, region: Polygon | Ball) -> bool:
    """The paper's ``INSIDE(o, P)``: whether the point-object lies in the
    polygon (or ball) at the current state.  Boundary-inclusive."""
    return region.contains(point)


def outside(point: Point, region: Polygon | Ball) -> bool:
    """The paper's ``OUTSIDE(o, P)``."""
    return not region.contains(point)


def dist(a: Point, b: Point) -> float:
    """The paper's ``DIST(o1, o2)``: distance between two point-objects."""
    return a.distance_to(b)


def within_a_sphere(radius: float, points: Sequence[Point]) -> bool:
    """The paper's ``WITHIN-A-SPHERE(r, o1, ..., ok)``: whether the
    point-objects can be enclosed within a sphere of radius ``r``."""
    if radius < 0:
        raise SpatialError("sphere radius may not be negative")
    if not points:
        return True
    return enclosing_ball(points).radius <= radius + 1e-9


def enclosing_ball(points: Sequence[Point]) -> Ball:
    """Smallest ball enclosing the points (Welzl's algorithm).

    Supports 2-D and 3-D point sets; expected linear time under the random
    permutation.  Deterministic across runs (seeded shuffle) so query
    results are reproducible.
    """
    if not points:
        raise SpatialError("cannot enclose an empty point set")
    dim = points[0].dim
    if any(p.dim != dim for p in points):
        raise SpatialError("all points must share a dimension")
    if dim not in (2, 3):
        raise SpatialError("enclosing_ball supports 2-D and 3-D points")
    shuffled = list(points)
    random.Random(0x5EED).shuffle(shuffled)
    return _welzl(shuffled, [], dim)


def _welzl(points: list[Point], boundary: list[Point], dim: int) -> Ball:
    max_boundary = dim + 1
    if not points or len(boundary) == max_boundary:
        return _trivial_ball(boundary, dim)
    p = points[-1]
    ball = _welzl(points[:-1], boundary, dim)
    if ball.contains(p):
        return ball
    return _welzl(points[:-1], boundary + [p], dim)


def _trivial_ball(support: list[Point], dim: int) -> Ball:
    if not support:
        return Ball(Point.zero(dim), 0.0)
    if len(support) == 1:
        return Ball(support[0], 0.0)
    if len(support) == 2:
        center = support[0].midpoint(support[1])
        return Ball(center, center.distance_to(support[0]))
    if len(support) == 3:
        ball = _circumball_3(support[0], support[1], support[2], dim)
        if ball is not None:
            return ball
        return _fallback_pairwise(support)
    ball = _circumsphere_4(support[0], support[1], support[2], support[3])
    if ball is not None:
        return ball
    return _fallback_pairwise(support)


def _circumball_3(a: Point, b: Point, c: Point, dim: int) -> Ball | None:
    """Circumcircle of three points (in their plane, for 3-D inputs)."""
    ab = b - a
    ac = c - a
    if dim == 2:
        d = 2 * ab.cross2d(ac)
        if abs(d) < 1e-12:
            return None
        ab2 = ab.norm_squared
        ac2 = ac.norm_squared
        ux = (ac.y * ab2 - ab.y * ac2) / d
        uy = (ab.x * ac2 - ac.x * ab2) / d
        center = Point(a.x + ux, a.y + uy)
        return Ball(center, center.distance_to(a))
    # 3-D: solve in the plane spanned by ab, ac.
    ab2 = ab.norm_squared
    ac2 = ac.norm_squared
    ab_ac = ab.dot(ac)
    det = ab2 * ac2 - ab_ac * ab_ac
    if abs(det) < 1e-12:
        return None
    s = 0.5 * (ab2 * ac2 - ac2 * ab_ac) / det
    t = 0.5 * (ac2 * ab2 - ab2 * ab_ac) / det
    center = a + ab * s + ac * t
    return Ball(center, center.distance_to(a))


def _circumsphere_4(a: Point, b: Point, c: Point, d: Point) -> Ball | None:
    """Circumsphere of four 3-D points via the linear system."""
    import numpy as np

    rows = []
    rhs = []
    for p in (b, c, d):
        rows.append([2 * (p.x - a.x), 2 * (p.y - a.y), 2 * (p.z - a.z)])
        rhs.append(p.norm_squared - a.norm_squared)
    mat = np.array(rows)
    if abs(np.linalg.det(mat)) < 1e-12:
        return None
    sol = np.linalg.solve(mat, np.array(rhs))
    center = Point(*sol)
    return Ball(center, center.distance_to(a))


def _fallback_pairwise(support: list[Point]) -> Ball:
    """Degenerate support set: use the widest pair's diameter ball."""
    best = Ball(support[0], 0.0)
    for i in range(len(support)):
        for j in range(i + 1, len(support)):
            center = support[i].midpoint(support[j])
            r = center.distance_to(support[i])
            if r > best.radius:
                best = Ball(center, r)
    return best
