"""Spatial substrate: geometry, regions, and kinetic predicate solvers.

Static layer (sections 2 of the paper): points/vectors, polygons, balls,
boxes, and the instantaneous spatial methods ``INSIDE``, ``OUTSIDE``,
``DIST``, ``WITHIN-A-SPHERE``.

Kinetic layer (appendix base case): solvers that, given moving points,
return the :class:`~repro.temporal.IntervalSet` of times during which a
spatial relation holds — exact for piecewise-linear motion, numeric root
isolation otherwise.
"""

from repro.spatial.geometry import Point, Vector, dist
from repro.spatial.polygon import Edge, Polygon
from repro.spatial.regions import Ball, Box, Circle, Sphere
from repro.spatial.predicates import (
    enclosing_ball,
    inside,
    outside,
    within_a_sphere,
)
from repro.spatial.kinetic import (
    when_below,
    when_dist_at_least,
    when_dist_at_most,
    when_inside_ball,
    when_inside_polygon,
    when_outside_polygon,
    when_true,
    when_value_in_range,
    when_within_sphere,
)

__all__ = [
    "Point",
    "Vector",
    "dist",
    "Edge",
    "Polygon",
    "Ball",
    "Box",
    "Circle",
    "Sphere",
    "enclosing_ball",
    "inside",
    "outside",
    "within_a_sphere",
    "when_below",
    "when_dist_at_least",
    "when_dist_at_most",
    "when_inside_ball",
    "when_inside_polygon",
    "when_outside_polygon",
    "when_true",
    "when_value_in_range",
    "when_within_sphere",
]
