"""Kinetic predicates: *when* does a spatial relation hold?

This module is the base case of the paper's appendix algorithm: "we assume
that there is a routine, which for each possible relevant instantiation of
values to the free variables in g, gives us the intervals during which the
relation R is satisfied.  Clearly, this algorithm has to use the initial
positions and functions according to which the dynamic variables change."

Every solver returns a dense-domain
:class:`~repro.temporal.IntervalSet` of satisfaction times inside an
evaluation window:

* **Analytic path** — when all participating motions are piecewise linear
  (the paper's motion-vector case) the answers are exact: distance
  predicates reduce to quadratic inequalities per linear leg, polygon
  containment to edge-crossing events.
* **Numeric path** — for other motions (section 4: "the ideas can be
  extended to nonlinear functions") the solvers isolate boundary crossings
  by dense sampling plus bisection refinement.

Moving regions (the driver's 5-mile circle that "moves as a rigid body
having the motion vector of the car") are handled by the relative-motion
reduction: subtract the carrier's displacement from the point's motion and
test against the static region.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.errors import SpatialError
from repro.motion.functions import TimeFunction
from repro.motion.moving import LinearPiece, MovingPoint
from repro.spatial.geometry import Point, Vector
from repro.spatial.polygon import Polygon
from repro.spatial.predicates import enclosing_ball
from repro.spatial.regions import Ball
from repro.temporal import DENSE, Interval, IntervalSet

#: Default sample count per window for the numeric fallback.
NUMERIC_SAMPLES = 512
#: Bisection tolerance when refining a numeric boundary crossing.
NUMERIC_TOL = 1e-9


# ---------------------------------------------------------------------------
# Generic numeric machinery
# ---------------------------------------------------------------------------
def when_true(
    predicate: Callable[[float], bool],
    window: Interval,
    samples: int = NUMERIC_SAMPLES,
) -> IntervalSet:
    """Numeric satisfaction intervals of an arbitrary boolean predicate.

    Samples the window densely, then bisects every sign change to
    :data:`NUMERIC_TOL`.  Exact up to features narrower than the sample
    step; callers that can do better analytically should.
    """
    if window.is_unbounded:
        raise SpatialError("numeric solver needs a bounded window")
    if samples < 2:
        raise SpatialError("need at least two samples")
    step = window.duration / (samples - 1)
    ts = [window.start + i * step for i in range(samples)]
    flags = [predicate(t) for t in ts]

    pieces: list[Interval] = []
    run_start: float | None = ts[0] if flags[0] else None
    for i in range(1, samples):
        if flags[i] == flags[i - 1]:
            continue
        boundary = _bisect_flip(predicate, ts[i - 1], ts[i], flags[i - 1])
        if flags[i]:  # false -> true
            run_start = boundary
        else:  # true -> false
            pieces.append(Interval(run_start, boundary))
            run_start = None
    if run_start is not None:
        pieces.append(Interval(run_start, window.end))
    return IntervalSet(pieces, DENSE)


def _bisect_flip(
    predicate: Callable[[float], bool],
    lo: float,
    hi: float,
    lo_value: bool,
) -> float:
    """Locate the flip point of ``predicate`` in ``(lo, hi)``."""
    for _ in range(80):
        if hi - lo <= NUMERIC_TOL:
            break
        mid = (lo + hi) / 2
        if predicate(mid) == lo_value:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def when_below(
    g: Callable[[float], float],
    window: Interval,
    samples: int = NUMERIC_SAMPLES,
) -> IntervalSet:
    """Numeric satisfaction intervals of ``g(t) <= 0``."""
    return when_true(lambda t: g(t) <= 0.0, window, samples)


# ---------------------------------------------------------------------------
# Quadratic inequality helper (the analytic workhorse)
# ---------------------------------------------------------------------------
def _quadratic_at_most_zero(
    a: float, b: float, c: float, lo: float, hi: float
) -> list[Interval]:
    """Solve ``a s^2 + b s + c <= 0`` for ``s`` in ``[lo, hi]``."""
    eps = 1e-12
    if abs(a) < eps:
        if abs(b) < eps:
            return [Interval(lo, hi)] if c <= eps else []
        root = -c / b
        if b > 0:
            s0, s1 = lo, min(root, hi)
        else:
            s0, s1 = max(root, lo), hi
        return [Interval(s0, s1)] if s0 <= s1 else []
    disc = b * b - 4 * a * c
    if disc < 0:
        # No real roots: sign is constant, that of `a`.
        return [Interval(lo, hi)] if a < 0 else []
    sq = math.sqrt(disc)
    r0 = (-b - sq) / (2 * a)
    r1 = (-b + sq) / (2 * a)
    if r0 > r1:
        r0, r1 = r1, r0
    if a > 0:
        s0, s1 = max(r0, lo), min(r1, hi)
        if s0 <= s1:
            return [Interval(s0, s1)]
        # Grazing contact at a window endpoint can be lost to underflow in
        # the discriminant; recover the touch point when the overshoot is
        # within floating-point noise.
        tol = 1e-9 * max(1.0, abs(lo), abs(hi))
        if s0 - s1 <= tol:
            touch = min(max((s0 + s1) / 2, lo), hi)
            return [Interval(touch, touch)]
        return []
    out = []
    if lo <= min(r0, hi):
        out.append(Interval(lo, min(r0, hi)))
    if max(r1, lo) <= hi:
        out.append(Interval(max(r1, lo), hi))
    return out


# ---------------------------------------------------------------------------
# Piece pairing
# ---------------------------------------------------------------------------
def _paired_pieces(
    m1: MovingPoint, m2: MovingPoint, window: Interval
) -> list[tuple[float, float, Point, Vector]] | None:
    """Relative motion ``m1 - m2`` as linear legs ``(start, end, d0, dv)``,
    or ``None`` when either motion is not piecewise linear."""
    p1 = m1.linear_pieces(window.start, window.end)
    p2 = m2.linear_pieces(window.start, window.end)
    if p1 is None or p2 is None:
        return None
    legs = paired_legs(p1, p2, window)
    if not legs:
        d0 = m1.position_at(window.start) - m2.position_at(window.start)
        legs.append((window.start, window.end, d0, Vector.zero(d0.dim)))
    return legs


def paired_legs(
    p1: list[LinearPiece], p2: list[LinearPiece], window: Interval
) -> list[tuple[float, float, Point, Vector]]:
    """Pair two linear-piece decompositions into relative-motion legs.

    Exposed separately so the batch backend (:mod:`repro.motion.batch`)
    can pair per-object pieces it has already derived (and memoized)
    through the identical arithmetic the scalar path uses.
    """
    cuts = sorted(
        {window.start, window.end}
        | {p.start for p in p1}
        | {p.start for p in p2}
    )
    legs: list[tuple[float, float, Point, Vector]] = []
    for lo, hi in zip(cuts, cuts[1:]):
        a = _piece_at(p1, lo)
        b = _piece_at(p2, lo)
        d0 = a.position_at(lo) - b.position_at(lo)
        dv = a.velocity - b.velocity
        legs.append((lo, hi, d0, dv))
    return legs


def _piece_at(pieces: list[LinearPiece], t: float) -> LinearPiece:
    chosen = pieces[0]
    for p in pieces:
        if p.start <= t + 1e-12:
            chosen = p
        else:
            break
    return chosen


# ---------------------------------------------------------------------------
# Distance predicates
# ---------------------------------------------------------------------------
def when_dist_at_most(
    m1: MovingPoint,
    m2: MovingPoint,
    r: float,
    window: Interval,
    samples: int = NUMERIC_SAMPLES,
) -> IntervalSet:
    """When is ``DIST(o1, o2) <= r``?

    Analytic per linear leg (``|d0 + dv s|^2 <= r^2`` is a quadratic in
    ``s``), numeric fallback otherwise.  This is the solver behind the
    airport query Q of section 1 ("airplanes that will come within 30
    miles of the airport in the next 10 minutes").
    """
    if r < 0:
        raise SpatialError("distance threshold may not be negative")
    legs = _paired_pieces(m1, m2, window)
    if legs is None:
        return when_below(
            lambda t: m1.position_at(t).distance_to(m2.position_at(t)) - r,
            window,
            samples,
        )
    pieces: list[Interval] = []
    for lo, hi, d0, dv in legs:
        a = dv.norm_squared
        b = 2 * d0.dot(dv)
        c = d0.norm_squared - r * r
        for sol in _quadratic_at_most_zero(a, b, c, 0.0, hi - lo):
            pieces.append(Interval(lo + sol.start, lo + sol.end))
    return IntervalSet(pieces, DENSE)


def when_dist_at_least(
    m1: MovingPoint,
    m2: MovingPoint,
    r: float,
    window: Interval,
    samples: int = NUMERIC_SAMPLES,
) -> IntervalSet:
    """When is ``DIST(o1, o2) >= r``? (complement of the strict interior)."""
    if r < 0:
        raise SpatialError("distance threshold may not be negative")
    legs = _paired_pieces(m1, m2, window)
    if legs is None:
        return when_below(
            lambda t: r - m1.position_at(t).distance_to(m2.position_at(t)),
            window,
            samples,
        )
    pieces: list[Interval] = []
    for lo, hi, d0, dv in legs:
        # |d0 + dv s|^2 >= r^2  <=>  -(a s^2 + b s + c) <= 0
        a = dv.norm_squared
        b = 2 * d0.dot(dv)
        c = d0.norm_squared - r * r
        for sol in _quadratic_at_most_zero(-a, -b, -c, 0.0, hi - lo):
            pieces.append(Interval(lo + sol.start, lo + sol.end))
    return IntervalSet(pieces, DENSE)


# ---------------------------------------------------------------------------
# Ball containment
# ---------------------------------------------------------------------------
def when_inside_ball(
    m: MovingPoint,
    ball: Ball,
    window: Interval,
    carrier: MovingPoint | None = None,
    samples: int = NUMERIC_SAMPLES,
) -> IntervalSet:
    """When is the moving point inside the (possibly moving) ball?

    A ``carrier`` makes the ball move rigidly with the carrier's motion —
    the section 1 scenario of a circle drawn around a car that "moves as a
    rigid body having the motion vector of the car".
    """
    center = carrier if carrier is not None else MovingPoint(ball.center)
    if carrier is not None:
        # Ball centre offset from the carrier is preserved by rigid motion.
        offset = ball.center - carrier.position_at(window.start)
        center = _offset_mover(carrier, offset)
    return when_dist_at_most(m, center, ball.radius, window, samples)


def _offset_mover(carrier: MovingPoint, offset: Point) -> MovingPoint:
    """A point rigidly attached to ``carrier`` at a constant offset."""
    return MovingPoint(
        carrier.anchor + offset,
        carrier.functions,
        anchor_time=carrier.anchor_time,
    )


# ---------------------------------------------------------------------------
# Polygon containment
# ---------------------------------------------------------------------------
def when_inside_polygon(
    m: MovingPoint,
    polygon: Polygon,
    window: Interval,
    carrier: MovingPoint | None = None,
    samples: int = NUMERIC_SAMPLES,
) -> IntervalSet:
    """When is the moving point inside the (possibly moving) polygon?

    For piecewise-linear motion the answer is exact: containment can only
    change when the point crosses a polygon edge, so we compute all edge
    crossing times per linear leg, split the leg there, and classify each
    sub-interval by a midpoint containment test.  A ``carrier`` moves the
    polygon rigidly; the relative-motion reduction subtracts its
    displacement from the point's motion.
    """
    if m.dim != 2:
        raise SpatialError("polygon containment requires 2-D motion")
    reference = carrier if carrier is not None else MovingPoint(Point(0.0, 0.0))

    legs = _paired_pieces(m, reference, window)
    if legs is None:
        if carrier is None:
            return when_true(
                lambda t: polygon.contains(m.position_at(t)), window, samples
            )
        ref0 = reference.position_at(window.start)

        def moving_contains(t: float) -> bool:
            shifted = polygon.translated(reference.position_at(t) - ref0)
            return shifted.contains(m.position_at(t))

        return when_true(moving_contains, window, samples)

    # Work in the carrier's frame: p_rel(t) = m(t) - carrier(t) must lie in
    # the polygon expressed relative to the carrier's window-start position
    # (m(t) in poly + carrier(t) - carrier(start)  <=>
    #  p_rel(t) in poly - carrier(start)).  With no carrier the reference is
    # the static origin, so d0 is simply m(lo) and `base` the polygon itself.
    base = polygon
    if carrier is not None:
        base = polygon.translated(-reference.position_at(window.start))

    pieces: list[Interval] = []
    for lo, hi, d0, dv in legs:
        origin = d0
        events = {0.0, hi - lo}
        for edge in base.edges:
            for s in _segment_crossings(origin, dv, edge.a, edge.b, hi - lo):
                events.add(s)
        ordered = sorted(events)
        for s0, s1 in zip(ordered, ordered[1:]):
            mid = (s0 + s1) / 2
            probe = origin + dv * mid
            if base.contains(probe):
                pieces.append(Interval(lo + s0, lo + s1))
        # Measure-zero touches (the path grazes a vertex or edge without
        # entering): the midpoint test above only finds open runs, so test
        # the event instants themselves.
        for s in ordered:
            if base.contains(origin + dv * s):
                pieces.append(Interval(lo + s, lo + s))
    return IntervalSet(pieces, DENSE)


def when_outside_polygon(
    m: MovingPoint,
    polygon: Polygon,
    window: Interval,
    carrier: MovingPoint | None = None,
    samples: int = NUMERIC_SAMPLES,
) -> IntervalSet:
    """When is the moving point outside the polygon? (window complement)."""
    inside = when_inside_polygon(m, polygon, window, carrier, samples)
    return inside.complement(window)


def _segment_crossings(
    p0: Point, v: Vector, a: Point, b: Point, s_max: float
) -> list[float]:
    """Times ``s`` in ``[0, s_max]`` when ``p0 + v s`` meets segment
    ``[a, b]``."""
    ab = b - a
    denom = v.cross2d(ab)
    out: list[float] = []
    if abs(denom) > 1e-12:
        # Lines are not parallel: single candidate crossing.
        ap0 = a - p0
        s = ap0.cross2d(ab) / denom
        if -1e-12 <= s <= s_max + 1e-12:
            # Parameter along the edge.
            if abs(ab.x) >= abs(ab.y):
                u = (p0.x + v.x * s - a.x) / ab.x if ab.x else 0.0
            else:
                u = (p0.y + v.y * s - a.y) / ab.y if ab.y else 0.0
            if -1e-9 <= u <= 1 + 1e-9:
                out.append(min(max(s, 0.0), s_max))
        return out
    # Parallel: crossings only matter when collinear — entering/leaving the
    # segment happens at the projections of a and b onto the path.
    if abs((a - p0).cross2d(v)) > 1e-9:
        return out
    v2 = v.norm_squared
    if v2 < 1e-18:
        return out
    for endpoint in (a, b):
        s = (endpoint - p0).dot(v) / v2
        if -1e-12 <= s <= s_max + 1e-12:
            out.append(min(max(s, 0.0), s_max))
    return out


# ---------------------------------------------------------------------------
# WITHIN-A-SPHERE
# ---------------------------------------------------------------------------
def when_within_sphere(
    r: float,
    movers: Sequence[MovingPoint],
    window: Interval,
    samples: int = NUMERIC_SAMPLES,
) -> IntervalSet:
    """When can the moving points be enclosed in a sphere of radius ``r``?

    For two points this is exactly ``DIST <= 2r``; for more the minimal
    enclosing ball radius is evaluated numerically (its boundary crossings
    are isolated by sampling + bisection).
    """
    if r < 0:
        raise SpatialError("sphere radius may not be negative")
    if not movers:
        return IntervalSet((window,), DENSE)
    if len(movers) == 1:
        return IntervalSet((window,), DENSE)
    if len(movers) == 2:
        return when_dist_at_most(movers[0], movers[1], 2 * r, window, samples)
    return when_true(
        lambda t: enclosing_ball(
            [m.position_at(t) for m in movers]
        ).radius
        <= r + 1e-9,
        window,
        samples,
    )


# ---------------------------------------------------------------------------
# Scalar dynamic attributes (non-spatial hybrid systems, section 2.1)
# ---------------------------------------------------------------------------
def when_value_in_range(
    anchor_value: float,
    function: TimeFunction,
    lo: float,
    hi: float,
    window: Interval,
    anchor_time: float = 0.0,
    samples: int = NUMERIC_SAMPLES,
) -> IntervalSet:
    """When is a scalar dynamic attribute's value in ``[lo, hi]``?

    Covers the section 4 index query "Retrieve the objects for which
    currently ``4 < A < 5``" and its continuous variant, for arbitrary
    attribute functions (temperature, fuel consumption, ...).
    """
    if hi < lo:
        raise SpatialError("empty value range")

    def value_at(t: float) -> float:
        return anchor_value + function.value(t - anchor_time)

    bps = function.linear_breakpoints(window.end - anchor_time)
    if bps is None:
        return when_true(lambda t: lo <= value_at(t) <= hi, window, samples)

    cuts = sorted(
        {window.start, window.end}
        | {
            bp + anchor_time
            for bp, _ in bps
            if window.start < bp + anchor_time < window.end
        }
    )
    pieces: list[Interval] = []
    for seg_lo, seg_hi in zip(cuts, cuts[1:]):
        v0 = value_at(seg_lo)
        slope = _scalar_slope(bps, seg_lo - anchor_time)
        span = seg_hi - seg_lo
        # lo <= v0 + slope * s <= hi for s in [0, span]
        sols = _linear_band(v0, slope, lo, hi, span)
        pieces.extend(Interval(seg_lo + s0, seg_lo + s1) for s0, s1 in sols)
    return IntervalSet(pieces, DENSE)


def _scalar_slope(bps: list[tuple[float, float]], rel_t: float) -> float:
    slope = bps[0][1]
    for start, k in bps:
        if start <= rel_t + 1e-12:
            slope = k
        else:
            break
    return slope


def _linear_band(
    v0: float, slope: float, lo: float, hi: float, span: float
) -> list[tuple[float, float]]:
    """Solve ``lo <= v0 + slope*s <= hi`` for ``s`` in ``[0, span]``."""
    # A slope too small to representably change v0 within the window is a
    # constant for all practical purposes (denormal slopes otherwise yield
    # astronomically wrong crossing times).  With v0 == 0 nothing absorbs,
    # so the guard stays relative to |v0| only.
    if slope == 0 or abs(slope) * span <= 1e-12 * abs(v0):
        return [(0.0, span)] if lo <= v0 <= hi else []
    s_lo = (lo - v0) / slope
    s_hi = (hi - v0) / slope
    if s_lo > s_hi:
        s_lo, s_hi = s_hi, s_lo
    s0, s1 = max(s_lo, 0.0), min(s_hi, span)
    return [(s0, s1)] if s0 <= s1 else []
