"""Re-export of the core geometry types.

The implementation lives in :mod:`repro.geometry` (a standalone module so
that :mod:`repro.motion` can use points without importing the spatial
package, which itself depends on motion for the kinetic solvers).
"""

from repro.geometry import Point, Vector, dist

__all__ = ["Point", "Vector", "dist"]
