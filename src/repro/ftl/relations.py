"""The interval relations ``R_g`` of the appendix algorithm.

"For each subformula g of f, our algorithm computes a relation R_g ...
The relation R_g will have (l+1) attributes, the first l attributes
correspond to the l variables, and the last attribute denotes a time
interval."

:class:`FtlRelation` stores, per variable instantiation, the *normalised*
:class:`~repro.temporal.IntervalSet` of satisfaction ticks — which gives
the appendix's non-overlapping, non-consecutive interval invariant for
free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import FtlSemanticsError
from repro.temporal import DISCRETE, IntervalSet

Instantiation = tuple[object, ...]

EMPTY_SET = IntervalSet.empty(DISCRETE)


@dataclass(frozen=True)
class AnswerTuple:
    """One tuple of ``Answer(CQ)``: an instantiation of the query's target
    variables plus the interval ``[begin, end]`` during which it satisfies
    the query (section 2.3)."""

    values: Instantiation
    begin: float
    end: float

    def active_at(self, t: float) -> bool:
        """Whether this tuple is displayed at clock tick ``t``."""
        return self.begin <= t <= self.end


class FtlRelation:
    """A relation from variable instantiations to satisfaction ticks.

    Rows with empty interval sets are never stored; a missing row means
    "never satisfied".

    For incremental continuous-query maintenance the relation keeps an
    optional inverted index (value → instantiations mentioning it), built
    lazily on the first :meth:`rows_touching` call and maintained by every
    subsequent mutation, so the recompute frontier of an update is found
    in time proportional to the number of affected rows.
    """

    __slots__ = ("variables", "_rows", "_index")

    def __init__(
        self,
        variables: Iterable[str],
        rows: dict[Instantiation, IntervalSet] | None = None,
    ) -> None:
        self.variables = tuple(variables)
        self._rows: dict[Instantiation, IntervalSet] = {}
        self._index: dict[object, set[Instantiation]] | None = None
        for inst, iset in (rows or {}).items():
            self.set(inst, iset)

    # ------------------------------------------------------------------
    def set(self, inst: Instantiation, iset: IntervalSet) -> None:
        """Store a row, dropping empty interval sets."""
        if len(inst) != len(self.variables):
            raise FtlSemanticsError(
                f"instantiation arity {len(inst)} != {len(self.variables)}"
            )
        if iset.is_empty:
            if self._rows.pop(inst, None) is not None:
                self._index_remove(inst)
        else:
            if inst not in self._rows:
                self._index_add(inst)
            self._rows[inst] = iset

    def add(self, inst: Instantiation, iset: IntervalSet) -> None:
        """Union an interval set into a row."""
        current = self._rows.get(inst)
        self.set(inst, iset if current is None else current.union(iset))

    def get(self, inst: Instantiation) -> IntervalSet:
        """Satisfaction set of one instantiation (empty when absent)."""
        return self._rows.get(inst, EMPTY_SET)

    def rows(self) -> Iterator[tuple[Instantiation, IntervalSet]]:
        """All stored (non-empty) rows."""
        return iter(self._rows.items())

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    # ------------------------------------------------------------------
    # Inverted index + incremental patching
    # ------------------------------------------------------------------
    def _ensure_index(self) -> dict[object, set[Instantiation]]:
        if self._index is None:
            self._index = {}
            for inst in self._rows:
                for value in inst:
                    self._index.setdefault(value, set()).add(inst)
        return self._index

    def _index_add(self, inst: Instantiation) -> None:
        if self._index is not None:
            for value in inst:
                self._index.setdefault(value, set()).add(inst)

    def _index_remove(self, inst: Instantiation) -> None:
        if self._index is not None:
            for value in inst:
                bucket = self._index.get(value)
                if bucket is not None:
                    bucket.discard(inst)

    def rows_touching(self, values: Iterable[object]) -> list[Instantiation]:
        """Stored instantiations that mention any of the given values.

        This is the per-relation recompute frontier of an update: the rows
        whose cached interval sets may have been invalidated because one of
        their objects changed.
        """
        index = self._ensure_index()
        out: set[Instantiation] = set()
        for value in values:
            out |= index.get(value, set())
        return list(out)

    def patch(
        self,
        stale: Iterable[Instantiation],
        replacement: "FtlRelation",
    ) -> "FtlRelation":
        """Splice recomputed rows into this relation, in place.

        Drops every ``stale`` instantiation, then adopts every row of
        ``replacement`` (a freshly recomputed sub-relation over the same
        variables).  Rows carry normalised :class:`IntervalSet` values and
        are replaced wholesale, so the appendix's non-overlapping,
        non-consecutive interval invariant is preserved; a stale row absent
        from the replacement means "no longer satisfied" and is removed.
        """
        if tuple(replacement.variables) != self.variables:
            raise FtlSemanticsError(
                f"cannot patch {self.variables} with rows over "
                f"{replacement.variables}"
            )
        for inst in stale:
            if self._rows.pop(inst, None) is not None:
                self._index_remove(inst)
        for inst, iset in replacement.rows():
            self.set(inst, iset)
        return self

    def clipped(self, lo: float, hi: float) -> "FtlRelation":
        """A copy with every interval set clipped to ``[lo, hi]``."""
        return self.map_sets(lambda s: s.clip(lo, hi))

    # ------------------------------------------------------------------
    def index_of(self, var: str) -> int:
        """Column position of a variable."""
        try:
            return self.variables.index(var)
        except ValueError:
            raise FtlSemanticsError(
                f"variable {var!r} not in relation {self.variables}"
            ) from None

    def map_sets(
        self, fn: Callable[[IntervalSet], IntervalSet]
    ) -> "FtlRelation":
        """Apply an interval-set transform to every row (the unary
        temporal operators)."""
        out = FtlRelation(self.variables)
        for inst, iset in self._rows.items():
            out.set(inst, fn(iset))
        return out

    def project(self, targets: Iterable[str]) -> "FtlRelation":
        """Project onto the target variables, unioning the interval sets
        of rows that collapse together."""
        targets = tuple(targets)
        positions = [self.index_of(v) for v in targets]
        out = FtlRelation(targets)
        for inst, iset in self._rows.items():
            out.add(tuple(inst[p] for p in positions), iset)
        return out

    def satisfied_at(self, t: float) -> set[Instantiation]:
        """Instantiations whose satisfaction set contains ``t`` — the
        answer of the instantaneous query at tick ``t``."""
        return {inst for inst, iset in self._rows.items() if iset.contains(t)}

    def answer_tuples(self) -> list[AnswerTuple]:
        """Flatten into ``Answer(CQ)`` tuples (one per maximal interval)."""
        out: list[AnswerTuple] = []
        for inst, iset in sorted(self._rows.items(), key=lambda kv: str(kv[0])):
            for iv in iset:
                out.append(AnswerTuple(inst, iv.start, iv.end))
        return out

    def __repr__(self) -> str:
        return f"FtlRelation({self.variables}, {len(self._rows)} rows)"


def merge_instantiations(
    vars_out: tuple[str, ...],
    vars_a: tuple[str, ...],
    inst_a: Instantiation,
    vars_b: tuple[str, ...],
    inst_b: Instantiation,
) -> Instantiation:
    """Combine two instantiations into the output variable order (values
    for shared variables are assumed equal — the join guarantees it)."""
    lookup = dict(zip(vars_a, inst_a))
    lookup.update(zip(vars_b, inst_b))
    return tuple(lookup[v] for v in vars_out)
