"""Derived-operator rewriting: everything reduces to Until and Nexttime.

Section 3.2: "The formulas (i.e. queries) of FTL use two basic future
temporal operators Until and Nexttime.  Other temporal operators, such as
Eventually, can be expressed in terms of the basic operators."  Section
3.3 gives ``Eventually f ≡ true Until f`` and ``Always f ≡ ¬Eventually
¬f``; section 3.4 adds that the bounded operators "can be expressed using
the previously defined temporal operators and the time object".

:func:`expand` performs those reductions *executably*:

* ``Eventually f``            → ``TRUE Until f``
* ``Always f``                → ``NOT (TRUE Until NOT f)``
* ``Eventually within c f``   → ``[d := time] (TRUE Until (f AND time <= d + c))``
* ``Eventually after c f``    → ``[d := time] (TRUE Until (f AND time >= d + c))``
* ``Always for c f``          → ``[d := time] NOT (TRUE Until ((NOT f) AND time <= d + c))``
* ``f until within c g``      → ``[d := time] (f Until (g AND time <= d + c))``

The assignment quantifier captures the evaluation state's time stamp, and
the embedded comparison against the ``time`` object bounds the witness —
exactly the encoding the paper alludes to.  ``tests/ftl/test_rewrite.py``
property-checks that expansion preserves semantics under the reference
evaluator, and that expanded formulas also agree with the built-in bounded
operators under the interval algorithm.
"""

from __future__ import annotations

import itertools

from repro.ftl.ast import (
    Always,
    AlwaysFor,
    AndF,
    Arith,
    Assign,
    Compare,
    Const,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Nexttime,
    NotF,
    OrF,
    TimeTerm,
    Until,
    UntilWithin,
)

#: The formula ``TRUE`` (a tautological comparison).
TRUE_FORMULA = Compare("=", Const(1), Const(1))

#: Rewrite rule names, one per derived operator (sections 3.3 / 3.4).
RULE_NAMES = {
    Eventually: "eventually",
    Always: "always",
    EventuallyWithin: "eventually-within",
    EventuallyAfter: "eventually-after",
    AlwaysFor: "always-for",
    UntilWithin: "until-within",
}

#: Rules the differential soundness gate
#: (``tests/ftl/test_plan_differential.py``) found unsound.  A
#: quarantined rule is *not* applied by :func:`expand` — the derived
#: operator is kept and evaluated by its built-in interval-map routine —
#: and the planner flags its uses with FTL605.  Currently empty: every
#: rule passes the gate.
QUARANTINED: frozenset[str] = frozenset()


def quarantined_rules() -> frozenset[str]:
    """Names of rewrite rules currently quarantined as unsound."""
    return QUARANTINED


_counter = itertools.count()


def _fresh_var(bound: set[str]) -> str:
    """A deadline-variable name not colliding with anything in scope."""
    while True:
        name = f"_t{next(_counter)}"
        if name not in bound:
            return name


def expand(
    formula: Formula,
    _bound: set[str] | None = None,
    quarantine: frozenset[str] | None = None,
) -> Formula:
    """Rewrite every derived temporal operator into Until/Nexttime form.

    The result contains only atoms, boolean connectives, ``Until``,
    ``Nexttime`` and assignment quantifiers — except for operators whose
    rule is in ``quarantine`` (default :data:`QUARANTINED`): those are
    kept as-is (their subformulas still expand) so the built-in
    interval-map routine evaluates them instead of an unsound encoding.
    """
    bound = set(_bound or set()) | formula.free_vars()
    if quarantine is None:
        quarantine = QUARANTINED

    def rec(f: Formula, extra: set[str] | None = None) -> Formula:
        return expand(f, bound | (extra or set()), quarantine)

    rule = RULE_NAMES.get(type(formula))
    if rule is not None and rule in quarantine:
        # Quarantined: keep the derived operator, expand underneath it.
        if isinstance(formula, UntilWithin):
            return UntilWithin(
                formula.bound, rec(formula.left), rec(formula.right)
            )
        if isinstance(formula, (EventuallyWithin, EventuallyAfter, AlwaysFor)):
            return type(formula)(formula.bound, rec(formula.operand))
        return type(formula)(rec(formula.operand))  # type: ignore[attr-defined]

    if isinstance(formula, Eventually):
        return Until(TRUE_FORMULA, rec(formula.operand))

    if isinstance(formula, Always):
        return NotF(Until(TRUE_FORMULA, NotF(rec(formula.operand))))

    if isinstance(formula, EventuallyWithin):
        d = _fresh_var(bound)
        deadline = Arith("+", _var(d), Const(formula.bound))
        body = Until(
            TRUE_FORMULA,
            AndF(
                rec(formula.operand, {d}),
                Compare("<=", TimeTerm(), deadline),
            ),
        )
        return Assign(d, TimeTerm(), body)

    if isinstance(formula, EventuallyAfter):
        d = _fresh_var(bound)
        threshold = Arith("+", _var(d), Const(formula.bound))
        body = Until(
            TRUE_FORMULA,
            AndF(
                rec(formula.operand, {d}),
                Compare(">=", TimeTerm(), threshold),
            ),
        )
        return Assign(d, TimeTerm(), body)

    if isinstance(formula, AlwaysFor):
        d = _fresh_var(bound)
        deadline = Arith("+", _var(d), Const(formula.bound))
        violation = Until(
            TRUE_FORMULA,
            AndF(
                NotF(rec(formula.operand, {d})),
                Compare("<=", TimeTerm(), deadline),
            ),
        )
        return Assign(d, TimeTerm(), NotF(violation))

    if isinstance(formula, UntilWithin):
        d = _fresh_var(bound)
        deadline = Arith("+", _var(d), Const(formula.bound))
        body = Until(
            rec(formula.left, {d}),
            AndF(
                rec(formula.right, {d}),
                Compare("<=", TimeTerm(), deadline),
            ),
        )
        return Assign(d, TimeTerm(), body)

    # Structural recursion over the remaining node kinds.
    if isinstance(formula, AndF):
        return AndF(rec(formula.left), rec(formula.right))
    if isinstance(formula, OrF):
        return OrF(rec(formula.left), rec(formula.right))
    if isinstance(formula, NotF):
        return NotF(rec(formula.operand))
    if isinstance(formula, Until):
        return Until(rec(formula.left), rec(formula.right))
    if isinstance(formula, Nexttime):
        return Nexttime(rec(formula.operand))
    if isinstance(formula, Assign):
        return Assign(
            formula.var,
            formula.term,
            rec(formula.body, {formula.var}),
        )
    return formula  # atoms


def _var(name: str):
    from repro.ftl.ast import Var

    return Var(name)


def uses_only_basic_operators(formula: Formula) -> bool:
    """Whether the formula contains no derived temporal operator."""
    if isinstance(
        formula,
        (Eventually, Always, EventuallyWithin, EventuallyAfter, AlwaysFor, UntilWithin),
    ):
        return False
    if isinstance(formula, (AndF, OrF, Until)):
        return uses_only_basic_operators(formula.left) and uses_only_basic_operators(
            formula.right
        )
    if isinstance(formula, (NotF, Nexttime)):
        return uses_only_basic_operators(formula.operand)
    if isinstance(formula, Assign):
        return uses_only_basic_operators(formula.body)
    return True
