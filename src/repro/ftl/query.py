"""FTL queries: ``RETRIEVE <targets> FROM <bindings> WHERE <formula>``.

An :class:`FtlQuery` is the parsed form; evaluation produces the
``Answer`` relation of the appendix — per target instantiation, the time
intervals during which it satisfies the formula — from which the three
query types of section 2.3 are all answered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import FtlSemanticsError
from repro.ftl.ast import Formula
from repro.ftl.context import EvalContext
from repro.ftl.relations import FtlRelation

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.history import History


@dataclass(frozen=True)
class FtlQuery:
    """A parsed FTL query.

    Attributes:
        targets: the RETRIEVE list (variables whose instantiations are
            returned).
        bindings: FROM clause — variable name → object class name.
        where: the FTL condition.
    """

    targets: tuple[str, ...]
    bindings: dict[str, str]
    where: Formula

    def __post_init__(self) -> None:
        free = self.where.free_vars()
        unbound = free - set(self.bindings)
        if unbound:
            raise FtlSemanticsError(
                f"free variables {sorted(unbound)} not bound by FROM"
            )
        bad_targets = [t for t in self.targets if t not in self.bindings]
        if bad_targets:
            raise FtlSemanticsError(
                f"RETRIEVE variables {bad_targets} not bound by FROM"
            )

    @property
    def is_conjunctive(self) -> bool:
        """Whether the condition is in the fragment of section 3.5."""
        return self.where.is_conjunctive()

    # ------------------------------------------------------------------
    def evaluate(
        self,
        history: "History",
        horizon: int,
        method: str = "interval",
    ) -> FtlRelation:
        """Compute the full ``R_f`` relation, projected onto the targets.

        Args:
            history: the database history to evaluate on.
            horizon: the expiration horizon (section 2.3) in ticks.
            method: ``"interval"`` for the appendix algorithm,
                ``"naive"`` for the per-state reference semantics.
        """
        return self.evaluate_full(history, horizon, method=method).project(
            self.targets
        )

    def evaluate_full(
        self,
        history: "History",
        horizon: int,
        method: str = "interval",
    ) -> FtlRelation:
        """The *unprojected* (but target-completed) ``R_f`` relation.

        Each row binds every variable the condition mentions (plus
        condition-free targets), so a row's instantiation is exactly the
        set of objects whose dynamic attributes the row's satisfaction
        intervals were computed from — the dependency information
        staleness-aware degradation needs.
        """
        ctx = EvalContext(history, horizon, self.bindings)
        if method == "interval":
            from repro.ftl.evaluator import IntervalEvaluator

            relation = IntervalEvaluator(ctx).evaluate(self.where)
        elif method == "naive":
            from repro.ftl.naive import NaiveEvaluator

            relation = NaiveEvaluator(ctx).evaluate(self.where)
        else:
            raise FtlSemanticsError(f"unknown method {method!r}")
        return self._complete(relation, ctx)

    def _complete(self, relation: FtlRelation, ctx: EvalContext) -> FtlRelation:
        """Extend the relation with target variables the condition never
        mentions (they range freely over their class)."""
        missing = [v for v in self.targets if v not in relation.variables]
        if not missing:
            return relation
        from itertools import product

        out_vars = tuple(sorted(set(relation.variables) | set(missing)))
        out = FtlRelation(out_vars)
        domains = [ctx.domain(v) for v in missing]
        for inst, iset in relation.rows():
            base = dict(zip(relation.variables, inst))
            for extra in product(*domains):
                base.update(zip(missing, extra))
                out.add(tuple(base[v] for v in out_vars), iset)
        return out
