"""FTL queries: ``RETRIEVE <targets> FROM <bindings> WHERE <formula>``.

An :class:`FtlQuery` is the parsed form; evaluation produces the
``Answer`` relation of the appendix — per target instantiation, the time
intervals during which it satisfies the formula — from which the three
query types of section 2.3 are all answered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import FtlSemanticsError
from repro.ftl.ast import Formula
from repro.ftl.context import EvalContext
from repro.ftl.lexer import Span
from repro.ftl.relations import FtlRelation

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.history import History


@dataclass(frozen=True)
class QuerySpans:
    """Source spans of the clause elements of a parsed query.

    Lets diagnostics about the RETRIEVE / FROM clauses (unbound target,
    unknown class) point at the exact identifier rather than the whole
    query.  ``None`` on programmatically built queries.
    """

    targets: tuple[Span, ...]
    #: FROM-clause variable name → span of the variable identifier.
    binding_vars: dict[str, Span]
    #: FROM-clause variable name → span of its class identifier.
    binding_classes: dict[str, Span]
    where: Span | None


@dataclass(frozen=True)
class FtlQuery:
    """A parsed FTL query.

    Attributes:
        targets: the RETRIEVE list (variables whose instantiations are
            returned).
        bindings: FROM clause — variable name → object class name.
        where: the FTL condition.
        spans: clause source spans (parser-built queries only).
    """

    targets: tuple[str, ...]
    bindings: dict[str, str]
    where: Formula
    spans: QuerySpans | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        free = self.where.free_vars()
        unbound = free - set(self.bindings)
        if unbound:
            raise FtlSemanticsError(
                f"free variables {sorted(unbound)} not bound by FROM"
            )
        bad_targets = [t for t in self.targets if t not in self.bindings]
        if bad_targets:
            raise FtlSemanticsError(
                f"RETRIEVE variables {bad_targets} not bound by FROM"
            )

    @property
    def is_conjunctive(self) -> bool:
        """Whether the condition is in the fragment of section 3.5."""
        return self.where.is_conjunctive()

    # ------------------------------------------------------------------
    def evaluate(
        self,
        history: "History",
        horizon: int,
        method: str = "interval",
    ) -> FtlRelation:
        """Compute the full ``R_f`` relation, projected onto the targets.

        Args:
            history: the database history to evaluate on.
            horizon: the expiration horizon (section 2.3) in ticks.
            method: ``"interval"`` for the appendix algorithm,
                ``"naive"`` for the per-state reference semantics.
        """
        return self.evaluate_full(history, horizon, method=method).project(
            self.targets
        )

    def evaluate_full(
        self,
        history: "History",
        horizon: int,
        method: str = "interval",
    ) -> FtlRelation:
        """The *unprojected* (but target-completed) ``R_f`` relation.

        Each row binds every variable the condition mentions (plus
        condition-free targets), so a row's instantiation is exactly the
        set of objects whose dynamic attributes the row's satisfaction
        intervals were computed from — the dependency information
        staleness-aware degradation needs.
        """
        ctx = EvalContext(history, horizon, self.bindings)
        if method == "interval":
            from repro.ftl.evaluator import IntervalEvaluator

            relation = IntervalEvaluator(ctx).evaluate(self.where)
        elif method == "naive":
            from repro.ftl.naive import NaiveEvaluator

            relation = NaiveEvaluator(ctx).evaluate(self.where)
        else:
            raise FtlSemanticsError(f"unknown method {method!r}")
        return self._complete(relation, ctx)

    def analyze(self, schema=None) -> "AnalysisResult":
        """Run the static analyzer over this query.

        ``schema`` is a :class:`~repro.ftl.analysis.SchemaInfo`, a
        :class:`~repro.core.database.MostDatabase` (its schema is
        extracted), or ``None`` (schema-dependent checks are skipped).
        """
        from repro.ftl.analysis import analyze_query

        return analyze_query(self, schema=schema)

    def _complete(self, relation: FtlRelation, ctx: EvalContext) -> FtlRelation:
        """Extend the relation with target variables the condition never
        mentions (they range freely over their class)."""
        missing = [v for v in self.targets if v not in relation.variables]
        if not missing:
            return relation
        from itertools import product

        out_vars = tuple(sorted(set(relation.variables) | set(missing)))
        out = FtlRelation(out_vars)
        domains = [ctx.domain(v) for v in missing]
        for inst, iset in relation.rows():
            base = dict(zip(relation.variables, inst))
            for extra in product(*domains):
                base.update(zip(missing, extra))
                out.add(tuple(base[v] for v in out_vars), iset)
        return out


@dataclass(frozen=True)
class CompiledQuery:
    """A parsed query together with its static-analysis result."""

    query: FtlQuery
    analysis: "AnalysisResult"

    @property
    def diagnostics(self):
        """The analyzer's diagnostics (errors, warnings and infos)."""
        return self.analysis.diagnostics


class QueryCompiler:
    """Parse + analyze pipeline gating queries before evaluation.

    The compiler is the front door the paper's processing scheme assumes:
    a query reaches an evaluator only after the static analyzer has
    established it is well-formed (bindings, sorts, safety) and has
    classified its temporal fragment.  Errors raise
    :class:`~repro.errors.FtlAnalysisError` listing every diagnostic;
    warnings and lints are returned on the :class:`CompiledQuery` for the
    caller to surface.

    Args:
        schema: a ``MostDatabase``, a
            :class:`~repro.ftl.analysis.SchemaInfo`, or ``None`` to skip
            schema-dependent checks.
        strict: when True (default), error diagnostics raise; when False
            the result is returned with the errors attached.
    """

    def __init__(self, schema=None, strict: bool = True) -> None:
        self.schema = schema
        self.strict = strict

    def compile(self, source: "str | FtlQuery") -> CompiledQuery:
        """Compile FTL source text (or an already-parsed query)."""
        if isinstance(source, FtlQuery):
            query = source
        else:
            from repro.ftl.parser import parse_query

            query = parse_query(source)
        analysis = query.analyze(schema=self.schema)
        if self.strict:
            analysis.raise_on_error()
        analysis.warn_on_lints()
        return CompiledQuery(query=query, analysis=analysis)


def compile_query(
    source: "str | FtlQuery", schema=None, strict: bool = True
) -> CompiledQuery:
    """One-shot :class:`QueryCompiler` convenience wrapper."""
    return QueryCompiler(schema=schema, strict=strict).compile(source)
