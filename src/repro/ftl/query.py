"""FTL queries: ``RETRIEVE <targets> FROM <bindings> WHERE <formula>``.

An :class:`FtlQuery` is the parsed form; evaluation produces the
``Answer`` relation of the appendix — per target instantiation, the time
intervals during which it satisfies the formula — from which the three
query types of section 2.3 are all answered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.errors import FtlSemanticsError
from repro.ftl.ast import Formula
from repro.ftl.context import EvalContext
from repro.ftl.lexer import Span
from repro.ftl.relations import FtlRelation

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.history import History
    from repro.ftl.analysis import AnalysisResult
    from repro.ftl.analysis.cost import CostEstimate, CostModel
    from repro.ftl.analysis.plan import EvalPlan


@dataclass(frozen=True)
class QuerySpans:
    """Source spans of the clause elements of a parsed query.

    Lets diagnostics about the RETRIEVE / FROM clauses (unbound target,
    unknown class) point at the exact identifier rather than the whole
    query.  ``None`` on programmatically built queries.
    """

    targets: tuple[Span, ...]
    #: FROM-clause variable name → span of the variable identifier.
    binding_vars: dict[str, Span]
    #: FROM-clause variable name → span of its class identifier.
    binding_classes: dict[str, Span]
    where: Span | None


@dataclass(frozen=True)
class FtlQuery:
    """A parsed FTL query.

    Attributes:
        targets: the RETRIEVE list (variables whose instantiations are
            returned).
        bindings: FROM clause — variable name → object class name.
        where: the FTL condition.
        spans: clause source spans (parser-built queries only).
    """

    targets: tuple[str, ...]
    bindings: dict[str, str]
    where: Formula
    spans: QuerySpans | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        free = self.where.free_vars()
        unbound = free - set(self.bindings)
        if unbound:
            raise FtlSemanticsError(
                f"free variables {sorted(unbound)} not bound by FROM"
            )
        bad_targets = [t for t in self.targets if t not in self.bindings]
        if bad_targets:
            raise FtlSemanticsError(
                f"RETRIEVE variables {bad_targets} not bound by FROM"
            )

    @property
    def is_conjunctive(self) -> bool:
        """Whether the condition is in the fragment of section 3.5."""
        return self.where.is_conjunctive()

    # ------------------------------------------------------------------
    def evaluate(
        self,
        history: "History",
        horizon: int,
        method: str = "interval",
        ordered: bool = True,
        plan: "EvalPlan | None" = None,
        index_pruning: bool = True,
        solve_cache: bool = True,
        batch_solver: bool = True,
        parallel: object = None,
    ) -> FtlRelation:
        """Compute the full ``R_f`` relation, projected onto the targets.

        Args:
            history: the database history to evaluate on.
            horizon: the expiration horizon (section 2.3) in ticks.
            method: ``"interval"`` for the appendix algorithm,
                ``"naive"`` for the per-state reference semantics.
            ordered: evaluate through a cost-ordered plan (built here from
                the history's class populations) instead of syntactic
                operand order; answers are identical either way.
            plan: a pre-built :class:`~repro.ftl.analysis.plan.EvalPlan`
                to reuse (overrides ``ordered``).
            index_pruning: answer atom instantiations outside the
                trajectory-MBR candidate sets without kinetic solves
                (DESIGN.md §7; answers are identical either way).
            solve_cache: reuse kinetic solves through the database-wide
                memo table.
            batch_solver: submit each atom's surviving instantiations to
                the vectorized kinetic backend as one batch (DESIGN.md
                §8; answers are identical either way).
            parallel: shard the evaluation across worker processes
                (DESIGN.md §12; answers are identical either way).
                ``None`` / ``0`` / ``1`` evaluate serially; an integer
                ``N >= 2`` uses N workers; ``"auto"`` sizes from
                ``REPRO_PARALLEL_WORKERS`` or the CPU count.  Requires
                ``method="interval"`` and a future history.
        """
        return self.evaluate_full(
            history,
            horizon,
            method=method,
            ordered=ordered,
            plan=plan,
            index_pruning=index_pruning,
            solve_cache=solve_cache,
            batch_solver=batch_solver,
            parallel=parallel,
        ).project(self.targets)

    def evaluate_full(
        self,
        history: "History",
        horizon: int,
        method: str = "interval",
        ordered: bool = True,
        plan: "EvalPlan | None" = None,
        index_pruning: bool = True,
        solve_cache: bool = True,
        batch_solver: bool = True,
        validity: "Mapping[int, float] | None" = None,
        parallel: object = None,
    ) -> FtlRelation:
        """The *unprojected* (but target-completed) ``R_f`` relation.

        Each row binds every variable the condition mentions (plus
        condition-free targets), so a row's instantiation is exactly the
        set of objects whose dynamic attributes the row's satisfaction
        intervals were computed from — the dependency information
        staleness-aware degradation needs.
        """
        workers = 1
        if parallel is not None:
            from repro.parallel import resolve_workers

            workers = resolve_workers(parallel)
        if workers > 1:
            from repro.errors import QueryError

            if method != "interval":
                raise QueryError(
                    "parallel evaluation requires the interval method "
                    f"(got method={method!r})"
                )
            from repro.parallel.evaluator import ShardedIntervalEvaluator

            sharded = ShardedIntervalEvaluator(
                self,
                history,
                horizon,
                workers,
                plan=plan,
                ordered=ordered,
                index_pruning=index_pruning,
                solve_cache=solve_cache,
                batch_solver=batch_solver,
                validity=validity,
            )
            return self._complete(sharded.evaluate(), sharded.ctx)
        if plan is None and ordered:
            try:
                plan = self.plan_for(history=history, horizon=horizon)
            except FtlSemanticsError:
                plan = None
        ctx = EvalContext(history, horizon, self.bindings)
        if method == "interval":
            from repro.ftl.evaluator import IntervalEvaluator

            relation = IntervalEvaluator(
                ctx,
                plan=plan,
                index_pruning=index_pruning,
                solve_cache=solve_cache,
                batch_solver=batch_solver,
                validity=validity,
            ).evaluate(self.where)
        elif method == "naive":
            from repro.ftl.naive import NaiveEvaluator

            relation = NaiveEvaluator(
                ctx, plan=plan, batch_solver=batch_solver
            ).evaluate(self.where)
        else:
            raise FtlSemanticsError(f"unknown method {method!r}")
        return self._complete(relation, ctx)

    def plan_for(
        self,
        history: "History | None" = None,
        horizon: int | None = None,
        order: bool = True,
        model: "CostModel | None" = None,
    ) -> "EvalPlan":
        """Lower the WHERE clause to a cost-annotated evaluation plan.

        With a ``history``, the cost model's class populations are the
        real ones; otherwise the schema-less defaults apply (good enough
        for ordering, per the calibration tests).
        """
        from repro.ftl.analysis.cost import CostModel
        from repro.ftl.analysis.plan import plan_query

        if model is None:
            kwargs: dict = {}
            if history is not None:
                from repro.errors import SchemaError

                sizes: dict[str, int] = {}
                for cls in set(self.bindings.values()):
                    try:
                        sizes[cls] = len(history.object_ids(cls))
                    except SchemaError:
                        continue
                kwargs["class_sizes"] = sizes
            if horizon is not None:
                kwargs["horizon"] = max(0, int(horizon))
            model = CostModel(**kwargs)
        return plan_query(self, model=model, order=order)

    def analyze(self, schema=None) -> "AnalysisResult":
        """Run the static analyzer over this query.

        ``schema`` is a :class:`~repro.ftl.analysis.SchemaInfo`, a
        :class:`~repro.core.database.MostDatabase` (its schema is
        extracted), or ``None`` (schema-dependent checks are skipped).
        """
        from repro.ftl.analysis import analyze_query

        return analyze_query(self, schema=schema)

    def _complete(self, relation: FtlRelation, ctx: EvalContext) -> FtlRelation:
        """Extend the relation with target variables the condition never
        mentions (they range freely over their class)."""
        missing = [v for v in self.targets if v not in relation.variables]
        if not missing:
            return relation
        from itertools import product

        out_vars = tuple(sorted(set(relation.variables) | set(missing)))
        out = FtlRelation(out_vars)
        domains = [ctx.domain(v) for v in missing]
        for inst, iset in relation.rows():
            base = dict(zip(relation.variables, inst))
            for extra in product(*domains):
                base.update(zip(missing, extra))
                out.add(tuple(base[v] for v in out_vars), iset)
        return out


@dataclass
class CompiledQuery:
    """A parsed query together with its static-analysis result and plan.

    ``plan`` is the cost-ordered evaluation plan built against the
    compiler's schema (``None`` when analysis failed or the formula
    cannot be lowered); ``drift`` is filled by
    :meth:`evaluate` with ``record_relations=True`` — per plan node, the
    observed ``|R_g|`` vs the static estimate (the calibration signal).
    """

    query: FtlQuery
    analysis: "AnalysisResult"
    plan: "EvalPlan | None" = None
    drift: list[dict] | None = None
    #: Atom-acceleration counters of the last :meth:`evaluate` call with
    #: ``record_relations=True`` (``kinetic_solves``,
    #: ``pruned_instantiations``, ``cache_hits`` / ``cache_misses``, ...).
    counters: dict[str, int] | None = None

    @property
    def diagnostics(self):
        """The analyzer's diagnostics (errors, warnings and infos)."""
        return self.analysis.diagnostics

    @property
    def estimates(self) -> "dict[str, CostEstimate]":
        """Per-plan-node cost estimates keyed by plan path."""
        if self.plan is None:
            return {}
        return self.plan.estimates

    def evaluate(
        self,
        history: "History",
        horizon: int,
        method: str = "interval",
        record_relations: bool = False,
    ) -> FtlRelation:
        """Evaluate the compiled query (projected onto its targets).

        With ``record_relations``, the interval evaluator traces every
        per-subformula relation ``R_g`` and :attr:`drift` is populated
        with observed-vs-estimated sizes per plan node (``method`` must
        be ``"interval"`` — only the appendix algorithm materialises
        per-subformula relations).
        """
        if not record_relations:
            return self.query.evaluate(history, horizon, method=method)
        if method != "interval":
            raise FtlSemanticsError(
                "record_relations requires the interval method"
            )
        from repro.ftl.analysis.cost import drift_report
        from repro.ftl.evaluator import IntervalEvaluator

        plan = self.query.plan_for(history=history, horizon=horizon)
        ctx = EvalContext(history, horizon, self.query.bindings)
        trace: dict[int, FtlRelation] = {}
        evaluator = IntervalEvaluator(ctx, trace=trace, plan=plan)
        relation = evaluator.evaluate(self.query.where)
        self.drift = drift_report(
            plan, trace, atom_stats=evaluator.atom_stats
        )
        self.counters = evaluator.counters()
        relation = self.query._complete(relation, ctx)
        return relation.project(self.query.targets)


class QueryCompiler:
    """Parse + analyze pipeline gating queries before evaluation.

    The compiler is the front door the paper's processing scheme assumes:
    a query reaches an evaluator only after the static analyzer has
    established it is well-formed (bindings, sorts, safety) and has
    classified its temporal fragment.  Errors raise
    :class:`~repro.errors.FtlAnalysisError` listing every diagnostic;
    warnings and lints are returned on the :class:`CompiledQuery` for the
    caller to surface.

    Args:
        schema: a ``MostDatabase``, a
            :class:`~repro.ftl.analysis.SchemaInfo`, or ``None`` to skip
            schema-dependent checks.
        strict: when True (default), error diagnostics raise; when False
            the result is returned with the errors attached.
    """

    def __init__(self, schema=None, strict: bool = True) -> None:
        self.schema = schema
        self.strict = strict

    def compile(self, source: "str | FtlQuery") -> CompiledQuery:
        """Compile FTL source text (or an already-parsed query)."""
        if isinstance(source, FtlQuery):
            query = source
        else:
            from repro.ftl.parser import parse_query

            query = parse_query(source)
        analysis = query.analyze(schema=self.schema)
        if self.strict:
            analysis.raise_on_error()
        analysis.warn_on_lints()
        plan = None
        if analysis.ok:
            try:
                plan = query.plan_for()
            except FtlSemanticsError:
                plan = None
        return CompiledQuery(query=query, analysis=analysis, plan=plan)


def compile_query(
    source: "str | FtlQuery", schema=None, strict: bool = True
) -> CompiledQuery:
    """One-shot :class:`QueryCompiler` convenience wrapper."""
    return QueryCompiler(schema=schema, strict=strict).compile(source)
