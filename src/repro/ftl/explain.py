"""EXPLAIN for FTL queries: print the cost-annotated evaluation plan.

Usage::

    python -m repro.ftl.explain [--json] [--no-order] [--expand]
        [--class-size N] [--horizon N] query-file [query-file ...]

For each file (one ``RETRIEVE ... FROM ... WHERE ...`` query; ``--``
comment lines ignored) the query is parsed, statically analyzed, lowered
to the evaluation-plan IR of :mod:`repro.ftl.analysis.plan`, and the
annotated operator tree is printed — per node: the operator kind, the
evaluator routine that implements it, free variables, and the static
cardinality/cost bounds.  ``[reordered]`` marks nodes whose operand
order the cost-based orderer changed; ``[shared]`` marks hash-consed
subformulas evaluated once and cached.

``--no-order`` shows the plan in syntactic order (for before/after
comparison), ``--expand`` first rewrites derived temporal operators into
Until/Nexttime form (section 3.3), and ``--class-size``/``--horizon``
set the schema-less cost model's population and horizon assumptions.

Exit status is 1 when any file fails to parse or has error-severity
diagnostics (no plan can be built), else 0.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.errors import FtlSemanticsError, FtlSyntaxError
from repro.ftl.analysis.cost import CostModel
from repro.ftl.ast import Attr, Formula, Inside, Outside, Term
from repro.ftl.lint import strip_comments
from repro.ftl.parser import parse_query
from repro.ftl.query import FtlQuery


def _referenced(where: Formula) -> tuple[set[str], set[str]]:
    """Region names and attribute names the condition mentions (drives
    the synthetic schema of ``--execute``)."""
    regions: set[str] = set()
    attrs: set[str] = set()
    stack: list[object] = [where]
    while stack:
        node = stack.pop()
        if isinstance(node, (Inside, Outside)):
            regions.add(node.region)
        if isinstance(node, Attr):
            attrs.add(node.attr)
        if dataclasses.is_dataclass(node):
            for f in dataclasses.fields(node):
                value = getattr(node, f.name)
                values = value if isinstance(value, tuple) else (value,)
                stack.extend(
                    v for v in values if isinstance(v, (Formula, Term))
                )
    return regions, attrs


def execute_query(
    query: FtlQuery, objects_per_class: int, horizon: int
) -> dict:
    """Evaluate the query on a synthetic seeded fleet and report the
    live atom-acceleration counters (the runtime counterpart of the
    plan's static ``atom_acceleration`` estimate)."""
    import random

    from repro.core.database import MostDatabase
    from repro.core.dynamic import DynamicAttribute
    from repro.core.history import FutureHistory
    from repro.core.objects import ObjectClass
    from repro.ftl.context import EvalContext
    from repro.ftl.evaluator import IntervalEvaluator
    from repro.geometry import Point
    from repro.spatial.polygon import Polygon

    regions, attrs = _referenced(query.where)
    # Spatial classes already carry their position attributes.
    attrs -= {"x_position", "y_position", "z_position"}
    rng = random.Random(0)
    db = MostDatabase()
    for cls_name in sorted(set(query.bindings.values())):
        db.create_class(
            ObjectClass(
                cls_name,
                dynamic_attributes=tuple(sorted(attrs)),
                spatial_dimensions=2,
            )
        )
        for i in range(objects_per_class):
            extra = {
                a: DynamicAttribute.linear(
                    rng.uniform(0.0, 100.0), rng.uniform(-2.0, 2.0)
                )
                for a in sorted(attrs)
            }
            db.add_moving_object(
                cls_name,
                f"{cls_name}-{i}",
                Point(rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)),
                Point(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)),
                dynamic_extra=extra,
            )
    for name in sorted(regions):
        db.define_region(name, Polygon.rectangle(-25.0, -25.0, 25.0, 25.0))
    history = FutureHistory(db)
    plan = query.plan_for(history=history, horizon=horizon)
    ctx = EvalContext(history, horizon, query.bindings)
    evaluator = IntervalEvaluator(ctx, plan=plan)
    evaluator.evaluate(query.where)
    return {
        "objects_per_class": objects_per_class,
        "horizon": horizon,
        "counters": evaluator.counters(),
    }


def explain_query(
    query: FtlQuery,
    order: bool = True,
    expand: bool = False,
    model: CostModel | None = None,
) -> dict:
    """Build the JSON explain report for one parsed query."""
    if expand:
        from repro.ftl.rewrite import expand as expand_formula

        query = FtlQuery(
            targets=query.targets,
            bindings=query.bindings,
            where=expand_formula(query.where),
        )
    analysis = query.analyze()
    report: dict = {
        "ok": analysis.ok,
        "targets": list(query.targets),
        "bindings": dict(query.bindings),
        "diagnostics": [d.to_json() for d in analysis.diagnostics],
    }
    if not analysis.ok:
        return report
    try:
        plan = query.plan_for(order=order, model=model)
    except FtlSemanticsError as exc:
        report["ok"] = False
        report["diagnostics"].append(
            {"code": "plan", "severity": "error", "message": str(exc)}
        )
        return report
    report["plan"] = plan.to_json()
    report["_render"] = plan.render()
    return report


def explain_file(
    path: str,
    order: bool = True,
    expand: bool = False,
    model: CostModel | None = None,
) -> dict:
    """Explain one query file; returns its JSON report."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        return {
            "file": path,
            "ok": False,
            "diagnostics": [
                {"code": "syntax", "severity": "error", "message": str(exc)}
            ],
        }
    try:
        query = parse_query(strip_comments(text))
    except (FtlSyntaxError, FtlSemanticsError) as exc:
        return {
            "file": path,
            "ok": False,
            "diagnostics": [
                {"code": "syntax", "severity": "error", "message": str(exc)}
            ],
        }
    report = explain_query(query, order=order, expand=expand, model=model)
    report["file"] = path
    return report


def _print_human(report: dict) -> None:
    print(f"== {report['file']} ==")
    if not report["ok"]:
        for diag in report["diagnostics"]:
            print(f"  error[{diag['code']}]: {diag['message']}")
        return
    bindings = ", ".join(
        f"{cls} {var}" for var, cls in report["bindings"].items()
    )
    print(f"RETRIEVE {', '.join(report['targets'])} FROM {bindings}")
    plan = report["plan"]
    total = plan["total"]
    print(
        f"plan: ~{total['tuples']:g} rows, cost {total['cost']:g}"
        + (", reordered" if plan["reordered"] else "")
        + (
            f", {plan['shared_subformulas']} shared subformula(s)"
            if plan["shared_subformulas"]
            else ""
        )
    )
    accel = plan.get("atom_acceleration")
    if accel is not None:
        print(
            f"atoms: ~{accel['estimated_solves']:g} kinetic solve(s), "
            f"index pruning {'on' if accel['index_pruning'] else 'off'}"
        )
    deps = plan.get("dependencies")
    if deps is not None:
        parts = []
        for cls, info in deps["by_class"].items():
            reads = ", ".join(info["reads"]) or "nothing"
            part = f"{cls} reads {reads}"
            if info["insensitive_to"]:
                part += (
                    f" (insensitive to {', '.join(info['insensitive_to'])})"
                )
            parts.append(part)
        if parts:
            print("deps: " + "; ".join(parts))
    validity = plan.get("validity")
    if validity is not None:
        from repro.ftl.lint import horizon_phrase

        print("validity: " + horizon_phrase(validity["root"]))
    print(report["_render"])
    execution = report.get("execution")
    if execution is not None:
        if "error" in execution:
            print(f"executed: failed ({execution['error']})")
        else:
            c = execution["counters"]
            print(
                f"executed on {execution['objects_per_class']} objects/"
                f"class: {c['kinetic_solves']} solve(s), "
                f"{c['pruned_instantiations']} pruned, "
                f"{c['cache_hits']}/{c['cache_hits'] + c['cache_misses']} "
                "cache hit(s)"
            )
    for diag in plan["diagnostics"]:
        print(f"  {diag['severity']}[{diag['code']}]: {diag['message']}")
    deps_diags = (plan.get("dependencies") or {}).get("diagnostics", [])
    for diag in deps_diags:
        print(f"  {diag['severity']}[{diag['code']}]: {diag['message']}")
    validity_diags = (plan.get("validity") or {}).get("diagnostics", [])
    for diag in validity_diags:
        print(f"  {diag['severity']}[{diag['code']}]: {diag['message']}")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.ftl.explain",
        description="Print the cost-annotated evaluation plan of FTL "
        "query files.",
    )
    parser.add_argument("files", nargs="+", help="FTL query files")
    parser.add_argument(
        "--json", action="store_true", help="emit one JSON report per file"
    )
    parser.add_argument(
        "--no-order",
        action="store_true",
        help="keep the syntactic operand order (skip the cost-based "
        "orderer)",
    )
    parser.add_argument(
        "--expand",
        action="store_true",
        help="rewrite derived temporal operators into Until/Nexttime "
        "form before planning",
    )
    parser.add_argument(
        "--class-size",
        type=int,
        default=None,
        metavar="N",
        help="assumed population per object class (default 8)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="N",
        help="assumed evaluation horizon in ticks (default 32)",
    )
    parser.add_argument(
        "--execute",
        type=int,
        default=None,
        metavar="N",
        help="additionally evaluate each query on a synthetic seeded "
        "fleet of N objects per class and report the live "
        "kinetic_solves / pruned_instantiations / cache counters",
    )
    opts = parser.parse_args(argv)

    model = None
    if opts.class_size is not None or opts.horizon is not None:
        kwargs: dict = {}
        if opts.class_size is not None:
            kwargs["default_class_size"] = max(1, opts.class_size)
        if opts.horizon is not None:
            kwargs["horizon"] = max(0, opts.horizon)
        model = CostModel(**kwargs)

    status = 0
    reports = []
    for path in opts.files:
        report = explain_file(
            path, order=not opts.no_order, expand=opts.expand, model=model
        )
        if opts.execute is not None and report["ok"]:
            horizon = opts.horizon if opts.horizon is not None else 32
            try:
                with open(path, encoding="utf-8") as fh:
                    query = parse_query(strip_comments(fh.read()))
                report["execution"] = execute_query(
                    query, max(1, opts.execute), max(0, horizon)
                )
            except Exception as exc:  # synthetic world may not fit the query
                report["execution"] = {"error": str(exc)}
        reports.append(report)
        if not report["ok"]:
            status = 1

    if opts.json:
        for report in reports:
            report.pop("_render", None)
        print(json.dumps(reports, indent=2))
        return status

    for i, report in enumerate(reports):
        if i:
            print()
        _print_human(report)
    return status


if __name__ == "__main__":
    sys.exit(main())
