"""EXPLAIN for FTL queries: print the cost-annotated evaluation plan.

Usage::

    python -m repro.ftl.explain [--json] [--no-order] [--expand]
        [--class-size N] [--horizon N] query-file [query-file ...]

For each file (one ``RETRIEVE ... FROM ... WHERE ...`` query; ``--``
comment lines ignored) the query is parsed, statically analyzed, lowered
to the evaluation-plan IR of :mod:`repro.ftl.analysis.plan`, and the
annotated operator tree is printed — per node: the operator kind, the
evaluator routine that implements it, free variables, and the static
cardinality/cost bounds.  ``[reordered]`` marks nodes whose operand
order the cost-based orderer changed; ``[shared]`` marks hash-consed
subformulas evaluated once and cached.

``--no-order`` shows the plan in syntactic order (for before/after
comparison), ``--expand`` first rewrites derived temporal operators into
Until/Nexttime form (section 3.3), and ``--class-size``/``--horizon``
set the schema-less cost model's population and horizon assumptions.

Exit status is 1 when any file fails to parse or has error-severity
diagnostics (no plan can be built), else 0.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import FtlSemanticsError, FtlSyntaxError
from repro.ftl.analysis.cost import CostModel
from repro.ftl.lint import strip_comments
from repro.ftl.parser import parse_query
from repro.ftl.query import FtlQuery


def explain_query(
    query: FtlQuery,
    order: bool = True,
    expand: bool = False,
    model: CostModel | None = None,
) -> dict:
    """Build the JSON explain report for one parsed query."""
    if expand:
        from repro.ftl.rewrite import expand as expand_formula

        query = FtlQuery(
            targets=query.targets,
            bindings=query.bindings,
            where=expand_formula(query.where),
        )
    analysis = query.analyze()
    report: dict = {
        "ok": analysis.ok,
        "targets": list(query.targets),
        "bindings": dict(query.bindings),
        "diagnostics": [d.to_json() for d in analysis.diagnostics],
    }
    if not analysis.ok:
        return report
    try:
        plan = query.plan_for(order=order, model=model)
    except FtlSemanticsError as exc:
        report["ok"] = False
        report["diagnostics"].append(
            {"code": "plan", "severity": "error", "message": str(exc)}
        )
        return report
    report["plan"] = plan.to_json()
    report["_render"] = plan.render()
    return report


def explain_file(
    path: str,
    order: bool = True,
    expand: bool = False,
    model: CostModel | None = None,
) -> dict:
    """Explain one query file; returns its JSON report."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        return {
            "file": path,
            "ok": False,
            "diagnostics": [
                {"code": "syntax", "severity": "error", "message": str(exc)}
            ],
        }
    try:
        query = parse_query(strip_comments(text))
    except (FtlSyntaxError, FtlSemanticsError) as exc:
        return {
            "file": path,
            "ok": False,
            "diagnostics": [
                {"code": "syntax", "severity": "error", "message": str(exc)}
            ],
        }
    report = explain_query(query, order=order, expand=expand, model=model)
    report["file"] = path
    return report


def _print_human(report: dict) -> None:
    print(f"== {report['file']} ==")
    if not report["ok"]:
        for diag in report["diagnostics"]:
            print(f"  error[{diag['code']}]: {diag['message']}")
        return
    bindings = ", ".join(
        f"{cls} {var}" for var, cls in report["bindings"].items()
    )
    print(f"RETRIEVE {', '.join(report['targets'])} FROM {bindings}")
    plan = report["plan"]
    total = plan["total"]
    print(
        f"plan: ~{total['tuples']:g} rows, cost {total['cost']:g}"
        + (", reordered" if plan["reordered"] else "")
        + (
            f", {plan['shared_subformulas']} shared subformula(s)"
            if plan["shared_subformulas"]
            else ""
        )
    )
    print(report["_render"])
    for diag in plan["diagnostics"]:
        print(f"  {diag['severity']}[{diag['code']}]: {diag['message']}")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.ftl.explain",
        description="Print the cost-annotated evaluation plan of FTL "
        "query files.",
    )
    parser.add_argument("files", nargs="+", help="FTL query files")
    parser.add_argument(
        "--json", action="store_true", help="emit one JSON report per file"
    )
    parser.add_argument(
        "--no-order",
        action="store_true",
        help="keep the syntactic operand order (skip the cost-based "
        "orderer)",
    )
    parser.add_argument(
        "--expand",
        action="store_true",
        help="rewrite derived temporal operators into Until/Nexttime "
        "form before planning",
    )
    parser.add_argument(
        "--class-size",
        type=int,
        default=None,
        metavar="N",
        help="assumed population per object class (default 8)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="N",
        help="assumed evaluation horizon in ticks (default 32)",
    )
    opts = parser.parse_args(argv)

    model = None
    if opts.class_size is not None or opts.horizon is not None:
        kwargs: dict = {}
        if opts.class_size is not None:
            kwargs["default_class_size"] = max(1, opts.class_size)
        if opts.horizon is not None:
            kwargs["horizon"] = max(0, opts.horizon)
        model = CostModel(**kwargs)

    status = 0
    reports = []
    for path in opts.files:
        report = explain_file(
            path, order=not opts.no_order, expand=opts.expand, model=model
        )
        reports.append(report)
        if not report["ok"]:
            status = 1

    if opts.json:
        for report in reports:
            report.pop("_render", None)
        print(json.dumps(reports, indent=2))
        return status

    for i, report in enumerate(reports):
        if i:
            print()
        _print_human(report)
    return status


if __name__ == "__main__":
    sys.exit(main())
