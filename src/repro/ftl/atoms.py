"""Accelerated atom evaluation: index pruning + a shared solve cache.

The appendix algorithm's base case enumerates the full cartesian product
of an atom's variable domains and runs one kinetic solve per
instantiation — ``O(n^2)`` closed-form solves for binary ``DIST``/
``WITHIN_SPHERE`` atoms even when almost no pair of objects ever comes
near each other inside the window.  This module supplies the two layers
that make the base case cheap (both on by default, see DESIGN.md §7):

**Layer 1 — conservative index pruning** (:class:`AtomIndexPruner`).
Per evaluation window, every FROM-bound object's piecewise-linear
trajectory is decomposed into per-leg spatial bounding boxes covering
``[ctx.start, ctx.end]`` and loaded into the existing R-tree
(:class:`~repro.index.rtree.RTree`).  ``INSIDE``/``OUTSIDE`` atoms probe
the region's bounding box, ``WITHIN_SPHERE``/``DIST``-comparison atoms
run an MBR self-join inflated by the radius.  An instantiation outside
the candidate set is *known* without any solve: the empty set for
``INSIDE``/``dist <= r``, the full window for ``OUTSIDE``/``dist >= r``.
Soundness follows from MBR over-approximation: satisfaction at any dense
time implies spatial overlap of the (inflated) boxes, so a non-candidate
can never satisfy the positive predicate.  Objects whose motion is
nonlinear or non-spatial are *unprunable* — always candidates — so the
solve path sees exactly the inputs (and raises exactly the errors) the
exhaustive path would.

**Layer 2 — shared kinetic-solve cache** (:class:`KineticSolveCache`).
A bounded memo table attached to the :class:`~repro.core.database.
MostDatabase` (``db.kinetic_cache``), keyed by the atom kind, its
canonical arguments, the *exact* evaluation window, and the
participating objects' frozen motion triples.  Repeated subformulas,
plan-ordered re-evaluations, the three evaluators, and continuous-query
refreshes after irrelevant updates all reuse solved interval sets.
Motion updates invalidate naturally: an explicit update produces a new
``(value, updatetime, function)`` triple, hence a new key.  Keys always
pin the exact window because the numeric fallback solvers sample a
window-dependent grid — reusing a clipped superset answer could differ
near the boundary.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from repro.errors import QueryError, SchemaError
from repro.ftl.ast import Compare, Dist, Formula, Inside, Outside, WithinSphere
from repro.ftl.relations import EMPTY_SET
from repro.geometry import Point
from repro.index.rtree import RTree
from repro.motion import batch
from repro.motion.moving import LinearPiece, MovingPoint
from repro.spatial.kinetic import paired_legs
from repro.spatial.polygon import Polygon
from repro.spatial.regions import Ball, Box
from repro.temporal import DISCRETE, IntervalSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.history import History
    from repro.ftl.context import Env, EvalContext

#: Default bound on cached solve entries (FIFO eviction beyond this).
DEFAULT_CACHE_ENTRIES = 8192

#: Comparison operators a DIST atom can be pruned under, and how each op
#: reads once the pair is known to stay strictly farther apart than the
#: bound for the whole window: ``True`` → the atom holds everywhere.
_DIST_OPS = {"<": False, "<=": False, ">": True, ">=": True}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class KineticSolveCache:
    """Bounded FIFO memo table of kinetic atom solves.

    Values are :class:`~repro.temporal.IntervalSet` answers exactly as
    the interval evaluator would have computed them (discretized and
    clipped to the window baked into the key), so a hit is
    indistinguishable — tuple-for-tuple — from a fresh solve.

    **Window-shifted reuse** (pass 8).  Exact-window keying makes a pure
    time advance — same motion triples, same horizon end, later start —
    a guaranteed miss.  When the evaluator *proves* an entry
    shift-reusable (the atom's validity horizon is non-bottom, i.e.
    every read trajectory is piecewise-linear and solved analytically,
    so the dense answer is window-independent and clipping commutes with
    discretization), it stamps the ``put`` with the solved window and
    the horizon's concrete expiry.  A later exact miss whose key differs
    *only* in the window may then be answered by clipping the stamped
    entry, provided the requested window is contained in the stored one
    and starts before the stamp expires.  Unstamped entries (numeric
    fallback solvers sample a window-dependent grid) never shift.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[object, IntervalSet]" = OrderedDict()
        #: Window-erased index of stamped entries: ``key[:1] + key[2:]``
        #: → (solved window, full key, validity expiry).
        self._stamped: "OrderedDict[object, tuple[tuple[float, float], object, float]]" = (
            OrderedDict()
        )
        #: Cumulative lookup stats across every evaluator sharing this
        #: cache (per-evaluator counts live on the evaluators).
        self.hits = 0
        self.misses = 0
        self.shift_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, key: object, record: bool = True
    ) -> IntervalSet | None:
        """The cached answer, or ``None``.  ``record=False`` probes
        without touching the hit/miss stats (oracle read-through)."""
        value = self._entries.get(key)
        if record:
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
        return value

    def put(
        self,
        key: object,
        value: IntervalSet,
        stamp: tuple[tuple[float, float], float] | None = None,
    ) -> None:
        """Store one solved answer, evicting FIFO beyond the bound.

        ``stamp`` is ``(solved_window, t_expire)``; only the evaluator
        passes it, and only when the atom's validity horizon proves the
        answer window-independent (see the class docstring).
        """
        entries = self._entries
        if key in entries:
            return
        entries[key] = value
        if stamp is not None and isinstance(key, tuple) and len(key) >= 2:
            window, expire = stamp
            self._stamped[key[:1] + key[2:]] = (window, key, expire)
            while len(self._stamped) > self.max_entries:
                self._stamped.popitem(last=False)
        while len(entries) > self.max_entries:
            entries.popitem(last=False)

    def shifted_get(self, key: object) -> IntervalSet | None:
        """Window-shifted reuse probe, tried after an exact miss.

        Answers from a stamped entry whose key differs only in the
        window, clipped to the requested window — exact because stamped
        answers are dense analytic solutions discretized per tick, so
        ``solve([s,e]).clip(s',e') == solve([s',e'])`` whenever
        ``[s',e'] ⊆ [s,e]`` and the motion triples (in the key) match.
        The stamp's expiry additionally ties reuse to the static
        validity horizon: a requested start at or beyond it refuses.
        """
        if not (isinstance(key, tuple) and len(key) >= 2):
            return None
        window = key[1]
        if not (isinstance(window, tuple) and len(window) == 2):
            return None
        entry = self._stamped.get(key[:1] + key[2:])
        if entry is None:
            return None
        stored_window, full_key, expire = entry
        lo, hi = stored_window
        req_lo, req_hi = window
        if not (lo <= req_lo and req_hi <= hi and req_lo < expire):
            return None
        value = self._entries.get(full_key)
        if value is None:
            return None  # the backing entry was evicted
        self.shift_hits += 1
        return value.clip(float(req_lo), float(req_hi))

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()
        self._stamped.clear()


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


class _SolveToken:
    """Hash-caching wrapper around a heavyweight token value.

    A solve key is hashed several times per candidate row (the
    ``_keyed`` hashability check, cache probes, pending-set bookkeeping,
    the final ``put``) and Python tuples re-hash their contents every
    time — for a 16-vertex polygon token that is the dominant cost of
    the whole key layer.  The wrapper computes the hash once; equality
    still compares the underlying values, so key semantics — including
    invalidation on region redefinition or motion update — are
    unchanged.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: object) -> None:
        self.value = value
        self._hash = hash(value)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _SolveToken):
            return self.value == other.value
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_SolveToken({self.value!r})"


def motion_token(history: "History", object_id: object) -> object | None:
    """A hashable token identifying an object's frozen motion state.

    The token is the tuple of position-axis ``(value, updatetime,
    function)`` triples — the exact inputs every kinetic solver reads —
    so two cache keys collide only when the solved trajectories are
    identical.  Returns ``None`` (uncacheable) for recorded histories
    (their trajectories splice the update log, not a frozen triple) and
    for objects without spatial attributes.
    """
    from repro.core.history import FutureHistory

    if not isinstance(history, FutureHistory):
        return None
    try:
        obj = history.db.get(object_id)
    except SchemaError:
        return None
    names = obj.object_class.position_attributes
    if not names:
        return None
    try:
        triples = tuple(
            history.dynamic_triple(object_id, attr) for attr in names
        )
    except QueryError:
        return None
    return triples


#: Memo of wrapped region tokens, keyed by region identity.  Regions are
#: immutable (``Ball`` is frozen, ``Polygon`` never mutates its
#: vertices) so a token can never go stale for a given object; distinct
#: objects with equal geometry still produce *equal* tokens, preserving
#: the name-independent key semantics.  Bounded and cleared wholesale —
#: correctness never depends on a memo hit.
_REGION_TOKENS: dict[int, tuple[object, "_SolveToken"]] = {}
_REGION_TOKEN_LIMIT = 256


def region_token(region: object) -> object | None:
    """A hashable token identifying a region's geometry (name-independent,
    so redefining a named region can never serve a stale answer)."""
    entry = _REGION_TOKENS.get(id(region))
    if entry is not None and entry[0] is region:
        return entry[1]
    if isinstance(region, Ball):
        raw: object = region
    elif isinstance(region, Polygon):
        raw = ("poly", region.vertices)
    else:
        return None
    token = _SolveToken(raw)
    if len(_REGION_TOKENS) >= _REGION_TOKEN_LIMIT:
        _REGION_TOKENS.clear()
    _REGION_TOKENS[id(region)] = (region, token)
    return token


def clear_region_tokens() -> None:
    """Drop the module-level region-token memo.

    A freshly forked shard worker inherits the parent's memo by memory
    copy; the entries are keyed by the *parent's* object identities and
    pin the parent's region objects alive in the child for no benefit.
    Workers clear the memo on startup and repopulate it against their own
    replica (see :func:`repro.parallel.worker.reset_worker_caches`).
    """
    _REGION_TOKENS.clear()


def _ctx_motion_token(
    ctx: "EvalContext", object_id: object
) -> "_SolveToken | None":
    """Per-context memo of wrapped motion tokens.  A context covers one
    evaluation of one frozen history — tokens cannot go stale within its
    lifetime — and the cached hash keeps per-row key construction cheap."""
    memo = ctx._motion_tokens
    if object_id in memo:
        return memo[object_id]
    raw = motion_token(ctx.history, object_id)
    token = None if raw is None else _SolveToken(raw)
    memo[object_id] = token
    return token


def _window(ctx: "EvalContext") -> tuple[int, int]:
    return (ctx.start, ctx.end)


def _keyed(parts: tuple) -> tuple | None:
    try:
        hash(parts)
    except TypeError:
        return None
    return parts


def region_solve_key(
    ctx: "EvalContext", region: object, object_id: object
) -> tuple | None:
    """Key of the *inside* interval set of one object vs one region
    (``OUTSIDE`` complements the cached answer on retrieval)."""
    rtok = region_token(region)
    mtok = _ctx_motion_token(ctx, object_id)
    if rtok is None or mtok is None:
        return None
    return _keyed(("region", _window(ctx), rtok, mtok))


def sphere_solve_key(
    ctx: "EvalContext", radius: float, object_ids: list[object]
) -> tuple | None:
    """Key of a ``WITHIN_SPHERE`` solve.  Object order is preserved (not
    sorted): the predicate is symmetric but the numeric solver need not
    be bit-for-bit order-independent, and structural equality with the
    exhaustive path matters more than a few extra entries."""
    tokens = []
    for oid in object_ids:
        tok = _ctx_motion_token(ctx, oid)
        if tok is None:
            return None
        tokens.append(tok)
    return _keyed(("sphere", _window(ctx), float(radius), tuple(tokens)))


def dist_solve_key(
    ctx: "EvalContext", op: str, bound: float, a: object, b: object
) -> tuple | None:
    """Key of a ``DIST(a, b) op bound`` fast-path solve."""
    ta = _ctx_motion_token(ctx, a)
    tb = _ctx_motion_token(ctx, b)
    if ta is None or tb is None:
        return None
    return _keyed(("dist", _window(ctx), op, float(bound), ta, tb))


def attr_solve_key(
    ctx: "EvalContext", op: str, bound: float, triple: object
) -> tuple | None:
    """Key of a linear dynamic-attribute range fast-path solve; the
    frozen triple itself is the motion token."""
    return _keyed(("attr", _window(ctx), op, float(bound), triple))


# ---------------------------------------------------------------------------
# Layer 1: the index pruner
# ---------------------------------------------------------------------------


class AtomIndexPruner:
    """Per-window trajectory MBR index answering atom candidate queries.

    Built lazily on first use from the evaluation context: every
    FROM-bound object's :meth:`~repro.motion.moving.MovingPoint.
    linear_pieces` over ``[ctx.start, ctx.end]`` become per-leg spatial
    bounding boxes in one R-tree per spatial dimensionality (time is not
    an index axis — :class:`~repro.geometry.Point` caps boxes at three
    coordinates — so candidate sets are window-wide, a strictly
    conservative coarsening).  Objects that cannot be indexed — nonlinear motion,
    no spatial attributes, empty window pieces — are *unprunable*:
    members of every candidate set, so the exact solve path handles them
    (and raises on them) exactly as the exhaustive evaluator would.
    """

    def __init__(self, ctx: "EvalContext") -> None:
        self.ctx = ctx
        self._built = False
        self._trees: dict[int, RTree] = {}
        self._boxes: dict[object, list[Box]] = {}
        self._by_dim: dict[int, set[object]] = {}
        self._dim: dict[object, int] = {}
        self._unprunable: set[object] = set()
        #: Unprunables whose exhaustive solve would *raise* (nonspatial,
        #: unknown id).  Pruning an instantiation containing one would
        #: swallow the error the exhaustive path reports, so gates refuse.
        self._raising: set[object] = set()
        self._region_cands: dict[object, frozenset] = {}
        self._pair_cands: dict[tuple, frozenset] = {}
        #: Largest |coordinate| indexed; inflation pads scale with it so
        #: the solvers' relative boundary tolerance can never out-reach
        #: the pruning boxes.
        self._scale = 1.0
        #: Objects plotted into the index (bench instrumentation).
        self.objects_indexed = 0

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _build(self) -> None:
        if self._built:
            return
        self._built = True
        ctx = self.ctx
        seen: set[object] = set()
        for var in ctx.bindings:
            for oid in ctx.domain(var):
                if oid in seen:
                    continue
                seen.add(oid)
                self._index_object(oid)

    def _index_object(self, oid: object) -> None:
        ctx = self.ctx
        try:
            mover = ctx.moving_point(oid)
            pieces = mover.linear_pieces(ctx.start, ctx.end)
        except (QueryError, SchemaError):
            self._unprunable.add(oid)
            self._raising.add(oid)
            return
        if pieces is None:  # nonlinear motion: solve exactly, always
            self._unprunable.add(oid)
            return
        dim = mover.dim
        tree = self._trees.get(dim)
        if tree is None:
            tree = self._trees[dim] = RTree()
            self._by_dim[dim] = set()
        boxes = []
        for piece in pieces:
            a = piece.origin
            b = piece.position_at(piece.end)
            bounds = [
                (min(x, y), max(x, y)) for x, y in zip(a, b)
            ]
            for lo, hi in bounds:
                self._scale = max(self._scale, abs(lo), abs(hi))
            box = Box.from_bounds(*bounds)
            boxes.append(box)
            tree.insert(box, oid)
        self._boxes[oid] = boxes
        self._dim[oid] = dim
        self._by_dim[dim].add(oid)
        self.objects_indexed += 1

    @property
    def _pad(self) -> float:
        """Extra inflation absorbing the solvers' boundary slack (which
        is relative to coordinate magnitude, see e.g. Ball.contains)."""
        return 1e-6 * (1.0 + self._scale)

    def _safe(self, oid: object) -> bool:
        """Whether the exhaustive solve path is guaranteed not to raise
        for this object (indexed, or unprunable for nonlinearity only)."""
        return oid in self._boxes or (
            oid in self._unprunable and oid not in self._raising
        )

    # ------------------------------------------------------------------
    # Candidate queries
    # ------------------------------------------------------------------
    def region_candidates(self, region: object) -> frozenset | None:
        """Objects that may intersect the region during the window, or
        ``None`` when the region's geometry cannot be boxed."""
        token = region_token(region)
        if token is None:
            return None
        hit = self._region_cands.get(token)
        if hit is not None:
            return hit
        self._build()
        pad = self._pad
        if isinstance(region, Polygon):
            min_x, min_y, max_x, max_y = region.bounding_box()
            bounds = [
                (min_x - pad, max_x + pad),
                (min_y - pad, max_y + pad),
            ]
            dim = 2
        else:  # Ball (region_token already filtered the rest)
            bounds = [
                (c - region.radius - pad, c + region.radius + pad)
                for c in region.center
            ]
            dim = region.dim
        cands = set(self._unprunable)
        for d, members in self._by_dim.items():
            if d == dim:
                cands.update(self._trees[d].search(Box.from_bounds(*bounds)))
            else:
                # Dimension mismatch: let the exact path raise/decide.
                cands.update(members)
        out = frozenset(cands)
        self._region_cands[token] = out
        return out

    def pair_candidates(self, oid: object, radius: float) -> frozenset | None:
        """Objects that may come within ``radius`` of ``oid`` at some
        time of the window (``oid`` itself included), or ``None`` when
        ``oid`` is unprunable (every object is then a candidate)."""
        self._build()
        boxes = self._boxes.get(oid)
        if boxes is None:
            return None
        key = (oid, float(radius))
        hit = self._pair_cands.get(key)
        if hit is not None:
            return hit
        dim = self._dim[oid]
        cands = set(self._unprunable)
        cands.add(oid)
        for d, members in self._by_dim.items():
            if d != dim:
                cands.update(members)
        tree = self._trees[dim]
        inflate = radius + self._pad
        for box in boxes:
            bounds = [
                (l - inflate, h + inflate)
                for l, h in zip(box.lo, box.hi)
            ]
            cands.update(tree.search(Box.from_bounds(*bounds)))
        out = frozenset(cands)
        self._pair_cands[key] = out
        return out

    # ------------------------------------------------------------------
    # The atom gate
    # ------------------------------------------------------------------
    def gate(
        self, f: Formula
    ) -> "Callable[[Env], IntervalSet | None] | None":
        """A per-instantiation gate for one atom, or ``None`` when the
        atom kind is not prunable.

        The gate maps an environment to the *known* answer (no solve
        needed) or ``None`` (run the solve path).  Known answers are
        structurally identical to what the solve path would produce:
        ``EMPTY_SET`` and the full discrete window span are exactly the
        shapes the discretize-and-clip pipeline emits.
        """
        ctx = self.ctx
        full = IntervalSet.span(ctx.start, ctx.end, DISCRETE)

        if isinstance(f, (Inside, Outside)):
            try:
                region = ctx.history.region(f.region)
            except SchemaError:
                return None  # let the solve path raise identically
            cands = self.region_candidates(region)
            if cands is None:
                return None
            miss = EMPTY_SET if isinstance(f, Inside) else full
            obj_term = f.obj

            def region_gate(env: "Env") -> IntervalSet | None:
                oid = ctx.eval_term(obj_term, env, ctx.start)
                # Only indexed objects may be pruned: an id the index has
                # never seen (assigned-variable value, unknown object)
                # must take the solve path, which decides — or raises —
                # exactly as the exhaustive evaluator would.
                if oid in cands or oid not in self._boxes:
                    return None
                return miss

            return region_gate

        if isinstance(f, WithinSphere):
            # All k points fit in a radius-r sphere only if every pair is
            # within 2r of each other at that moment — a necessary
            # condition, so one far pair kills the instantiation.
            diameter = 2.0 * float(f.radius)
            objs = f.objs

            def sphere_gate(env: "Env") -> IntervalSet | None:
                oids = [ctx.eval_term(o, env, ctx.start) for o in objs]
                self._build()
                # Any participant whose exhaustive solve would raise (or
                # that the index has never seen) forces the solve path.
                if not all(self._safe(o) for o in oids):
                    return None
                for i, a in enumerate(oids):
                    cands = self.pair_candidates(a, diameter)
                    if cands is None:
                        continue
                    for b in oids[i + 1 :]:
                        if b in self._boxes and b not in cands:
                            return EMPTY_SET
                return None

            return sphere_gate

        if isinstance(f, Compare):
            spec = self._dist_spec(f)
            if spec is None:
                return None
            dist_term, bound_term, op = spec
            holds_when_far = _DIST_OPS[op]

            def dist_gate(env: "Env") -> IntervalSet | None:
                bound = ctx.eval_term(bound_term, env, ctx.start)
                if not isinstance(bound, (int, float)) or bound < 0:
                    return None
                a = ctx.eval_term(dist_term.left, env, ctx.start)
                b = ctx.eval_term(dist_term.right, env, ctx.start)
                cands = self.pair_candidates(a, float(bound))
                if cands is None or b in cands or b not in self._boxes:
                    return None
                # Both indexed, disjoint after inflation: the pair stays
                # strictly farther than the bound for the whole window.
                return full if holds_when_far else EMPTY_SET

            return dist_gate

        return None

    def _dist_spec(
        self, f: Compare
    ) -> tuple[Dist, object, str] | None:
        """Normalise ``DIST(a, b) op bound`` with the distance on the
        left, mirroring the evaluator's fast path (plus strict ops,
        which prune identically)."""
        if f.op not in _DIST_OPS:
            return None
        ctx = self.ctx
        if isinstance(f.left, Dist) and ctx.term_invariant(f.right):
            return f.left, f.right, f.op
        if isinstance(f.right, Dist) and ctx.term_invariant(f.left):
            return f.right, f.left, _FLIP[f.op]
        return None


# ---------------------------------------------------------------------------
# Layer 3: batch submission of kinetic solves
# ---------------------------------------------------------------------------


class KineticBatch:
    """One atom's worth of kinetic solves, submitted as a batch.

    The interval evaluator queues each surviving instantiation's solve
    request here instead of solving it inline.  Requests whose motion is
    piecewise linear over the window become rows of the vectorized
    backend (:mod:`repro.motion.batch`): ``DIST`` comparisons,
    ``INSIDE``/``OUTSIDE`` of a ball, and two-object ``WITHIN_SPHERE``
    reduce to the quadratic kernel; polygon containment to the
    edge-crossing sweep.  Everything else — nonlinear motion, spheres
    over ``k != 2`` objects, dimension mismatches, negative radii — is
    rejected (:meth:`submit` returns ``None``) and the evaluator runs
    the scalar closure at submit time, preserving evaluation order and
    error behaviour exactly.

    Movers that cannot be resolved raise from :meth:`submit` itself,
    which the evaluator calls at the same product-order position where
    the scalar path would have run (and raised from) the solve closure.
    """

    def __init__(self, ctx: "EvalContext") -> None:
        self.ctx = ctx
        self._table = batch.LinearTable(ctx.start, ctx.end)
        #: oid -> ("single" | "multi", pieces) or (None, None) when the
        #: motion is not piecewise linear over the window.
        self._motions: dict[object, tuple] = {}
        self._centers: dict[Ball, list[LinearPiece]] = {}
        self._reference: list[LinearPiece] | None = None
        self._dist: batch.DistanceBatch | None = None
        self._polys: dict[object, batch.PolygonBatch] = {}
        self._solved: dict[int, list[IntervalSet]] = {}

    # ------------------------------------------------------------------
    # Motion classification
    # ------------------------------------------------------------------
    def _motion(self, oid: object) -> tuple:
        """``("single", [leg])``, ``("multi", pieces)``, or ``(None,
        None)`` for one object, memoized; raises exactly as
        ``ctx.moving_point`` would."""
        entry = self._motions.get(oid)
        if entry is None:
            mover = self.ctx.moving_point(oid)
            leg = mover.single_leg(self.ctx.start, self.ctx.end)
            if leg is not None:
                entry = ("single", [leg])
            else:
                pieces = mover.linear_pieces(self.ctx.start, self.ctx.end)
                entry = (
                    ("multi", pieces) if pieces is not None else (None, None)
                )
            self._motions[oid] = entry
        return entry

    def _ball_center(self, region: Ball) -> list[LinearPiece]:
        """The static ball-center mover's single leg (the same virtual
        ``MovingPoint(ball.center)`` the scalar solver pairs against)."""
        legs = self._centers.get(region)
        if legs is None:
            leg = MovingPoint(region.center).single_leg(
                self.ctx.start, self.ctx.end
            )
            assert leg is not None  # static motion is always one leg
            legs = self._centers[region] = [leg]
        return legs

    def _ref_pieces(self) -> list[LinearPiece]:
        """The polygon solver's static ``(0, 0)`` reference pieces."""
        if self._reference is None:
            pieces = MovingPoint(Point(0.0, 0.0)).linear_pieces(
                self.ctx.start, self.ctx.end
            )
            assert pieces is not None  # static motion is always linear
            self._reference = pieces
        return self._reference

    def _dist_batch(self) -> batch.DistanceBatch:
        if self._dist is None:
            self._dist = batch.DistanceBatch(self._table)
        return self._dist

    def _poly_batch(self, region: Polygon) -> batch.PolygonBatch:
        token = region_token(region)
        pb = self._polys.get(token)
        if pb is None:
            pb = self._polys[token] = batch.PolygonBatch(region, self._table)
        return pb

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, vec: tuple) -> tuple | None:
        """Queue one vectorizable solve, returning an opaque handle, or
        ``None`` when only the scalar closure applies."""
        kind = vec[0]
        if kind == "dist":
            return self._submit_dist(vec[1], vec[2], vec[3], vec[4])
        if kind == "region":
            return self._submit_region(vec[1], vec[2])
        if kind == "sphere":
            obj_ids, radius = vec[1], vec[2]
            if len(obj_ids) != 2 or radius < 0:
                return None
            # Two movers fit in a radius-r sphere exactly when they are
            # within 2r of each other — the scalar reduction.
            return self._submit_dist(
                obj_ids[0], obj_ids[1], 2 * radius, False
            )
        return None  # pragma: no cover - descriptor kinds are closed

    def _submit_dist(
        self, a: object, b: object, bound: float, at_least: bool
    ) -> tuple | None:
        ka, pa = self._motion(a)
        if ka is None:
            return None
        kb, pb = self._motion(b)
        if kb is None:
            return None
        if pa[0].origin.dim != pb[0].origin.dim:
            return None  # the scalar closure raises the mismatch error
        dist = self._dist_batch()
        if ka == "single" and kb == "single":
            row = dist.add_pair(
                self._table.add(a, pa[0]),
                self._table.add(b, pb[0]),
                bound,
                at_least,
            )
        else:
            legs = paired_legs(pa, pb, self.ctx.window)
            row = dist.add_legs(legs, bound, at_least)
        return (dist, row)

    def _submit_region(self, obj_id: object, region: object) -> tuple | None:
        if isinstance(region, Ball):
            if region.radius < 0:
                return None  # the scalar closure raises
            kind, pieces = self._motion(obj_id)
            if kind is None:
                return None
            center = self._ball_center(region)
            if pieces[0].origin.dim != center[0].origin.dim:
                return None
            dist = self._dist_batch()
            if kind == "single":
                row = dist.add_pair(
                    self._table.add(obj_id, pieces[0]),
                    self._table.add(("__ball_center__", region), center[0]),
                    region.radius,
                    False,
                )
            else:
                legs = paired_legs(pieces, center, self.ctx.window)
                row = dist.add_legs(legs, region.radius, False)
            return (dist, row)
        if isinstance(region, Polygon):
            kind, pieces = self._motion(obj_id)
            if kind is None:
                return None
            if pieces[0].origin.dim != 2:
                return None  # the scalar closure raises the 2-D error
            pb = self._poly_batch(region)
            if kind == "single":
                row = pb.add_slot(self._table.add(obj_id, pieces[0]))
            else:
                legs = paired_legs(pieces, self._ref_pieces(), self.ctx.window)
                row = pb.add_legs(legs)
            return (pb, row)
        return None  # unsupported region: the scalar closure raises

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def solve(self) -> None:
        """Run every queued batch through the vectorized kernels."""
        if self._dist is not None:
            self._solved[id(self._dist)] = self._dist.solve()
        for pb in self._polys.values():
            self._solved[id(pb)] = pb.solve()

    def result(self, handle: tuple) -> IntervalSet:
        """The solved answer for one :meth:`submit` handle."""
        queue, row = handle
        return self._solved[id(queue)][row]
