"""The appendix algorithm: bottom-up interval-relation evaluation.

"The algorithm computes R_g, inductively, for each subformula g in
increasing lengths of the subformula" — conjunction joins relations and
intersects intervals, ``Until`` merges compatible interval chains, and the
assignment quantifier joins against the relation ``Q`` of the atomic
query's values over time.

Extensions beyond the paper's appendix, all documented in DESIGN.md:

* the bounded operators of section 3.4 evaluate directly as interval-set
  transforms;
* disjunction and negation are supported when every free variable is
  enumerable (FROM-bound objects or assignment-bound values), which
  restores the safety the paper obtains by restricting to conjunctive
  formulas;
* base-case atoms use the kinetic solvers (exact for piecewise-linear
  motion) with a per-tick sampling fallback for arbitrary terms.
"""

from __future__ import annotations

import math
from itertools import product
from typing import TYPE_CHECKING, Callable, Mapping

from repro.errors import FtlSemanticsError
from repro.ftl.ast import (
    Always,
    AlwaysFor,
    AndF,
    Assign,
    Attr,
    Compare,
    Dist,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    Term,
    Until,
    UntilWithin,
    Var,
    WithinSphere,
)
from repro.ftl.atoms import (
    KineticBatch,
    attr_solve_key,
    dist_solve_key,
    region_solve_key,
    sphere_solve_key,
)
from repro.motion.batch import available as _batch_available
from repro.ftl.context import Env, EvalContext
from repro.ftl.relations import (
    EMPTY_SET,
    FtlRelation,
    Instantiation,
    merge_instantiations,
)
from repro.spatial.kinetic import (
    when_dist_at_least,
    when_dist_at_most,
    when_inside_ball,
    when_inside_polygon,
    when_value_in_range,
    when_within_sphere,
)
from repro.spatial.polygon import Polygon
from repro.spatial.regions import Ball
from repro.temporal import (
    DISCRETE,
    Interval,
    IntervalSet,
    always,
    always_for,
    eventually,
    eventually_after,
    eventually_within,
    nexttime,
    until,
    until_within,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.analysis.plan import EvalPlan

_CMP = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class _SolveRequest:
    """One instantiation's pending kinetic solve.

    ``solve`` is the scalar closure (exactly what the pre-batch evaluator
    ran); ``key`` its cache identity; ``post`` an optional transform of
    the cached value (OUTSIDE complements the stored *inside* set);
    ``vec`` the batch descriptor the :class:`~repro.ftl.atoms.
    KineticBatch` classifies, or ``None`` when only the scalar path
    applies.
    """

    __slots__ = ("key", "solve", "post", "vec")

    def __init__(
        self,
        key: object,
        solve: "Callable[[], IntervalSet]",
        post: "Callable[[IntervalSet], IntervalSet] | None" = None,
        vec: tuple | None = None,
    ) -> None:
        self.key = key
        self.solve = solve
        self.post = post
        self.vec = vec

    def finish(self, value: IntervalSet) -> IntervalSet:
        """The atom's answer given the solved (cache-shaped) value."""
        return value if self.post is None else self.post(value)


class IntervalEvaluator:
    """Bottom-up computation of ``R_g`` per subformula."""

    def __init__(
        self,
        ctx: EvalContext,
        analytic_atoms: bool = True,
        trace: dict[int, FtlRelation] | None = None,
        plan: "EvalPlan | None" = None,
        index_pruning: bool = True,
        solve_cache: bool = True,
        batch_solver: bool = True,
        validity: "Mapping[int, float] | None" = None,
    ) -> None:
        self.ctx = ctx
        #: When False, every atom is evaluated by per-tick sampling instead
        #: of the closed-form kinetic solvers — the ablation knob of
        #: benchmarks/bench_ablation_kinetic.py.
        self.analytic_atoms = analytic_atoms
        #: When given, every computed ``R_g`` is recorded here keyed by
        #: ``id(subformula)`` — the per-subformula cache that incremental
        #: continuous-query maintenance patches on later updates.
        self.trace = trace
        #: Cost-ordered evaluation plan; :meth:`evaluate` swaps the
        #: syntactic formula for the plan's reordered tree, and
        #: subformulas the plan marked shared are evaluated once.
        self.plan = plan
        #: Layer-1 acceleration (DESIGN.md §7): answer spatial atoms for
        #: instantiations outside the trajectory-MBR candidate sets with
        #: zero kinetic solves.  Active only with ``analytic_atoms``.
        self.index_pruning = index_pruning
        #: Layer-2 acceleration: reuse kinetic solves via the
        #: database-wide memo table keyed on frozen motion triples.
        self._solve_cache = ctx.solve_cache() if solve_cache else None
        #: Layer-3 acceleration (DESIGN.md §8): submit each atom's
        #: surviving instantiations to the vectorized kinetic backend as
        #: one batch instead of solving row-at-a-time.  Requires numpy;
        #: silently degrades to the scalar path without it.
        self.batch_solver = batch_solver
        #: Pass-8 concrete validity stamps, keyed by ``id(subformula)``
        #: over the evaluated (plan-ordered) tree: the absolute time at
        #: which each node's cached answer stops being provably
        #: reusable.  An atom with a stamp beyond ``ctx.start`` is
        #: provably piecewise-linear/analytic, so its solve-cache
        #: entries are stamped for window-shifted reuse across
        #: refreshes (see :class:`~repro.ftl.atoms.KineticSolveCache`).
        self.validity = validity
        self._shared_memo: dict[int, FtlRelation] = {}
        self._naive: "object | None" = None
        #: Count of per-tick atom evaluations (benchmark instrumentation).
        self.sampled_atom_evals = 0
        #: Count of kinetic (closed-form) atom solves.
        self.kinetic_solves = 0
        #: Instantiations answered by the index gate without a solve.
        self.pruned_instantiations = 0
        #: Solve-cache lookups served / missed by this evaluator.
        self.cache_hits = 0
        self.cache_misses = 0
        #: Exact misses answered by clipping a stamped entry solved for
        #: an earlier (containing) window — pass-8 shifted reuse.
        self.cache_shift_hits = 0
        #: Per-atom accounting keyed by ``id(formula)`` — feeds the
        #: estimate-vs-observed drift report of analysis/cost.py.
        self.atom_stats: dict[int, dict[str, object]] = {}

    def counters(self) -> dict[str, int]:
        """The atom-acceleration counters, in EXPLAIN ``--json`` shape."""
        return {
            "kinetic_solves": self.kinetic_solves,
            "sampled_atom_evals": self.sampled_atom_evals,
            "pruned_instantiations": self.pruned_instantiations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_shift_hits": self.cache_shift_hits,
        }

    # ------------------------------------------------------------------
    def evaluate(self, formula: Formula) -> FtlRelation:
        """Compute ``R_formula``."""
        if self.plan is not None:
            formula = self.plan.resolve(formula)
        return self._eval(formula)

    # ------------------------------------------------------------------
    def _eval(self, f: Formula) -> FtlRelation:
        shared = self.plan is not None and id(f) in self.plan.shared_ids
        if shared:
            hit = self._shared_memo.get(id(f))
            if hit is not None:
                return hit
        relation = self._eval_node(f)
        if shared:
            self._shared_memo[id(f)] = relation
        if self.trace is not None:
            self.trace[id(f)] = relation
        return relation

    def _eval_node(self, f: Formula) -> FtlRelation:
        if isinstance(f, (Compare, Inside, Outside, WithinSphere)):
            return self._atom(f)
        if isinstance(f, AndF):
            r1 = self._eval(f.left)
            if not r1 and self.trace is None:
                # Empty guard: the conjunction is empty whatever the right
                # side holds, so skip evaluating it entirely.  (With a
                # trace, every subformula's relation must be recorded for
                # incremental maintenance, so no short-circuit.)
                return FtlRelation(tuple(sorted(f.free_vars())))
            return self._conjunction(r1, self._eval(f.right))
        if isinstance(f, OrF):
            return self._disjunction(f)
        if isinstance(f, NotF):
            return self._negation(f)
        if isinstance(f, Until):
            return self._until_join(
                self._eval(f.left), self._eval(f.right), until
            )
        if isinstance(f, UntilWithin):
            bound = f.bound
            return self._until_join(
                self._eval(f.left),
                self._eval(f.right),
                lambda a, b: until_within(bound, a, b),
            )
        if isinstance(f, Nexttime):
            return self._eval(f.operand).map_sets(
                lambda s: nexttime(s, self.ctx.start)
            )
        if isinstance(f, Eventually):
            return self._eval(f.operand).map_sets(
                lambda s: eventually(s, self.ctx.start)
            )
        if isinstance(f, EventuallyWithin):
            return self._eval(f.operand).map_sets(
                lambda s: eventually_within(f.bound, s, self.ctx.start)
            )
        if isinstance(f, EventuallyAfter):
            return self._eval(f.operand).map_sets(
                lambda s: eventually_after(f.bound, s, self.ctx.start)
            )
        if isinstance(f, Always):
            return self._eval(f.operand).map_sets(
                lambda s: always(s, self.ctx.start, self.ctx.end)
            )
        if isinstance(f, AlwaysFor):
            return self._eval(f.operand).map_sets(
                lambda s: always_for(f.bound, s)
            )
        if isinstance(f, Assign):
            return self._assignment(f)
        at = f" at {f.span}" if f.span is not None else ""
        raise FtlSemanticsError(f"unsupported formula {type(f).__name__}{at}")

    # ------------------------------------------------------------------
    # Base case: atomic predicates
    # ------------------------------------------------------------------
    def _atom(self, f: Formula) -> FtlRelation:
        """The appendix base case: per relevant instantiation, the
        intervals during which the relation is satisfied."""
        free = sorted(f.free_vars())
        domains = [self.ctx.domain(v) for v in free]
        relation = FtlRelation(tuple(free))
        gate = self._atom_gate(f)
        stats = self._stats_for(f)
        if self._use_batch():
            return self._batched_rows(
                f, free, product(*domains), relation, gate, stats
            )
        for inst in product(*domains):
            env = dict(zip(free, inst))
            iset = self._gated_atom_intervals(f, env, gate, stats)
            relation.set(inst, iset)
        return relation

    def _use_batch(self) -> bool:
        """Whether atoms go through the batch kinetic backend.

        Zero-length windows stay scalar: their degenerate zero-velocity
        leg is synthesized inside the scalar pairing fallback, which the
        coefficient extraction intentionally does not reproduce."""
        return (
            self.batch_solver
            and self.analytic_atoms
            and self.ctx.start < self.ctx.end
            and _batch_available()
        )

    def _batched_rows(
        self,
        f: Formula,
        free: list[str],
        insts,
        relation: FtlRelation,
        gate,
        stats: dict[str, object],
    ) -> FtlRelation:
        """The batch path of the atom base case (DESIGN.md §8).

        Three phases: classify every instantiation in product order
        (running gates, eager term evaluation, cache lookups, and scalar
        fallbacks exactly where the row-at-a-time path would), solve the
        queued rows through the vectorized backend, then fan the results
        back into the cache and the relation in the original row order —
        so the relation, the counters, and the cache contents match the
        scalar path tuple-for-tuple.
        """
        cache = self._solve_cache
        stamp = self._stamp_for(f)
        kbatch = KineticBatch(self.ctx)
        ordered: list[tuple] = []
        results: list[IntervalSet | None] = []
        queued: list[tuple[int, _SolveRequest, tuple]] = []
        deferred: list[tuple[int, _SolveRequest]] = []
        pending: set = set()  # keys whose producing row is still queued
        for inst in insts:
            env = dict(zip(free, inst))
            ordered.append(tuple(inst))
            stats["instantiations"] += 1
            if gate is not None:
                known = gate(env)
                if known is not None:
                    self.pruned_instantiations += 1
                    stats["pruned"] += 1
                    results.append(known)
                    continue
            solves0 = self.kinetic_solves
            hits0 = self.cache_hits
            req = self._atom_request(f, env)
            stats["solves"] += self.kinetic_solves - solves0
            stats["cache_hits"] += self.cache_hits - hits0
            if isinstance(req, IntervalSet):
                results.append(req)
                continue
            key = req.key
            cacheable = cache is not None and key is not None
            if cacheable:
                if key in pending:
                    # A queued row already produces this key; read it
                    # back in phase 3 (the scalar path's cache hit).
                    deferred.append((len(results), req))
                    results.append(None)
                    continue
                hit = cache.get(key)
                if hit is not None:
                    self.cache_hits += 1
                    stats["cache_hits"] += 1
                    results.append(req.finish(hit))
                    continue
                if self.validity is not None:
                    shifted = cache.shifted_get(key)
                    if shifted is not None:
                        self.cache_shift_hits += 1
                        cache.put(key, shifted, stamp)
                        results.append(req.finish(shifted))
                        continue
                self.cache_misses += 1
            self.kinetic_solves += 1
            stats["solves"] += 1
            handle = kbatch.submit(req.vec) if req.vec is not None else None
            if handle is None:  # not vectorizable: solve inline, as scalar
                value = req.solve()
                if cacheable:
                    cache.put(key, value, stamp)
                results.append(req.finish(value))
                continue
            if cacheable:
                pending.add(key)
            queued.append((len(results), req, handle))
            results.append(None)
        kbatch.solve()
        for idx, req, handle in queued:
            value = kbatch.result(handle)
            if cache is not None and req.key is not None:
                cache.put(req.key, value, stamp)
            results[idx] = req.finish(value)
        for idx, req in deferred:
            hit = cache.get(req.key)  # records the hit, as scalar would
            if hit is None:  # evicted mid-batch: re-solve row-at-a-time
                self.cache_misses += 1
                self.kinetic_solves += 1
                stats["solves"] += 1
                hit = req.solve()
                cache.put(req.key, hit, stamp)
            else:
                self.cache_hits += 1
                stats["cache_hits"] += 1
            results[idx] = req.finish(hit)
        for inst, iset in zip(ordered, results):
            if iset is None:  # pragma: no cover - every row is filled
                raise FtlSemanticsError("batch solve left a row unfilled")
            relation.set(inst, iset)
        return relation

    def _atom_gate(self, f: Formula):
        """The index-pruning gate for one atom, or ``None``.

        Pruning is a refinement of the kinetic path, so it obeys the
        ``analytic_atoms`` ablation knob: with sampling forced, atoms
        must actually sample."""
        if not (self.analytic_atoms and self.index_pruning):
            return None
        return self.ctx.atom_pruner().gate(f)

    def _stats_for(self, f: Formula) -> dict[str, object]:
        stats = self.atom_stats.get(id(f))
        if stats is None:
            stats = self.atom_stats[id(f)] = {
                "formula": f,
                "instantiations": 0,
                "pruned": 0,
                "solves": 0,
                "cache_hits": 0,
            }
        return stats

    def _gated_atom_intervals(
        self, f: Formula, env: Env, gate, stats: dict[str, object]
    ) -> IntervalSet:
        """One instantiation of an atom: index gate first, then the exact
        path, with the per-atom accounting around both."""
        stats["instantiations"] += 1
        if gate is not None:
            known = gate(env)
            if known is not None:
                self.pruned_instantiations += 1
                stats["pruned"] += 1
                return known
        solves0 = self.kinetic_solves
        hits0 = self.cache_hits
        iset = self._atom_intervals(f, env)
        stats["solves"] += self.kinetic_solves - solves0
        stats["cache_hits"] += self.cache_hits - hits0
        return iset

    def _stamp_for(
        self, f: Formula
    ) -> tuple[tuple[float, float], float] | None:
        """The pass-8 cache stamp for one atom, or ``None``.

        A stamp exists only when the atom's concrete validity expiry
        lies strictly beyond the window start — which (by construction
        of :func:`~repro.ftl.analysis.validity.class_motion_events`)
        proves every trajectory the atom reads is piecewise-linear, so
        its solves are analytic and window-shift reuse is exact.
        """
        if self.validity is None:
            return None
        expire = self.validity.get(id(f))
        if expire is None or expire <= self.ctx.start:
            return None
        return ((self.ctx.start, self.ctx.end), expire)

    def _cached_solve(
        self,
        key,
        solve: "Callable[[], IntervalSet]",
        stamp: tuple[tuple[float, float], float] | None = None,
    ) -> IntervalSet:
        """Run one kinetic solve through the shared memo table."""
        cache = self._solve_cache
        if cache is None or key is None:
            self.kinetic_solves += 1
            return solve()
        hit = cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            return hit
        if self.validity is not None:
            shifted = cache.shifted_get(key)
            if shifted is not None:
                self.cache_shift_hits += 1
                cache.put(key, shifted, stamp)
                return shifted
        self.cache_misses += 1
        self.kinetic_solves += 1
        result = solve()
        cache.put(key, result, stamp)
        return result

    def _atom_intervals(self, f: Formula, env: Env) -> IntervalSet:
        req = self._atom_request(f, env)
        if isinstance(req, IntervalSet):
            return req
        return req.finish(
            self._cached_solve(req.key, req.solve, self._stamp_for(f))
        )

    def _atom_request(
        self, f: Formula, env: Env
    ) -> "IntervalSet | _SolveRequest":
        """One instantiation's answer, or its pending kinetic solve.

        Immediate answers (sampled atoms, invariant comparisons, the
        attribute fast path, per-tick fallbacks) come back as interval
        sets; the kinetic atom kinds come back as requests so the batch
        path can queue them — the scalar path solves them inline.
        """
        ctx = self.ctx
        window = ctx.window

        if not self.analytic_atoms and not isinstance(f, Compare):
            return self._sampled_atom(f, env)

        if isinstance(f, Inside) or isinstance(f, Outside):
            obj_id = ctx.eval_term(f.obj, env, ctx.start)
            region = ctx.history.region(f.region)

            def solve_region() -> IntervalSet:
                mover = ctx.moving_point(obj_id)
                if isinstance(region, Polygon):
                    dense = when_inside_polygon(mover, region, window)
                elif isinstance(region, Ball):
                    dense = when_inside_ball(mover, region, window)
                else:  # pragma: no cover - region types are closed
                    raise FtlSemanticsError(f"unsupported region {region!r}")
                return dense.discretized().clip(ctx.start, ctx.end)

            # Cache the *inside* set; OUTSIDE complements on retrieval so
            # both atom polarities share one solve.
            post: "Callable[[IntervalSet], IntervalSet] | None" = None
            if isinstance(f, Outside):
                start, end = ctx.start, ctx.end

                def complement_inside(inside_set: IntervalSet) -> IntervalSet:
                    return inside_set.complement(Interval(start, end))

                post = complement_inside
            return _SolveRequest(
                region_solve_key(ctx, region, obj_id),
                solve_region,
                post,
                ("region", obj_id, region),
            )

        if isinstance(f, WithinSphere):
            obj_ids = [ctx.eval_term(o, env, ctx.start) for o in f.objs]

            def solve_sphere() -> IntervalSet:
                movers = [ctx.moving_point(oid) for oid in obj_ids]
                dense = when_within_sphere(f.radius, movers, window)
                return dense.discretized().clip(ctx.start, ctx.end)

            return _SolveRequest(
                sphere_solve_key(ctx, f.radius, obj_ids),
                solve_sphere,
                None,
                ("sphere", obj_ids, f.radius),
            )

        if isinstance(f, Compare):
            return self._compare_request(f, env)

        raise FtlSemanticsError(f"not an atom: {f!r}")

    def _sampled_atom(self, f: Formula, env: Env) -> IntervalSet:
        """Per-tick evaluation of a spatial atom (ablation path)."""
        from repro.ftl.naive import NaiveEvaluator

        ctx = self.ctx
        naive = self._naive
        if naive is None:  # hoisted: one oracle per evaluation, not per atom
            naive = self._naive = NaiveEvaluator(ctx)
        flags = []
        for t in ctx.ticks():
            self.sampled_atom_evals += 1
            flags.append(naive.satisfied(f, env, t))
        return IntervalSet.from_boolean_samples(flags, DISCRETE, ctx.start)

    def _compare_request(
        self, f: Compare, env: Env
    ) -> "IntervalSet | _SolveRequest":
        ctx = self.ctx
        left_inv = ctx.term_invariant(f.left)
        right_inv = ctx.term_invariant(f.right)

        # Both sides constant along the history: evaluate once.
        if left_inv and right_inv:
            lhs = ctx.eval_term(f.left, env, ctx.start)
            rhs = ctx.eval_term(f.right, env, ctx.start)
            if lhs is not None and rhs is not None and _CMP[f.op](lhs, rhs):
                return IntervalSet.span(ctx.start, ctx.end, DISCRETE)
            return EMPTY_SET

        if self.analytic_atoms:
            # Fast path: DIST(o1, o2) <= / >= constant (the airport query).
            req = self._dist_request(f, env, left_inv, right_inv)
            if req is not None:
                return req

            # Fast path: linear dynamic attribute vs constant.
            fast = self._attr_fast_path(f, env, left_inv, right_inv)
            if fast is not None:
                return fast

        # General fallback: evaluate per tick (exact under the discrete
        # per-tick semantics of section 2.2).
        flags = []
        for t in ctx.ticks():
            self.sampled_atom_evals += 1
            lhs = ctx.eval_term(f.left, env, t)
            rhs = ctx.eval_term(f.right, env, t)
            flags.append(
                lhs is not None and rhs is not None and _CMP[f.op](lhs, rhs)
            )
        return IntervalSet.from_boolean_samples(flags, DISCRETE, ctx.start)

    def _dist_request(
        self, f: Compare, env: Env, left_inv: bool, right_inv: bool
    ) -> "_SolveRequest | None":
        ctx = self.ctx
        if isinstance(f.left, Dist) and right_inv and f.op in ("<=", ">="):
            dist_term, bound_term, op = f.left, f.right, f.op
        elif isinstance(f.right, Dist) and left_inv and f.op in ("<=", ">="):
            dist_term, bound_term = f.right, f.left
            op = {"<=": ">=", ">=": "<="}[f.op]
        else:
            return None
        bound = ctx.eval_term(bound_term, env, ctx.start)
        if not isinstance(bound, (int, float)) or bound < 0:
            return None
        a = ctx.eval_term(dist_term.left, env, ctx.start)
        b = ctx.eval_term(dist_term.right, env, ctx.start)

        def solve_dist() -> IntervalSet:
            m1 = ctx.moving_point(a)
            m2 = ctx.moving_point(b)
            if op == "<=":
                dense = when_dist_at_most(m1, m2, float(bound), ctx.window)
            else:
                dense = when_dist_at_least(m1, m2, float(bound), ctx.window)
            return dense.discretized().clip(ctx.start, ctx.end)

        return _SolveRequest(
            dist_solve_key(ctx, op, float(bound), a, b),
            solve_dist,
            None,
            ("dist", a, b, float(bound), op == ">="),
        )

    def _attr_fast_path(
        self, f: Compare, env: Env, left_inv: bool, right_inv: bool
    ) -> IntervalSet | None:
        ctx = self.ctx
        if self._is_linear_dynamic_attr(f.left, env) and right_inv and f.op in ("<=", ">="):
            attr_term, bound_term, op = f.left, f.right, f.op
        elif self._is_linear_dynamic_attr(f.right, env) and left_inv and f.op in ("<=", ">="):
            attr_term, bound_term = f.right, f.left
            op = {"<=": ">=", ">=": "<="}[f.op]
        else:
            return None
        bound = ctx.eval_term(bound_term, env, ctx.start)
        if not isinstance(bound, (int, float)):
            return None
        obj_id = ctx.eval_term(attr_term.obj, env, ctx.start)
        triple = ctx.history.dynamic_triple(obj_id, attr_term.attr)

        def solve_attr() -> IntervalSet:
            if op == "<=":
                lo, hi = -math.inf, float(bound)
            else:
                lo, hi = float(bound), math.inf
            # when_value_in_range needs finite bounds on the active side
            # only; replace the infinite side by a huge sentinel beyond any
            # value the window can reach.
            span = abs(triple.value) + (abs(triple.speed) + 1) * (
                ctx.end - triple.updatetime + 1
            )
            sentinel = max(1e12, span * 10)
            dense = when_value_in_range(
                triple.value,
                triple.function,
                max(lo, -sentinel),
                min(hi, sentinel),
                ctx.window,
                anchor_time=triple.updatetime,
            )
            return dense.discretized().clip(ctx.start, ctx.end)

        return self._cached_solve(
            attr_solve_key(ctx, op, float(bound), triple), solve_attr
        )

    def _is_linear_dynamic_attr(self, term: Term, env: Env) -> bool:
        from repro.core.history import FutureHistory

        if not isinstance(term, Attr) or not isinstance(term.obj, Var):
            return False
        if not isinstance(self.ctx.history, FutureHistory):
            return False
        var = term.obj.name
        if var not in self.ctx.bindings:
            return False
        cls = self.ctx.history.db.object_class(self.ctx.bindings[var])
        if not cls.is_dynamic(term.attr):
            return False
        obj_id = env.get(var)
        if obj_id is None:
            return False
        triple = self.ctx.history.dynamic_triple(obj_id, term.attr)
        return triple.function.is_linear

    # ------------------------------------------------------------------
    # Connectives
    # ------------------------------------------------------------------
    def _conjunction(self, r1: FtlRelation, r2: FtlRelation) -> FtlRelation:
        """The appendix's conjunction join: match on common variables,
        intersect the intervals."""
        shared = [v for v in r1.variables if v in r2.variables]
        out_vars = tuple(
            sorted(set(r1.variables) | set(r2.variables))
        )
        out = FtlRelation(out_vars)
        idx2 = [r2.index_of(v) for v in shared]
        buckets: dict[tuple, list[tuple[Instantiation, IntervalSet]]] = {}
        for inst2, set2 in r2.rows():
            key = tuple(inst2[i] for i in idx2)
            buckets.setdefault(key, []).append((inst2, set2))
        idx1 = [r1.index_of(v) for v in shared]
        for inst1, set1 in r1.rows():
            key = tuple(inst1[i] for i in idx1)
            for inst2, set2 in buckets.get(key, ()):
                overlap = set1.intersection(set2)
                if not overlap.is_empty:
                    merged = merge_instantiations(
                        out_vars, r1.variables, inst1, r2.variables, inst2
                    )
                    out.add(merged, overlap)
        return out

    def _until_join(
        self,
        r1: FtlRelation,
        r2: FtlRelation,
        combine: Callable[[IntervalSet, IntervalSet], IntervalSet],
    ) -> FtlRelation:
        """The appendix's Until join.

        ``g1 Until g2`` holds wherever ``g2`` holds even if ``g1`` never
        does, so the join is outer on the ``g1`` side: variables of ``g1``
        missing from ``g2`` are enumerated over their domains with an
        empty ``g1`` interval set as the default.
        """
        shared = [v for v in r1.variables if v in r2.variables]
        extra1 = [v for v in r1.variables if v not in r2.variables]
        out_vars = tuple(sorted(set(r1.variables) | set(r2.variables)))
        out = FtlRelation(out_vars)
        extra_domains = [self.ctx.domain(v) for v in extra1]
        idx1_shared = [r1.index_of(v) for v in shared]
        idx1_extra = [r1.index_of(v) for v in extra1]
        idx2_shared = [r2.index_of(v) for v in shared]

        # Group r1 rows by shared values for the probe.
        groups: dict[tuple, dict[tuple, IntervalSet]] = {}
        for inst1, set1 in r1.rows():
            key = tuple(inst1[i] for i in idx1_shared)
            extra = tuple(inst1[i] for i in idx1_extra)
            groups.setdefault(key, {})[extra] = set1

        for inst2, set2 in r2.rows():
            key = tuple(inst2[i] for i in idx2_shared)
            group = groups.get(key, {})
            for extra in product(*extra_domains):
                set1 = group.get(tuple(extra), EMPTY_SET)
                result = combine(set1, set2)
                if result.is_empty:
                    continue
                inst1_like = self._compose(
                    r1.variables, shared, key, extra1, extra
                )
                merged = merge_instantiations(
                    out_vars, r1.variables, inst1_like, r2.variables, inst2
                )
                out.add(merged, result)
        return out

    @staticmethod
    def _compose(
        variables: tuple[str, ...],
        shared: list[str],
        shared_vals: tuple,
        extra: list[str],
        extra_vals: tuple,
    ) -> Instantiation:
        lookup = dict(zip(shared, shared_vals))
        lookup.update(zip(extra, extra_vals))
        return tuple(lookup[v] for v in variables)

    def _disjunction(self, f: OrF) -> FtlRelation:
        """Safe disjunction: enumerate the union variable set."""
        r1, r2 = self._eval(f.left), self._eval(f.right)
        out_vars = tuple(sorted(set(r1.variables) | set(r2.variables)))
        out = FtlRelation(out_vars)
        idx1 = [out_vars.index(v) for v in r1.variables]
        idx2 = [out_vars.index(v) for v in r2.variables]
        domains = [self.ctx.domain(v) for v in out_vars]
        for inst in product(*domains):
            s1 = r1.get(tuple(inst[i] for i in idx1))
            s2 = r2.get(tuple(inst[i] for i in idx2))
            combined = s1.union(s2)
            if not combined.is_empty:
                out.set(tuple(inst), combined)
        return out

    def _negation(self, f: NotF) -> FtlRelation:
        """Safe negation: complement within the window over the enumerable
        domain product (the paper excludes negation for safety; enumerable
        domains restore it)."""
        inner = self._eval(f.operand)
        bound = Interval(self.ctx.start, self.ctx.end)
        out = FtlRelation(inner.variables)
        domains = [self.ctx.domain(v) for v in inner.variables]
        for inst in product(*domains):
            out.set(tuple(inst), inner.get(tuple(inst)).complement(bound))
        return out

    # ------------------------------------------------------------------
    # Assignment quantifier
    # ------------------------------------------------------------------
    def _assignment(self, f: Assign) -> FtlRelation:
        """The appendix's ``[y := q] g`` case: compute the relation ``Q``
        of the atomic query's values over time, evaluate the body with the
        assigned variable ranging over the observed values, then join on
        ``body.y == Q.value`` with interval intersection."""
        ctx = self.ctx
        term_vars = sorted(f.term.free_vars())
        q_rows = self._term_timeline_relation(f.term, term_vars)

        values = sorted(
            {value for _inst, value, _iset in q_rows},
            key=lambda v: (str(type(v)), str(v)),
        )
        ctx.push_domain(f.var, list(values))
        try:
            body = self._eval(f.body)
        finally:
            ctx.pop_domain(f.var)

        # Join: shared object variables must agree, the body's var column
        # must equal the Q value, intervals intersect; project the var out.
        body_has_var = f.var in body.variables
        body_vars_wo = tuple(v for v in body.variables if v != f.var)
        out_vars = tuple(sorted(set(body_vars_wo) | set(term_vars)))
        out = FtlRelation(out_vars)
        shared = [v for v in body_vars_wo if v in term_vars]
        idx_body_shared = [body.variables.index(v) for v in shared]
        idx_q_shared = [term_vars.index(v) for v in shared]
        var_idx = body.variables.index(f.var) if body_has_var else None

        buckets: dict[tuple, list[tuple[Instantiation, IntervalSet]]] = {}
        for inst_b, set_b in body.rows():
            key = tuple(inst_b[i] for i in idx_body_shared)
            buckets.setdefault(key, []).append((inst_b, set_b))

        for inst_q, value, q_set in q_rows:
            key = tuple(inst_q[i] for i in idx_q_shared)
            for inst_b, set_b in buckets.get(key, ()):
                if var_idx is not None and inst_b[var_idx] != value:
                    continue
                overlap = set_b.intersection(q_set)
                if overlap.is_empty:
                    continue
                body_wo = tuple(
                    v
                    for i, v in enumerate(inst_b)
                    if body.variables[i] != f.var
                )
                merged = merge_instantiations(
                    out_vars,
                    body_vars_wo,
                    body_wo,
                    tuple(term_vars),
                    tuple(inst_q),
                )
                out.add(merged, overlap)
        return out

    def _term_timeline_relation(
        self, term: Term, term_vars: list[str]
    ) -> list[tuple[Instantiation, object, IntervalSet]]:
        """The appendix's ``Q`` relation: per instantiation of the term's
        free variables, ``(value, interval)`` runs over the window."""
        ctx = self.ctx
        domains = [ctx.domain(v) for v in term_vars]
        rows: list[tuple[Instantiation, object, IntervalSet]] = []
        full = IntervalSet.span(ctx.start, ctx.end, DISCRETE)
        for inst in product(*domains):
            env = dict(zip(term_vars, inst))
            if ctx.term_invariant(term):
                value = ctx.eval_term(term, env, ctx.start)
                rows.append((tuple(inst), value, full))
                continue
            # Per-tick runs of equal values.
            run_value: object = None
            run_start: int | None = None
            for t in ctx.ticks():
                self.sampled_atom_evals += 1
                value = ctx.eval_term(term, env, t)
                if run_start is None:
                    run_value, run_start = value, t
                elif value != run_value:
                    rows.append(
                        (
                            tuple(inst),
                            run_value,
                            IntervalSet.span(run_start, t - 1, DISCRETE),
                        )
                    )
                    run_value, run_start = value, t
            if run_start is not None:
                rows.append(
                    (
                        tuple(inst),
                        run_value,
                        IntervalSet.span(run_start, ctx.end, DISCRETE),
                    )
                )
        return rows
