"""Evaluation context shared by the two FTL evaluators.

Carries the history being queried, the evaluation window (the start tick
and the expiration horizon of section 2.3), the FROM-clause variable
bindings, and — during evaluation of an assignment quantifier's body — the
candidate value domains of assigned variables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import FtlSemanticsError
from repro.ftl.ast import (
    Arith,
    Attr,
    Const,
    Dist,
    SubAttr,
    Term,
    TimeTerm,
    Var,
)
from repro.temporal import Interval

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.history import History
    from repro.ftl.atoms import AtomIndexPruner, KineticSolveCache
    from repro.motion.moving import MovingPoint

Env = dict[str, object]


class EvalContext:
    """Window + bindings + variable domains for one evaluation."""

    def __init__(
        self,
        history: "History",
        horizon: int,
        bindings: dict[str, str],
        domain_restrictions: dict[str, list[object]] | None = None,
    ) -> None:
        if horizon < 0:
            raise FtlSemanticsError("horizon must be non-negative")
        self.history = history
        self.start = int(history.start)
        self.horizon = int(horizon)
        self.bindings = dict(bindings)
        self._domains: dict[str, list[object]] = {
            var: history.object_ids(cls) for var, cls in bindings.items()
        }
        if domain_restrictions:
            for var, values in domain_restrictions.items():
                full = set(self.domain(var))
                bad = [v for v in values if v not in full]
                if bad:
                    raise FtlSemanticsError(
                        f"domain restriction for {var!r} names values "
                        f"outside the class population: {bad[:3]!r}"
                    )
                self._domains[var] = list(values)
        self._movers: dict[object, "MovingPoint"] = {}
        self._motion_tokens: dict[object, object] = {}
        self._pruner: "AtomIndexPruner | None" = None

    # ------------------------------------------------------------------
    def reset_memos(self) -> None:
        """Drop the per-context mover/motion-token memos and the lazy
        atom-index pruner.

        The memos hold references into the parent process's object graph;
        a context shipped to (or inherited by, under ``fork``) a worker
        process must rebuild them against its own database replica rather
        than trust another address space's snapshots.
        """
        self._movers.clear()
        self._motion_tokens.clear()
        self._pruner = None

    # ------------------------------------------------------------------
    def moving_point(self, object_id: object) -> "MovingPoint":
        """Memoized :meth:`History.moving_point` — the underlying lookup
        rebuilds a snapshot object per call, and atom evaluation asks for
        the same movers once per instantiation."""
        mover = self._movers.get(object_id)
        if mover is None:
            mover = self.history.moving_point(object_id)
            self._movers[object_id] = mover
        return mover

    def atom_pruner(self) -> "AtomIndexPruner":
        """The per-window trajectory MBR index, built lazily and shared
        by every evaluator running on this context."""
        if self._pruner is None:
            from repro.ftl.atoms import AtomIndexPruner

            self._pruner = AtomIndexPruner(self)
        return self._pruner

    def solve_cache(self) -> "KineticSolveCache | None":
        """The database-wide kinetic-solve memo table, or ``None`` when
        the history's database does not carry one."""
        db = getattr(self.history, "db", None)
        if db is None:
            return None
        return getattr(db, "kinetic_cache", None)

    # ------------------------------------------------------------------
    @property
    def end(self) -> int:
        """Last tick of the evaluation window."""
        return self.start + self.horizon

    @property
    def window(self) -> Interval:
        """The dense window handed to the kinetic solvers."""
        return Interval(self.start, self.end)

    def ticks(self) -> range:
        """All ticks of the window."""
        return range(self.start, self.end + 1)

    # ------------------------------------------------------------------
    # Variable domains
    # ------------------------------------------------------------------
    def domain(self, var: str) -> list[object]:
        """Candidate values for a variable (object ids for FROM-bound
        variables, observed term values for assigned ones)."""
        try:
            return self._domains[var]
        except KeyError:
            raise FtlSemanticsError(
                f"variable {var!r} has no domain (not bound by FROM or an "
                "enclosing assignment quantifier)"
            ) from None

    def is_object_var(self, var: str) -> bool:
        """Whether the variable is FROM-bound (ranges over objects)."""
        return var in self.bindings

    def split_domain(
        self, var: str, dirty_values: frozenset | set
    ) -> tuple[list[object], list[object]]:
        """Partition a variable's domain into ``(clean, dirty)`` by
        membership in ``dirty_values``, preserving domain order.

        Used by incremental continuous-query maintenance to enumerate only
        the instantiations whose objects were explicitly updated.
        """
        clean: list[object] = []
        dirty: list[object] = []
        for value in self.domain(var):
            (dirty if value in dirty_values else clean).append(value)
        return clean, dirty

    def push_domain(self, var: str, values: list[object]) -> None:
        """Introduce an assigned variable's candidate values."""
        if var in self._domains:
            raise FtlSemanticsError(f"variable {var!r} shadowed")
        self._domains[var] = values

    def pop_domain(self, var: str) -> None:
        """Remove an assigned variable's domain."""
        self._domains.pop(var, None)

    # ------------------------------------------------------------------
    # Term evaluation (per state — shared by both evaluators)
    # ------------------------------------------------------------------
    def eval_term(self, term: Term, env: Env, t: float) -> object:
        """Value of a term in the state with time stamp ``t`` under the
        variable evaluation ``env``."""
        if isinstance(term, Const):
            return term.value
        if isinstance(term, TimeTerm):
            return t
        if isinstance(term, Var):
            try:
                return env[term.name]
            except KeyError:
                raise FtlSemanticsError(
                    f"unbound variable {term.name!r}"
                ) from None
        if isinstance(term, Attr):
            obj_id = self.eval_term(term.obj, env, t)
            return self.history.value(obj_id, term.attr, t)
        if isinstance(term, SubAttr):
            obj_id = self.eval_term(term.obj, env, t)
            triple = self._triple_at(obj_id, term.attr, t)
            if term.sub == "function":
                return triple.speed
            return triple.sub_attribute(term.sub)
        if isinstance(term, Dist):
            a = self.eval_term(term.left, env, t)
            b = self.eval_term(term.right, env, t)
            pa = self.history.position(a, t)
            pb = self.history.position(b, t)
            return pa.distance_to(pb)
        if isinstance(term, Arith):
            lhs = self.eval_term(term.left, env, t)
            rhs = self.eval_term(term.right, env, t)
            return self._arith(term.op, lhs, rhs)
        raise FtlSemanticsError(f"cannot evaluate term {term!r}")

    def _triple_at(self, obj_id: object, attr: str, t: float):
        from repro.core.history import FutureHistory, RecordedHistory

        history = self.history
        if isinstance(history, FutureHistory):
            return history.dynamic_triple(obj_id, attr)
        if isinstance(history, RecordedHistory):
            timeline = history.db.attribute_timeline(
                obj_id, attr, since=history.start
            )
            triple = timeline[0][1]
            for from_time, version in timeline:
                if from_time <= t:
                    triple = version
                else:
                    break
            return triple
        raise FtlSemanticsError(
            "sub-attribute access requires a MOST history"
        )

    @staticmethod
    def _arith(op: str, lhs: object, rhs: object) -> object:
        if lhs is None or rhs is None:
            return None
        try:
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                return lhs / rhs
        except (TypeError, ZeroDivisionError) as exc:
            raise FtlSemanticsError(f"arithmetic failed: {exc}") from exc
        raise FtlSemanticsError(f"unknown arithmetic operator {op!r}")

    # ------------------------------------------------------------------
    # Time invariance (per object class)
    # ------------------------------------------------------------------
    def term_invariant(self, term: Term) -> bool:
        """Whether the term has the same value in every state of a future
        history (refines ``Term.is_time_invariant`` using the bindings).

        Over a *recorded* history (persistent queries) even static
        attributes and sub-attributes change across the replayed past, so
        only constants stay invariant.
        """
        from repro.core.history import RecordedHistory

        if isinstance(self.history, RecordedHistory) and isinstance(
            term, (Attr, SubAttr)
        ):
            return False
        if isinstance(term, Attr):
            if not self.term_invariant(term.obj):
                return False
            var = term.obj
            if isinstance(var, Var) and var.name in self.bindings:
                cls = self.history.db.object_class(self.bindings[var.name])
                return not cls.is_dynamic(term.attr)
            return False
        if isinstance(term, Arith):
            return self.term_invariant(term.left) and self.term_invariant(
                term.right
            )
        if isinstance(term, Dist):
            return False
        return term.is_time_invariant()
