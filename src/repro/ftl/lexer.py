"""Tokenizer for the FTL concrete syntax."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FtlSyntaxError

KEYWORDS = {
    "RETRIEVE",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "UNTIL",
    "NEXTTIME",
    "EVENTUALLY",
    "ALWAYS",
    "WITHIN",
    "AFTER",
    "FOR",
    "INSIDE",
    "OUTSIDE",
    "WITHIN_SPHERE",
    "DIST",
    "TIME",
    "TRUE",
    "FALSE",
}

_SYMBOLS = (
    ":=",
    "<=",
    ">=",
    "!=",
    "<>",
    "(",
    ")",
    "[",
    "]",
    ",",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    ".",
)


@dataclass(frozen=True)
class Token:
    """One token: kind is ``KEYWORD``, ``IDENT``, ``NUMBER``, ``STRING``,
    ``SYMBOL`` or ``EOF``."""

    kind: str
    value: str
    pos: int


def tokenize(text: str) -> list[Token]:
    """Tokenize an FTL query; raises :class:`FtlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end == -1:
                raise FtlSyntaxError(f"unterminated string at {i}")
            tokens.append(Token("STRING", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (
                text[j].isdigit() or (text[j] == "." and not seen_dot)
            ):
                if text[j] == ".":
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                canonical = "!=" if sym == "<>" else sym
                tokens.append(Token("SYMBOL", canonical, i))
                i += len(sym)
                break
        else:
            raise FtlSyntaxError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
