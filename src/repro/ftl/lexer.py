"""Tokenizer for the FTL concrete syntax.

Tokens carry full source positions — byte offsets *and* 1-based
line/column — so parser errors and static-analysis diagnostics can point
at the offending source text (:class:`Span`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FtlSyntaxError

KEYWORDS = {
    "RETRIEVE",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "UNTIL",
    "NEXTTIME",
    "EVENTUALLY",
    "ALWAYS",
    "WITHIN",
    "AFTER",
    "FOR",
    "INSIDE",
    "OUTSIDE",
    "WITHIN_SPHERE",
    "DIST",
    "TIME",
    "TRUE",
    "FALSE",
}

_SYMBOLS = (
    ":=",
    "<=",
    ">=",
    "!=",
    "<>",
    "(",
    ")",
    "[",
    "]",
    ",",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    ".",
)


@dataclass(frozen=True)
class Span:
    """A half-open source range ``[start, end)`` with the 1-based line and
    column of its first character.

    Spans are attached to tokens, AST nodes and diagnostics; equality of
    AST nodes deliberately ignores them (two ``Const(5)`` nodes parsed
    from different positions are the same term).
    """

    start: int
    end: int
    line: int
    col: int

    def __str__(self) -> str:
        return f"line {self.line}, col {self.col}"

    def merge(self, other: "Span | None") -> "Span":
        """The smallest span covering both (``self`` when other is None)."""
        if other is None:
            return self
        first = self if self.start <= other.start else other
        return Span(
            min(self.start, other.start),
            max(self.end, other.end),
            first.line,
            first.col,
        )


@dataclass(frozen=True)
class Token:
    """One token: kind is ``KEYWORD``, ``IDENT``, ``NUMBER``, ``STRING``,
    ``SYMBOL`` or ``EOF``.  ``pos`` is the byte offset; ``line`` and
    ``col`` are 1-based; ``end`` is the offset one past the lexeme."""

    kind: str
    value: str
    pos: int
    line: int = 1
    col: int = 1
    end: int = -1

    @property
    def span(self) -> Span:
        end = self.end if self.end >= 0 else self.pos + len(self.value)
        return Span(self.pos, end, self.line, self.col)


def tokenize(text: str) -> list[Token]:
    """Tokenize an FTL query; raises :class:`FtlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    line = 1
    line_start = 0

    def make(kind: str, value: str, start: int, end: int) -> Token:
        return Token(kind, value, start, line, start - line_start + 1, end)

    def here(start: int) -> Span:
        return Span(start, start + 1, line, start - line_start + 1)

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end == -1:
                raise FtlSyntaxError(
                    f"unterminated string at line {line}, "
                    f"col {i - line_start + 1}",
                    span=here(i),
                )
            tokens.append(make("STRING", text[i + 1 : end], i, end + 1))
            for offset in range(i + 1, end):
                if text[offset] == "\n":
                    line += 1
                    line_start = offset + 1
            i = end + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (
                text[j].isdigit() or (text[j] == "." and not seen_dot)
            ):
                if text[j] == ".":
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(make("NUMBER", text[i:j], i, j))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(make("KEYWORD", word.upper(), i, j))
            else:
                tokens.append(make("IDENT", word, i, j))
            i = j
            continue
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                canonical = "!=" if sym == "<>" else sym
                tokens.append(make("SYMBOL", canonical, i, i + len(sym)))
                i += len(sym)
                break
        else:
            raise FtlSyntaxError(
                f"unexpected character {ch!r} at line {line}, "
                f"col {i - line_start + 1}",
                span=here(i),
            )
    tokens.append(make("EOF", "", n, n))
    return tokens
