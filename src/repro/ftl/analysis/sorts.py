"""Pass 2 — sort checking against the schema.

Infers a sort for every term — ``object`` (an id drawn from a FROM-bound
class), ``number``, ``string`` or ``unknown`` — and checks:

* attribute existence and dynamic-vs-static use (``o.attr`` /
  ``o.attr.sub``) against the declared object class;
* spatial operands (``INSIDE`` / ``OUTSIDE`` / ``WITHIN_SPHERE`` /
  ``DIST``) name spatial classes and defined regions;
* arithmetic stays numeric and ordered comparisons relate comparable
  sorts (the naive evaluator would raise a bare ``TypeError`` on
  ``'a' < 1`` — rule FTL208 rejects it before evaluation).

Checks that need the schema are skipped when it is unknown — the
schema-less lint CLI never reports false positives on a query the full
compiler would accept.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ftl.analysis.diagnostics import Diagnostic, make
from repro.ftl.analysis.schema import SchemaInfo
from repro.ftl.ast import (
    Arith,
    Assign,
    Attr,
    Compare,
    Const,
    Dist,
    Formula,
    Inside,
    Nexttime,
    NotF,
    Outside,
    SubAttr,
    Term,
    TimeTerm,
    Until,
    UntilWithin,
    Var,
    WithinSphere,
)

OBJECT = "object"
NUMBER = "number"
STRING = "string"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Sort:
    """An inferred term sort; ``class_name`` accompanies ``object``."""

    kind: str
    class_name: str | None = None


_NUMBER = Sort(NUMBER)
_STRING = Sort(STRING)
_UNKNOWN = Sort(UNKNOWN)


class SortChecker:
    def __init__(self, schema: SchemaInfo) -> None:
        self.schema = schema
        self.diags: list[Diagnostic] = []

    # ------------------------------------------------------------------
    def check(self, formula: Formula, bindings: dict[str, str]) -> list[Diagnostic]:
        env = {var: Sort(OBJECT, cls) for var, cls in bindings.items()}
        self._formula(formula, env)
        return self.diags

    # ------------------------------------------------------------------
    # Terms
    # ------------------------------------------------------------------
    def term_sort(self, term: Term, env: dict[str, Sort]) -> Sort:
        if isinstance(term, Const):
            if isinstance(term.value, str):
                return _STRING
            if isinstance(term.value, (int, float)):
                return _NUMBER
            return _UNKNOWN
        if isinstance(term, TimeTerm):
            return _NUMBER
        if isinstance(term, Var):
            return env.get(term.name, _UNKNOWN)
        if isinstance(term, Attr):
            return self._attr_sort(term, env)
        if isinstance(term, SubAttr):
            return self._sub_attr_sort(term, env)
        if isinstance(term, Dist):
            self._spatial_operand(term.left, env, "DIST")
            self._spatial_operand(term.right, env, "DIST")
            return _NUMBER
        if isinstance(term, Arith):
            for side in (term.left, term.right):
                s = self.term_sort(side, env)
                if s.kind in (OBJECT, STRING):
                    self.diags.append(
                        make(
                            "FTL207",
                            f"arithmetic {term.op!r} on a "
                            f"{s.kind}-sorted operand {side}",
                            span=side.span or term.span,
                            subformula=term,
                        )
                    )
            return _NUMBER
        return _UNKNOWN  # unknown node types are pass 3's FTL304

    def _object_class(self, sort: Sort) -> object | None:
        if sort.kind != OBJECT or sort.class_name is None:
            return None
        return self.schema.object_class(sort.class_name)

    def _attr_sort(self, term: Attr, env: dict[str, Sort]) -> Sort:
        obj_sort = self.term_sort(term.obj, env)
        if obj_sort.kind in (NUMBER, STRING):
            self.diags.append(
                make(
                    "FTL204",
                    f"attribute access .{term.attr} on the "
                    f"{obj_sort.kind}-sorted term {term.obj}",
                    span=term.span,
                    subformula=term,
                )
            )
            return _UNKNOWN
        cls = self._object_class(obj_sort)
        if cls is None:
            return _UNKNOWN
        if not cls.has_attribute(term.attr):
            self.diags.append(
                make(
                    "FTL202",
                    f"class {obj_sort.class_name!r} declares no "
                    f"attribute {term.attr!r}",
                    span=term.span,
                    subformula=term,
                )
            )
            return _UNKNOWN
        # Dynamic attributes are numeric (value + linear function of
        # time); static attribute values are untyped in the schema.
        return _NUMBER if cls.is_dynamic(term.attr) else _UNKNOWN

    def _sub_attr_sort(self, term: SubAttr, env: dict[str, Sort]) -> Sort:
        obj_sort = self.term_sort(term.obj, env)
        if obj_sort.kind in (NUMBER, STRING):
            self.diags.append(
                make(
                    "FTL204",
                    f"sub-attribute access .{term.attr}.{term.sub} on the "
                    f"{obj_sort.kind}-sorted term {term.obj}",
                    span=term.span,
                    subformula=term,
                )
            )
            return _UNKNOWN
        cls = self._object_class(obj_sort)
        if cls is not None:
            if not cls.has_attribute(term.attr):
                self.diags.append(
                    make(
                        "FTL202",
                        f"class {obj_sort.class_name!r} declares no "
                        f"attribute {term.attr!r}",
                        span=term.span,
                        subformula=term,
                    )
                )
            elif not cls.is_dynamic(term.attr):
                self.diags.append(
                    make(
                        "FTL203",
                        f"attribute {term.attr!r} of class "
                        f"{obj_sort.class_name!r} is static; only dynamic "
                        f"attributes have .{term.sub}",
                        span=term.span,
                        subformula=term,
                    )
                )
        return _NUMBER

    def _spatial_operand(self, term: Term, env: dict[str, Sort],
                         op: str) -> None:
        sort = self.term_sort(term, env)
        if sort.kind in (NUMBER, STRING):
            self.diags.append(
                make(
                    "FTL205",
                    f"{op} needs a point object, got the "
                    f"{sort.kind}-sorted term {term}",
                    span=term.span,
                    subformula=term,
                )
            )
            return
        cls = self._object_class(sort)
        if cls is not None and not cls.is_spatial:
            self.diags.append(
                make(
                    "FTL205",
                    f"{op} operand {term} ranges over the non-spatial "
                    f"class {sort.class_name!r}",
                    span=term.span,
                    subformula=term,
                )
            )

    # ------------------------------------------------------------------
    # Formulas
    # ------------------------------------------------------------------
    def _formula(self, f: Formula, env: dict[str, Sort]) -> None:
        if isinstance(f, Compare):
            self._compare(f, env)
            return
        if isinstance(f, (Inside, Outside)):
            kind = type(f).__name__.upper()
            self._spatial_operand(f.obj, env, kind)
            if not self.schema.has_region(f.region):
                self.diags.append(
                    make(
                        "FTL206",
                        f"unknown region {f.region!r}",
                        span=f.span,
                        subformula=f,
                    )
                )
            return
        if isinstance(f, WithinSphere):
            for o in f.objs:
                self._spatial_operand(o, env, "WITHIN_SPHERE")
            return
        if isinstance(f, Assign):
            sort = self.term_sort(f.term, env)
            inner = dict(env)
            inner[f.var] = sort
            self._formula(f.body, inner)
            return
        if isinstance(f, (NotF, Nexttime)):
            self._formula(f.operand, env)
            return
        if isinstance(f, (Until, UntilWithin)):
            self._formula(f.left, env)
            self._formula(f.right, env)
            return
        operand = getattr(f, "operand", None)
        if isinstance(operand, Formula):
            self._formula(operand, env)
            return
        left = getattr(f, "left", None)
        right = getattr(f, "right", None)
        if isinstance(left, Formula) and isinstance(right, Formula):
            self._formula(left, env)
            self._formula(right, env)

    def _compare(self, f: Compare, env: dict[str, Sort]) -> None:
        ls = self.term_sort(f.left, env)
        rs = self.term_sort(f.right, env)
        if f.op in ("<", "<=", ">", ">="):
            kinds = {ls.kind, rs.kind}
            if kinds == {NUMBER, STRING}:
                self.diags.append(
                    make(
                        "FTL208",
                        f"ordered comparison {f.op!r} between a number "
                        "and a string can never be evaluated",
                        span=f.span,
                        subformula=f,
                    )
                )
            elif OBJECT in kinds:
                self.diags.append(
                    make(
                        "FTL208",
                        f"ordered comparison {f.op!r} on an object-valued "
                        "term compares raw object ids",
                        span=f.span,
                        subformula=f,
                        severity="warning",
                    )
                )
