"""Pass 5 — lint rules.

Style-level findings on well-formed queries: vacuous real-time bounds
(``EVENTUALLY WITHIN 0``, ``ALWAYS FOR 0``), negative bounds
(programmatic ASTs only — the grammar cannot produce them), comparisons
between constants that fold to a fixed truth value, and ``Until``
operands that are constantly true or false.

The parser's ``TRUE`` / ``FALSE`` sugar desugars to the constant
comparison ``1 = 1`` / ``1 = 0``; that exact shape is deliberate and is
not flagged by FTL503 (but an explicit ``f UNTIL TRUE`` still trips
FTL504 — the ``Until`` is vacuous no matter how the constant was
written).
"""

from __future__ import annotations

from repro.ftl.analysis.diagnostics import Diagnostic, make
from repro.ftl.ast import (
    AlwaysFor,
    AndF,
    Assign,
    Compare,
    Const,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    OrF,
    Until,
    UntilWithin,
    WithinSphere,
)

_CMP = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def constant_truth(f: Formula) -> bool | None:
    """The fixed truth value of a constant comparison, else ``None``."""
    if not isinstance(f, Compare):
        return None
    if not isinstance(f.left, Const) or not isinstance(f.right, Const):
        return None
    try:
        return bool(_CMP[f.op](f.left.value, f.right.value))
    except TypeError:
        return None


def _is_true_false_sugar(f: Compare) -> bool:
    return (
        f.op == "="
        and isinstance(f.left, Const)
        and f.left.value == 1
        and isinstance(f.right, Const)
        and f.right.value in (0, 1)
    )


def check_lints(formula: Formula) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    _walk(formula, diags)
    return diags


def _bound_lints(f: Formula, bound: float, keyword: str,
                 vacuous_hint: str, diags: list[Diagnostic]) -> None:
    if bound < 0:
        diags.append(
            make(
                "FTL502",
                f"negative bound {bound} on {keyword}",
                span=f.span,
                subformula=f,
            )
        )
    elif bound == 0:
        diags.append(
            make(
                "FTL501",
                f"{keyword} 0 is vacuous: {vacuous_hint}",
                span=f.span,
                subformula=f,
            )
        )


def _walk(f: Formula, diags: list[Diagnostic]) -> None:
    if isinstance(f, Compare):
        if constant_truth(f) is not None and not _is_true_false_sugar(f):
            value = "true" if constant_truth(f) else "false"
            diags.append(
                make(
                    "FTL503",
                    f"comparison {f} is constant-foldable "
                    f"(always {value})",
                    span=f.span,
                    subformula=f,
                )
            )
        return
    if isinstance(f, WithinSphere):
        if f.radius < 0:
            diags.append(
                make(
                    "FTL502",
                    f"negative WITHIN_SPHERE radius {f.radius}",
                    span=f.span,
                    subformula=f,
                )
            )
        elif f.radius == 0:
            diags.append(
                make(
                    "FTL501",
                    "WITHIN_SPHERE with radius 0 requires exactly "
                    "coincident points",
                    span=f.span,
                    subformula=f,
                )
            )
        return
    if isinstance(f, EventuallyWithin):
        _bound_lints(
            f, f.bound, "EVENTUALLY WITHIN",
            "it is equivalent to its operand at the current state", diags,
        )
        _walk(f.operand, diags)
        return
    if isinstance(f, EventuallyAfter):
        if f.bound < 0:
            diags.append(
                make(
                    "FTL502",
                    f"negative bound {f.bound} on EVENTUALLY AFTER",
                    span=f.span,
                    subformula=f,
                )
            )
        elif f.bound == 0:
            diags.append(
                make(
                    "FTL501",
                    "EVENTUALLY AFTER 0 is plain EVENTUALLY",
                    span=f.span,
                    subformula=f,
                )
            )
        _walk(f.operand, diags)
        return
    if isinstance(f, AlwaysFor):
        _bound_lints(
            f, f.bound, "ALWAYS FOR",
            "it is equivalent to its operand at the current state", diags,
        )
        _walk(f.operand, diags)
        return
    if isinstance(f, UntilWithin):
        _bound_lints(
            f, f.bound, "UNTIL WITHIN",
            "only the right operand at the current state matters", diags,
        )
        _until_lints(f, diags)
        _walk(f.left, diags)
        _walk(f.right, diags)
        return
    if isinstance(f, Until):
        _until_lints(f, diags)
        _walk(f.left, diags)
        _walk(f.right, diags)
        return
    if isinstance(f, (AndF, OrF)):
        _walk(f.left, diags)
        _walk(f.right, diags)
        return
    if isinstance(f, Assign):
        _walk(f.body, diags)
        return
    operand = getattr(f, "operand", None)
    if isinstance(operand, Formula):
        _walk(operand, diags)


def _until_lints(f: "Until | UntilWithin", diags: list[Diagnostic]) -> None:
    right = constant_truth(f.right)
    if right is True:
        diags.append(
            make(
                "FTL504",
                "Until right operand always holds: the formula is "
                "immediately satisfied everywhere",
                span=f.span,
                subformula=f,
            )
        )
    elif right is False:
        diags.append(
            make(
                "FTL504",
                "Until right operand never holds: the formula is "
                "unsatisfiable",
                span=f.span,
                subformula=f,
            )
        )
    left = constant_truth(f.left)
    if left is False:
        diags.append(
            make(
                "FTL504",
                "Until left operand never holds: the formula reduces to "
                "its right operand at the current state",
                span=f.span,
                subformula=f,
            )
        )
