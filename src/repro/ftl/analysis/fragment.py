"""Pass 4 — temporal-fragment classification.

Computes, per formula: the temporal nesting depth, whether every
temporal operator is real-time bounded (§3.4) or reaches to the
expiration horizon (§2.3), membership in the paper's conjunctive
fragment (§3.5), and *incremental eligibility* — whether the
per-instantiation maintenance of continuous queries applies.

Where the old ``supports_incremental`` returned an unexplained boolean,
:func:`incremental_blockers` returns one FTL401 diagnostic per
disqualifying subformula, naming it and its source span — the message a
``ContinuousQuery(method="incremental")`` surfaces when it falls back to
full reevaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ftl.analysis.diagnostics import Diagnostic, make
from repro.ftl.ast import (
    Always,
    AlwaysFor,
    AndF,
    Assign,
    Compare,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Inside,
    Nexttime,
    OrF,
    Outside,
    Until,
    UntilWithin,
    WithinSphere,
)

_ATOMS = (Compare, Inside, Outside, WithinSphere)
#: Temporal operators whose reach is bounded by their real-time constant
#: (section 3.4) or by a single step.
_BOUNDED_TEMPORAL = (UntilWithin, Nexttime, EventuallyWithin, AlwaysFor)
#: Temporal operators quantifying over the whole remaining history.
_UNBOUNDED_TEMPORAL = (Until, Eventually, EventuallyAfter, Always)
_TEMPORAL = _BOUNDED_TEMPORAL + _UNBOUNDED_TEMPORAL


@dataclass(frozen=True)
class FragmentInfo:
    """Classification of one formula's temporal fragment."""

    #: Maximum nesting depth of temporal operators (0 = state formula).
    temporal_depth: int
    #: True when every temporal operator is real-time bounded.
    bounded: bool
    #: Membership in the conjunctive (negation-free) fragment of §3.5.
    conjunctive: bool
    #: Whether per-instantiation incremental maintenance applies.
    incremental: bool
    #: One FTL401 diagnostic per disqualifying subformula.
    blockers: tuple[Diagnostic, ...]

    @property
    def classification(self) -> str:
        """A compact human-readable fragment name."""
        parts = [
            "conjunctive" if self.conjunctive else "general",
            "bounded" if self.bounded else "unbounded",
        ]
        if self.temporal_depth == 0:
            parts.append("state")
        parts.append(
            "incremental" if self.incremental else "full-reevaluation"
        )
        return "/".join(parts)

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable form (the lint CLI's ``--json`` output)."""
        return {
            "temporal_depth": self.temporal_depth,
            "bounded": self.bounded,
            "conjunctive": self.conjunctive,
            "incremental": self.incremental,
            "classification": self.classification,
            "blockers": [d.to_json() for d in self.blockers],
        }


def incremental_blockers(formula: Formula) -> list[Diagnostic]:
    """Every subformula disqualifying incremental maintenance (FTL401).

    The assignment quantifier pools the observed values of its term over
    *all* instantiations into the body's variable domain, so a single
    dirty object can change the rows of every clean instantiation — the
    per-object decomposition incremental maintenance rests on breaks
    down.  Unknown AST node types block as well (the partial evaluator
    has no delta rule for them).
    """
    out: list[Diagnostic] = []
    _collect_blockers(formula, out)
    return out


def _collect_blockers(f: Formula, out: list[Diagnostic]) -> None:
    if isinstance(f, Assign):
        out.append(
            make(
                "FTL401",
                f"assignment quantifier [{f.var} := {f.term}] pools "
                "values across instantiations; the formula requires "
                "full reevaluation on every relevant update",
                span=f.span,
                subformula=f,
            )
        )
        # Nested assignments inside the body are subsumed by this one.
        return
    if isinstance(f, _ATOMS):
        return
    if isinstance(f, (AndF, OrF, Until, UntilWithin)):
        _collect_blockers(f.left, out)
        _collect_blockers(f.right, out)
        return
    operand = getattr(f, "operand", None)
    if isinstance(operand, Formula):
        _collect_blockers(operand, out)
        return
    out.append(
        make(
            "FTL401",
            f"construct {type(f).__name__} has no incremental delta "
            "rule; the formula requires full reevaluation",
            span=f.span,
            subformula=f,
        )
    )


def _temporal_depth(f: Formula) -> int:
    if isinstance(f, _ATOMS):
        return 0
    here = 1 if isinstance(f, _TEMPORAL) else 0
    children = []
    if isinstance(f, (AndF, OrF, Until, UntilWithin)):
        children = [f.left, f.right]
    elif isinstance(f, Assign):
        children = [f.body]
    else:
        operand = getattr(f, "operand", None)
        if isinstance(operand, Formula):
            children = [operand]
    return here + max((_temporal_depth(c) for c in children), default=0)


def _unbounded_ops(f: Formula, out: list[Formula]) -> None:
    if isinstance(f, _UNBOUNDED_TEMPORAL):
        out.append(f)
    if isinstance(f, (AndF, OrF, Until, UntilWithin)):
        _unbounded_ops(f.left, out)
        _unbounded_ops(f.right, out)
    elif isinstance(f, Assign):
        _unbounded_ops(f.body, out)
    else:
        operand = getattr(f, "operand", None)
        if isinstance(operand, Formula):
            _unbounded_ops(operand, out)


def classify(formula: Formula) -> tuple[FragmentInfo, list[Diagnostic]]:
    """The fragment info plus the informational diagnostics it implies."""
    diags: list[Diagnostic] = []
    blockers = incremental_blockers(formula)
    diags.extend(blockers)

    unbounded: list[Formula] = []
    _unbounded_ops(formula, unbounded)
    for node in unbounded:
        name = type(node).__name__
        diags.append(
            make(
                "FTL402",
                f"{name} is unbounded; its satisfaction depends on the "
                "expiration horizon of the query",
                span=node.span,
                subformula=node,
            )
        )

    try:
        conjunctive = formula.is_conjunctive()
    except (NotImplementedError, AttributeError, TypeError):
        conjunctive = False  # foreign node types (FTL304) classify as general
    info = FragmentInfo(
        temporal_depth=_temporal_depth(formula),
        bounded=not unbounded,
        conjunctive=conjunctive,
        incremental=not blockers,
        blockers=tuple(blockers),
    )
    return info, diags
