"""Pass 1 — binding and scope analysis.

Checks that every variable occurrence is bound (by the FROM clause or an
enclosing assignment quantifier), that assignment quantifiers do not
shadow an existing binding (the evaluator's ``push_domain`` refuses the
shadow at run time — rule FTL103 surfaces it before), and that assigned
variables are actually used.
"""

from __future__ import annotations

from repro.ftl.analysis.diagnostics import Diagnostic, make
from repro.ftl.ast import (
    Arith,
    Assign,
    Attr,
    Compare,
    Dist,
    Formula,
    Inside,
    Nexttime,
    NotF,
    Outside,
    SubAttr,
    Term,
    Until,
    UntilWithin,
    Var,
    WithinSphere,
)

#: Variable kinds tracked by the scope walk.
OBJECT_VAR = "object"
ASSIGNED_VAR = "assigned"


def check_scopes(
    formula: Formula, bindings: dict[str, str]
) -> list[Diagnostic]:
    """Run the binding/scope pass; FROM ``bindings`` seed the scope."""
    diags: list[Diagnostic] = []
    scope = {var: OBJECT_VAR for var in bindings}
    _walk_formula(formula, scope, diags)
    return diags


def _walk_term(term: Term, scope: dict[str, str],
               diags: list[Diagnostic]) -> None:
    if isinstance(term, Var):
        if term.name not in scope:
            diags.append(
                make(
                    "FTL101",
                    f"unbound variable {term.name!r}",
                    span=term.span,
                    subformula=term,
                )
            )
        return
    if isinstance(term, (Attr, SubAttr)):
        _walk_term(term.obj, scope, diags)
        return
    if isinstance(term, (Arith, Dist)):
        _walk_term(term.left, scope, diags)
        _walk_term(term.right, scope, diags)
        return
    # Const / TimeTerm / unknown nodes bind nothing (pass 3 flags unknown
    # node types).


def _walk_formula(f: Formula, scope: dict[str, str],
                  diags: list[Diagnostic]) -> None:
    if isinstance(f, Compare):
        _walk_term(f.left, scope, diags)
        _walk_term(f.right, scope, diags)
        return
    if isinstance(f, (Inside, Outside)):
        _walk_term(f.obj, scope, diags)
        return
    if isinstance(f, WithinSphere):
        for o in f.objs:
            _walk_term(o, scope, diags)
        return
    if isinstance(f, Assign):
        _walk_term(f.term, scope, diags)
        if f.var in scope:
            diags.append(
                make(
                    "FTL103",
                    f"assignment [{f.var} := ...] shadows the "
                    f"{scope[f.var]} variable {f.var!r}",
                    span=f.span,
                    subformula=f,
                )
            )
            # Analyze the body under the inner binding anyway.
            inner = dict(scope)
        else:
            inner = dict(scope)
        inner[f.var] = ASSIGNED_VAR
        _walk_formula(f.body, inner, diags)
        if f.var not in f.body.free_vars():
            diags.append(
                make(
                    "FTL104",
                    f"assigned variable {f.var!r} is never used in the "
                    "body of its quantifier",
                    span=f.span,
                    subformula=f,
                )
            )
        return
    if isinstance(f, (NotF, Nexttime)):
        _walk_formula(f.operand, scope, diags)
        return
    if isinstance(f, (Until, UntilWithin)):
        _walk_formula(f.left, scope, diags)
        _walk_formula(f.right, scope, diags)
        return
    # Remaining known nodes expose either .operand or .left/.right.
    operand = getattr(f, "operand", None)
    if isinstance(operand, Formula):
        _walk_formula(operand, scope, diags)
        return
    left = getattr(f, "left", None)
    right = getattr(f, "right", None)
    if isinstance(left, Formula) and isinstance(right, Formula):
        _walk_formula(left, scope, diags)
        _walk_formula(right, scope, diags)
