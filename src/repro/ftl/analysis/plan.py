"""The evaluation-plan IR: an explicit operator tree over subformulas.

Lowering turns an analyzer-accepted FTL formula into one
:class:`PlanNode` per subformula — atom scan, compare, intersect-join for
``∧``, until-chain-merge, interval map for the §3.4 bounded operators,
complement/union for negation/disjunction, project for ``[x := q]`` —
annotated with its free variables, the evaluator routine it maps to, and
the :class:`~repro.ftl.analysis.cost.CostEstimate` bounds of ``cost.py``.

Lowering also *transforms*:

* commutative conjuncts and independent assignment chains are reordered
  by the cost-based orderer (``order.py``); the reordered conjunction is
  rebuilt as a **left-deep binary** ``AndF`` spine so the three
  evaluators — including the binary delta rule of incremental
  maintenance — consume it unchanged;
* structurally identical subformulas whose free variables are all
  FROM-bound (so their relation is the same in every assignment scope)
  are hash-consed to a single shared node, marked for caching
  (``EvalPlan.shared_ids``) and flagged FTL604;
* plan-level blowups are reported as FTL6xx diagnostics: inherent
  cross-product conjunctions (FTL601), multi-variable negation
  complements (FTL602), unbounded ``Until`` outer enumeration (FTL603).

The resulting :class:`EvalPlan` owns the ordered formula tree; evaluators
call :meth:`EvalPlan.resolve` to swap the syntactic root for the ordered
one, and continuous queries keep the plan alive so ``id``-keyed caches
stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.errors import FtlSemanticsError
from repro.ftl.analysis.cost import (
    CostEstimate,
    CostModel,
    assign_estimate,
    assign_q_cost,
    assign_values_estimate,
    atom_estimate,
    complement_estimate,
    domain_product,
    join_estimate,
    map_estimate,
    union_estimate,
    until_estimate,
)
from repro.ftl.analysis.diagnostics import Diagnostic, make
from repro.ftl.analysis.order import (
    connected_components,
    order_assignments,
    order_conjuncts,
)
from repro.ftl.ast import (
    Always,
    AlwaysFor,
    AndF,
    Assign,
    Compare,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    Until,
    UntilWithin,
    WithinSphere,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.analysis.deps import DepAnalysis
    from repro.ftl.analysis.validity import ValidityAnalysis
    from repro.ftl.query import FtlQuery

# Operator kinds (one per appendix evaluation rule).
ATOM_SCAN = "atom-scan"
COMPARE = "compare"
INTERSECT_JOIN = "intersect-join"
UNION = "union"
COMPLEMENT = "complement"
UNTIL_MERGE = "until-chain-merge"
INTERVAL_MAP = "interval-map"
PROJECT = "project"

#: Plan op → the evaluator routine that implements it.
ROUTINES = {
    ATOM_SCAN: "IntervalEvaluator._atom",
    COMPARE: "IntervalEvaluator._compare_intervals",
    INTERSECT_JOIN: "IntervalEvaluator._conjunction",
    UNION: "IntervalEvaluator._disjunction",
    COMPLEMENT: "IntervalEvaluator._negation",
    UNTIL_MERGE: "IntervalEvaluator._until_join",
    INTERVAL_MAP: "FtlRelation.map_sets",
    PROJECT: "IntervalEvaluator._assignment",
}

_MAP_KINDS = {
    Nexttime: "nexttime",
    Eventually: "eventually",
    EventuallyWithin: "eventually-within",
    EventuallyAfter: "eventually-after",
    Always: "always",
    AlwaysFor: "always-for",
}

_ATOMS = (Compare, Inside, Outside, WithinSphere)


@dataclass
class PlanNode:
    """One operator of the evaluation plan.

    ``formula`` is the (possibly reordered) subformula this node
    computes ``R_g`` for — the exact object the evaluators will recurse
    into, so ``id(formula)`` keys traces, caches and drift lookups.
    """

    op: str
    formula: Formula
    routine: str
    free_vars: tuple[str, ...]
    estimate: CostEstimate
    children: tuple["PlanNode", ...] = ()
    detail: str = ""
    #: Structurally identical subformula occurring elsewhere; evaluated
    #: once and cached (FTL604).
    shared: bool = False
    #: The orderer changed this node's operand order vs the source.
    reordered: bool = False

    def to_json(
        self,
        reads: Mapping[int, Any] | None = None,
        horizons: Mapping[int, Any] | None = None,
    ) -> dict[str, object]:
        """JSON-shaped node (one entry of the ``explain --json`` tree).

        ``reads`` maps ``id(subformula)`` to the node's
        :class:`~repro.ftl.analysis.deps.ReadSet`; ``horizons`` maps it
        to the node's :class:`~repro.ftl.analysis.validity.Horizon`.
        When given, each node gains a ``reads`` / ``validity`` entry
        (new keys — every pre-existing key is unchanged, old consumers
        keep parsing).
        """
        out: dict[str, object] = {
            "op": self.op,
            "formula": str(self.formula),
            "routine": self.routine,
            "free_vars": list(self.free_vars),
            "estimate": self.estimate.to_json(),
        }
        if self.detail:
            out["detail"] = self.detail
        if self.shared:
            out["shared"] = True
        if self.reordered:
            out["reordered"] = True
        if reads is not None:
            read_set = reads.get(id(self.formula))
            if read_set is not None:
                out["reads"] = read_set.to_json()
        if horizons is not None:
            horizon = horizons.get(id(self.formula))
            if horizon is not None:
                out["validity"] = horizon.to_json()
        if self.children:
            out["children"] = [
                c.to_json(reads, horizons) for c in self.children
            ]
        return out


def _fmt(x: float) -> str:
    return f"{x:.3g}"


@dataclass
class EvalPlan:
    """A lowered, cost-annotated, (optionally) reordered evaluation plan."""

    source: Formula
    ordered_where: Formula
    root: PlanNode
    shared_ids: frozenset[int]
    diagnostics: tuple[Diagnostic, ...]
    model: CostModel
    ordered: bool
    #: FROM-clause bindings the plan was lowered under (drives the
    #: update-impact analysis of :meth:`dependency_analysis`).
    bindings: dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def resolve(self, formula: Formula) -> Formula:
        """The formula an evaluator should actually recurse into."""
        if formula is self.source or formula is self.ordered_where:
            return self.ordered_where
        return formula

    @property
    def reordered(self) -> bool:
        """Whether any operand order differs from the syntactic order."""
        return any(n.reordered for _p, n in self.nodes_with_paths())

    @property
    def total(self) -> CostEstimate:
        """The root estimate (whole-plan bounds)."""
        return self.root.estimate

    def nodes_with_paths(self) -> Iterator[tuple[str, PlanNode]]:
        """Depth-first ``(path, node)`` pairs; shared nodes appear once,
        at their first (leftmost) occurrence."""
        seen: set[int] = set()

        def walk(node: PlanNode, path: str) -> Iterator[tuple[str, PlanNode]]:
            if id(node) in seen:
                return
            seen.add(id(node))
            yield path, node
            for i, child in enumerate(node.children):
                yield from walk(child, f"{path}.{i}")

        yield from walk(self.root, "root")

    @property
    def estimates(self) -> dict[str, CostEstimate]:
        """Per-node estimates keyed by plan path (``root``, ``root.0``, ...)."""
        return {path: node.estimate for path, node in self.nodes_with_paths()}

    def dependency_analysis(self, schema: object = None) -> "DepAnalysis":
        """The update-impact analysis of the plan's *ordered* tree.

        Keyed by the ordered formula nodes, so incremental evaluators
        can look read-sets up by the same ``id`` that keys their caches.
        Memoized per schema identity (the common callers — EXPLAIN,
        continuous queries — ask with one schema for the plan's life).
        """
        from repro.ftl.analysis.deps import analyze_formula_deps

        if not hasattr(self, "_deps_memo"):
            self._deps_memo: dict[int, DepAnalysis] = {}
        cached = self._deps_memo.get(id(schema))
        if cached is None:
            cached = analyze_formula_deps(
                self.ordered_where, bindings=self.bindings, schema=schema
            )
            self._deps_memo[id(schema)] = cached
        return cached

    def validity_analysis(self, schema: object = None) -> "ValidityAnalysis":
        """The temporal-validity analysis of the plan's *ordered* tree.

        Keyed by the ordered formula nodes like
        :meth:`dependency_analysis` (whose read-sets it reuses), so
        runtime consumers can look horizons up by the same ``id`` that
        keys their caches.  Memoized per schema identity.
        """
        from repro.ftl.analysis.validity import analyze_formula_validity

        if not hasattr(self, "_validity_memo"):
            self._validity_memo: dict[int, ValidityAnalysis] = {}
        cached = self._validity_memo.get(id(schema))
        if cached is None:
            cached = analyze_formula_validity(
                self.ordered_where,
                bindings=self.bindings,
                schema=schema,
                deps=self.dependency_analysis(schema),
            )
            self._validity_memo[id(schema)] = cached
        return cached

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable plan tree (the ``explain`` CLI's default view)."""
        lines: list[str] = []
        rendered: set[int] = set()

        def describe(node: PlanNode) -> str:
            e = node.estimate
            bits = [node.op]
            if node.detail:
                bits.append(node.detail)
            head = " ".join(bits)
            flags = ""
            if node.reordered:
                flags += " [reordered]"
            if node.shared:
                flags += " [shared]"
            fv = ", ".join(node.free_vars)
            return (
                f"{head}  vars=({fv})  ~{_fmt(e.tuples)} rows "
                f"x{_fmt(e.intervals)} iv  cost {_fmt(e.cost)}{flags}"
            )

        def walk(node: PlanNode, prefix: str, branch: str) -> None:
            if id(node) in rendered:
                lines.append(
                    f"{prefix}{branch}(shared) {node.op}  {node.formula}"
                )
                return
            rendered.add(id(node))
            lines.append(f"{prefix}{branch}{describe(node)}")
            if branch == "`- ":
                child_prefix = prefix + "   "
            elif branch == "|- ":
                child_prefix = prefix + "|  "
            else:
                child_prefix = prefix
            for i, child in enumerate(node.children):
                last = i == len(node.children) - 1
                walk(child, child_prefix, "`- " if last else "|- ")

        walk(self.root, "", "")
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        """JSON-shaped plan report (the ``explain --json`` payload)."""
        deps = self.dependency_analysis()
        validity = self.validity_analysis()
        return {
            "ordered": self.ordered,
            "reordered": self.reordered,
            "formula": str(self.ordered_where),
            "total": self.total.to_json(),
            "atom_acceleration": {
                "index_pruning": self.model.index_pruning,
                "batch_solver": self.model.batch_solver,
                "estimated_solves": round(self.total.solves, 3),
                "estimated_solve_batches": round(
                    self.total.solve_batches, 3
                ),
            },
            "shared_subformulas": len(self.shared_ids),
            "diagnostics": [d.to_json() for d in self.diagnostics],
            # New in the dependency-analysis revision: the query-level
            # read-set roll-up plus per-node ``reads`` entries below.
            # Strictly additive — every pre-existing key keeps its shape.
            "dependencies": deps.to_json(),
            # New in the temporal-validity revision (pass 8): the
            # symbolic horizon roll-up plus per-node ``validity``
            # entries below.  Strictly additive as well.
            "validity": validity.to_json(),
            "root": self.root.to_json(deps.reads, validity.horizons),
        }


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _flatten_and(f: Formula) -> list[Formula]:
    if isinstance(f, AndF):
        return _flatten_and(f.left) + _flatten_and(f.right)
    return [f]


class _Lowerer:
    """One lowering run: AST → plan nodes + ordered formula tree."""

    def __init__(
        self,
        bindings: Mapping[str, str],
        model: CostModel,
        order: bool,
    ) -> None:
        self.bindings = dict(bindings)
        self.model = model
        self.order = order
        self.diagnostics: list[Diagnostic] = []
        #: Hash-cons table: source-subformula value → (node, rebuilt
        #: formula).  Only scope-independent formulas (no assignment-bound
        #: free variable) are eligible.
        self._cons: dict[Formula, tuple[PlanNode, Formula]] = {}
        self._uses: dict[int, int] = {}
        self._canon: list[tuple[PlanNode, Formula]] = []

    # ------------------------------------------------------------------
    def lower(self, formula: Formula) -> EvalPlan:
        widths = {
            var: self.model.class_size(cls)
            for var, cls in self.bindings.items()
        }
        root, ordered = self._build(formula, frozenset(), widths)
        shared_ids = set()
        for node, form in self._canon:
            uses = self._uses.get(id(form), 1)
            if uses <= 1:
                continue
            node.shared = True
            shared_ids.add(id(form))
            if form.free_vars():
                self._diag(
                    "FTL604",
                    f"subformula occurs {uses} times; the plan evaluates "
                    "it once and caches the relation",
                    form,
                )
        self.diagnostics.sort(key=lambda d: (d.code, d.message))
        return EvalPlan(
            source=formula,
            ordered_where=ordered,
            root=root,
            shared_ids=frozenset(shared_ids),
            diagnostics=tuple(self.diagnostics),
            model=self.model,
            ordered=self.order,
            bindings=dict(self.bindings),
        )

    def _diag(self, code: str, message: str, f: Formula) -> None:
        self.diagnostics.append(
            make(code, message, span=f.span, subformula=f)
        )

    def _quarantine_check(self, f: Formula) -> None:
        """FTL605 when a derived operator's rewrite rule is quarantined:
        ``expand()`` will keep this operator rather than encode it."""
        from repro.ftl.rewrite import RULE_NAMES, quarantined_rules

        rule = RULE_NAMES.get(type(f))
        if rule is not None and rule in quarantined_rules():
            self._diag(
                "FTL605",
                f"rewrite rule {rule!r} is quarantined as unsound; the "
                "built-in interval routine evaluates this operator and "
                "expand() leaves it in place",
                f,
            )

    # ------------------------------------------------------------------
    def _build(
        self,
        f: Formula,
        scope: frozenset[str],
        widths: Mapping[str, float],
    ) -> tuple[PlanNode, Formula]:
        # Hash-consing: a formula with no assignment-bound free variable
        # computes the same relation in every scope, so structurally
        # equal occurrences share one node (and one evaluation).
        sharable = not (f.free_vars() & scope)
        if sharable:
            hit = self._cons.get(f)
            if hit is not None:
                self._uses[id(hit[1])] += 1
                return hit
        node, formula = self._build_fresh(f, scope, widths)
        if sharable:
            self._cons[f] = (node, formula)
            self._uses[id(formula)] = 1
            self._canon.append((node, formula))
        return node, formula

    def _build_fresh(
        self,
        f: Formula,
        scope: frozenset[str],
        widths: Mapping[str, float],
    ) -> tuple[PlanNode, Formula]:
        if isinstance(f, _ATOMS):
            return self._atom(f, widths)
        if isinstance(f, AndF):
            return self._conjunction(f, scope, widths)
        if isinstance(f, OrF):
            return self._union(f, scope, widths)
        if isinstance(f, NotF):
            return self._complement(f, scope, widths)
        if isinstance(f, (Until, UntilWithin)):
            return self._until(f, scope, widths)
        if type(f) in _MAP_KINDS:
            return self._interval_map(f, scope, widths)
        if isinstance(f, Assign):
            return self._assign_chain(f, scope, widths)
        at = f" at {f.span}" if f.span is not None else ""
        raise FtlSemanticsError(
            f"cannot lower {type(f).__name__} to an evaluation plan{at}"
        )

    # ------------------------------------------------------------------
    def _atom(
        self, f: Formula, widths: Mapping[str, float]
    ) -> tuple[PlanNode, Formula]:
        op = COMPARE if isinstance(f, Compare) else ATOM_SCAN
        node = PlanNode(
            op=op,
            formula=f,
            routine=ROUTINES[op],
            free_vars=tuple(sorted(f.free_vars())),
            estimate=atom_estimate(f, widths, self.model),
            detail=str(f),
        )
        return node, f

    def _conjunction(
        self,
        f: AndF,
        scope: frozenset[str],
        widths: Mapping[str, float],
    ) -> tuple[PlanNode, Formula]:
        conjuncts = _flatten_and(f)
        built = [self._build(c, scope, widths) for c in conjuncts]
        entries = [
            (frozenset(node.free_vars), node.estimate) for node, _ in built
        ]
        components = connected_components(vs for vs, _ in entries)
        if len(components) > 1:
            sets = " x ".join(
                "{" + ", ".join(sorted(c)) + "}" for c in components
            )
            self._diag(
                "FTL601",
                f"conjunction joins disjoint variable sets {sets}; no "
                "order avoids the cross product",
                f,
            )
        if self.order:
            perm = order_conjuncts(entries, widths)
        else:
            perm = list(range(len(built)))
        reordered = perm != list(range(len(built)))
        seq = [built[i] for i in perm]

        head_node, formula = seq[0]
        est = head_node.estimate
        vars_acc = frozenset(head_node.free_vars)
        for node_i, form_i in seq[1:]:
            est = join_estimate(
                est, node_i.estimate, vars_acc,
                frozenset(node_i.free_vars), widths,
            )
            vars_acc |= frozenset(node_i.free_vars)
            formula = AndF(formula, form_i, span=f.span)
        if formula == f:
            formula = f
        node = PlanNode(
            op=INTERSECT_JOIN,
            formula=formula,
            routine=ROUTINES[INTERSECT_JOIN],
            free_vars=tuple(sorted(vars_acc)),
            estimate=est,
            children=tuple(node for node, _ in seq),
            detail=f"{len(seq)} conjuncts",
            reordered=reordered,
        )
        return node, formula

    def _union(
        self,
        f: OrF,
        scope: frozenset[str],
        widths: Mapping[str, float],
    ) -> tuple[PlanNode, Formula]:
        ln, lf = self._build(f.left, scope, widths)
        rn, rf = self._build(f.right, scope, widths)
        est = union_estimate(
            ln.estimate, rn.estimate,
            frozenset(ln.free_vars), frozenset(rn.free_vars), widths,
        )
        formula: Formula = f
        if lf is not f.left or rf is not f.right:
            formula = OrF(lf, rf, span=f.span)
        node = PlanNode(
            op=UNION,
            formula=formula,
            routine=ROUTINES[UNION],
            free_vars=tuple(sorted(f.free_vars())),
            estimate=est,
            children=(ln, rn),
        )
        return node, formula

    def _complement(
        self,
        f: NotF,
        scope: frozenset[str],
        widths: Mapping[str, float],
    ) -> tuple[PlanNode, Formula]:
        on, of = self._build(f.operand, scope, widths)
        free = frozenset(f.free_vars())
        est = complement_estimate(on.estimate, free, widths)
        if len(free) >= 2:
            product = domain_product(free, widths)
            self._diag(
                "FTL602",
                f"NOT complements over the full domain product of "
                f"{len(free)} variables (~{int(product)} instantiations "
                "enumerated)",
                f,
            )
        formula: Formula = f if of is f.operand else NotF(of, span=f.span)
        node = PlanNode(
            op=COMPLEMENT,
            formula=formula,
            routine=ROUTINES[COMPLEMENT],
            free_vars=tuple(sorted(free)),
            estimate=est,
            children=(on,),
        )
        return node, formula

    def _until(
        self,
        f: "Until | UntilWithin",
        scope: frozenset[str],
        widths: Mapping[str, float],
    ) -> tuple[PlanNode, Formula]:
        ln, lf = self._build(f.left, scope, widths)
        rn, rf = self._build(f.right, scope, widths)
        vars1 = frozenset(ln.free_vars)
        vars2 = frozenset(rn.free_vars)
        est = until_estimate(ln.estimate, rn.estimate, vars1, vars2, widths)
        if isinstance(f, UntilWithin):
            self._quarantine_check(f)
        extras = vars1 - vars2
        if isinstance(f, Until) and extras:
            self._diag(
                "FTL603",
                f"unbounded UNTIL outer-enumerates {sorted(extras)} over "
                "their full domains for every right-side row",
                f,
            )
        detail = ""
        formula: Formula = f
        if isinstance(f, UntilWithin):
            detail = f"within {f.bound:g}"
            if lf is not f.left or rf is not f.right:
                formula = UntilWithin(f.bound, lf, rf, span=f.span)
        elif lf is not f.left or rf is not f.right:
            formula = Until(lf, rf, span=f.span)
        node = PlanNode(
            op=UNTIL_MERGE,
            formula=formula,
            routine=ROUTINES[UNTIL_MERGE],
            free_vars=tuple(sorted(vars1 | vars2)),
            estimate=est,
            children=(ln, rn),
            detail=detail,
        )
        return node, formula

    def _interval_map(
        self,
        f: Formula,
        scope: frozenset[str],
        widths: Mapping[str, float],
    ) -> tuple[PlanNode, Formula]:
        on, of = self._build(f.operand, scope, widths)  # type: ignore[attr-defined]
        kind = _MAP_KINDS[type(f)]
        self._quarantine_check(f)
        est = map_estimate(on.estimate, kind)
        bound = getattr(f, "bound", None)
        detail = kind if bound is None else f"{kind} {bound:g}"
        formula: Formula = f
        if of is not f.operand:  # type: ignore[attr-defined]
            if bound is None:
                formula = type(f)(of, span=f.span)  # type: ignore[call-arg]
            else:
                formula = type(f)(bound, of, span=f.span)  # type: ignore[call-arg]
        node = PlanNode(
            op=INTERVAL_MAP,
            formula=formula,
            routine=ROUTINES[INTERVAL_MAP],
            free_vars=tuple(sorted(f.free_vars())),
            estimate=est,
            children=(on,),
            detail=detail,
        )
        return node, formula

    def _assign_chain(
        self,
        f: Assign,
        scope: frozenset[str],
        widths: Mapping[str, float],
    ) -> tuple[PlanNode, Formula]:
        chain: list[Assign] = []
        g: Formula = f
        while isinstance(g, Assign):
            chain.append(g)
            g = g.body
        chain_vars = {a.var for a in chain}
        # Links are independent (hence commutative) when no link's term
        # mentions any chain-bound variable.
        independent = all(
            not (a.term.free_vars() & chain_vars) for a in chain
        )
        inner_widths = dict(widths)
        values = []
        for a in chain:
            v = assign_values_estimate(a.term, inner_widths, self.model)
            values.append(v)
            inner_widths[a.var] = v
        inner_scope = scope | chain_vars

        if self.order and independent and len(chain) > 1:
            perm = order_assignments(values)
        else:
            perm = list(range(len(chain)))
        reordered = perm != list(range(len(chain)))
        nest = [chain[i] for i in perm]  # outermost → innermost

        body_node, formula = self._build(g, inner_scope, inner_widths)
        node = body_node
        vars_b = frozenset(node.free_vars)
        for a in reversed(nest):
            term_vars = frozenset(a.term.free_vars())
            est = assign_estimate(
                node.estimate,
                assign_q_cost(a.term, widths, self.model),
                vars_b,
                a.var,
                term_vars,
                inner_widths,
            )
            vars_b = (vars_b - {a.var}) | term_vars
            rebuilt = Assign(a.var, a.term, formula, span=a.span)
            formula = a if rebuilt == a else rebuilt
            node = PlanNode(
                op=PROJECT,
                formula=formula,
                routine=ROUTINES[PROJECT],
                free_vars=tuple(sorted(vars_b)),
                estimate=est,
                children=(node,),
                detail=f"[{a.var} := {a.term}]",
                reordered=reordered and a is nest[0],
            )
        return node, formula


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def plan_formula(
    formula: Formula,
    bindings: Mapping[str, str] | None = None,
    model: CostModel | None = None,
    order: bool = True,
) -> EvalPlan:
    """Lower a formula to a cost-annotated (and, by default, cost-ordered)
    evaluation plan.

    Raises :class:`~repro.errors.FtlSemanticsError` on constructs no
    evaluator supports (the analyzer reports those as FTL304 first).
    """
    return _Lowerer(
        bindings=bindings or {},
        model=model or CostModel(),
        order=order,
    ).lower(formula)


def plan_query(
    query: "FtlQuery",
    model: CostModel | None = None,
    order: bool = True,
) -> EvalPlan:
    """Lower a query's WHERE clause under its FROM bindings."""
    return plan_formula(
        query.where, bindings=query.bindings, model=model, order=order
    )
