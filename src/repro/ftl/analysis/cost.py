"""Static cost & cardinality estimation for FTL evaluation plans.

The appendix algorithm is *fully precomputable*: every operator's input
and output shapes are fixed before the first tick is processed, so a
System R-style abstract interpretation over the plan IR (see ``plan.py``)
can bound, per node:

* ``tuples``    — an estimate of ``|R_g|``, the stored instantiations;
* ``intervals`` — intervals per stored tuple (interval-set fragmentation);
* ``cost``      — abstract work units to *build* the relation, counting
  child costs, probe/build sides of joins, domain enumerations and
  per-tick sampling;
* ``selectivity`` — ``tuples`` as a fraction of the full domain product
  of the node's free variables.

The lattice is deliberately simple — independence between conjuncts,
fixed per-predicate selectivities (``=`` 0.1, ordered comparisons 1/3,
``INSIDE`` 0.25, ...), multiplicative domain products — because its job
is *ordering* commutative operands and flagging blowups (FTL6xx), not
predicting wall-clock time.  ``drift_report`` closes the loop: with
``record_relations`` on, observed ``|R_g|`` sizes are compared against
these estimates so calibration tests can bound the error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.ftl.ast import (
    Attr,
    Compare,
    Dist,
    Formula,
    Inside,
    Outside,
    Term,
    WithinSphere,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.analysis.plan import EvalPlan
    from repro.ftl.relations import FtlRelation

#: Width assumed for an object class the model has no population for.
DEFAULT_CLASS_SIZE = 8

#: Horizon (in ticks) assumed when the caller supplies none.
DEFAULT_HORIZON = 32

#: Fixed selectivity per comparison operator (System R heuristics).
_CMP_SELECTIVITY = {
    "=": 0.1,
    "!=": 0.9,
    "<": 1 / 3,
    "<=": 1 / 3,
    ">": 1 / 3,
    ">=": 1 / 3,
}

#: Fixed selectivity per spatial predicate.
_SPATIAL_SELECTIVITY = {Inside: 0.25, Outside: 0.75, WithinSphere: 0.2}

#: Fraction of an atom's instantiations expected to *survive* the
#: trajectory-MBR index gate (repro/ftl/atoms.py) and actually require a
#: kinetic solve.  Region probes keep candidates of one box; the pairwise
#: self-join of sphere/dist atoms prunes harder.  Deliberately coarse —
#: drift_report closes the loop with observed pruning counts.
_INDEX_SURVIVAL = {Inside: 0.5, Outside: 0.5, WithinSphere: 0.4}


@dataclass(frozen=True)
class CostModel:
    """Static parameters of the abstract interpretation.

    ``class_sizes`` maps object-class name → population; classes absent
    from it (or the whole mapping, when ``None``) fall back to
    ``default_class_size`` — the analyzer runs schema-less, while
    :meth:`~repro.ftl.query.FtlQuery.plan_for` fills real populations in
    from a history.
    """

    class_sizes: Mapping[str, int] | None = None
    default_class_size: int = DEFAULT_CLASS_SIZE
    horizon: int = DEFAULT_HORIZON
    #: Whether atom evaluation runs behind the trajectory-MBR index gate
    #: (the evaluator's default); off, every instantiation solves.
    index_pruning: bool = True
    #: Whether surviving instantiations of a kinetic atom are submitted
    #: to the vectorized backend as one batch (DESIGN.md §8, the
    #: evaluator's default).  Solve *counts* are identical either way —
    #: batching changes how many solver invocations amortise them, which
    #: ``CostEstimate.solve_batches`` tracks.
    batch_solver: bool = True
    #: Worker processes of sharded evaluation (DESIGN.md §12).  Atom
    #: scans enumerate the split variable's domain shard-locally, so
    #: their *wall-clock* cost divides by the worker count while total
    #: work (``solves``) is unchanged; 1 (the default) models serial
    #: evaluation and leaves every estimate byte-identical.
    parallel_workers: int = 1

    @property
    def shard_factor(self) -> float:
        """Wall-clock divisor for work that shards across workers."""
        return max(1.0, float(self.parallel_workers))

    @property
    def ticks(self) -> int:
        """States in the evaluation window (``horizon + 1``)."""
        return max(1, int(self.horizon) + 1)

    def class_size(self, cls_name: str) -> float:
        """Estimated population of an object class."""
        if self.class_sizes is not None and cls_name in self.class_sizes:
            return max(1.0, float(self.class_sizes[cls_name]))
        return float(self.default_class_size)


@dataclass(frozen=True)
class CostEstimate:
    """Per-node bounds propagated by the abstract interpreter."""

    tuples: float
    intervals: float
    cost: float
    selectivity: float
    #: Expected kinetic solves to build the node (0 for sampled atoms and
    #: for instantiations the index gate answers; connectives sum their
    #: children).  Kept out of ``cost`` so conjunct ordering and its
    #: calibration are unchanged by the pruning estimate.
    solves: float = 0.0
    #: Expected *solver invocations* amortising those solves: with the
    #: batch backend each kinetic atom submits its surviving rows as a
    #: single batch (one invocation per atom node); scalar solving pays
    #: one per solve.  Like ``solves``, kept out of ``cost``.
    solve_batches: float = 0.0

    def to_json(self) -> dict[str, object]:
        """JSON-shaped estimate (rounded for stable golden files)."""
        return {
            "tuples": round(self.tuples, 3),
            "intervals": round(self.intervals, 3),
            "cost": round(self.cost, 3),
            "selectivity": round(self.selectivity, 6),
            "solves": round(self.solves, 3),
            "solve_batches": round(self.solve_batches, 3),
        }


def domain_product(
    variables: Iterable[str], widths: Mapping[str, float]
) -> float:
    """Product of the variables' domain widths (1.0 for the empty set)."""
    out = 1.0
    for v in variables:
        out *= max(1.0, float(widths.get(v, 1.0)))
    return out


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


def kinetic_eligible(f: Formula) -> bool:
    """Whether an atom can hit a closed-form kinetic solve (cost ~ one
    solve per instantiation) instead of per-tick sampling.

    Mirrors ``IntervalEvaluator``'s fast paths statically: spatial atoms
    always qualify; comparisons qualify when both sides are invariant, or
    when one side is ``DIST``/a (possibly dynamic) attribute and the
    other is invariant under an ordered ``<=``/``>=``.
    """
    if isinstance(f, (Inside, Outside, WithinSphere)):
        return True
    if isinstance(f, Compare):
        left_inv = f.left.is_time_invariant()
        right_inv = f.right.is_time_invariant()
        if left_inv and right_inv:
            return True
        if f.op not in ("<=", ">="):
            return False
        if isinstance(f.left, (Dist, Attr)) and right_inv:
            return True
        if isinstance(f.right, (Dist, Attr)) and left_inv:
            return True
    return False


def atom_selectivity(f: Formula) -> float:
    """Fixed selectivity of an atomic predicate."""
    sel = _SPATIAL_SELECTIVITY.get(type(f))
    if sel is not None:
        return sel
    if isinstance(f, Compare):
        if not (f.left.free_vars() | f.right.free_vars()):
            # Variable-free comparison: a constant filter — either the
            # full window or nothing; split the difference.
            return 0.5
        return _CMP_SELECTIVITY[f.op]
    return 0.5


def index_survival(f: Formula) -> float:
    """Fraction of an atom's instantiations expected to survive the
    trajectory-MBR gate and reach a kinetic solve."""
    sel = _INDEX_SURVIVAL.get(type(f))
    if sel is not None:
        return sel
    if isinstance(f, Compare) and (
        isinstance(f.left, Dist) or isinstance(f.right, Dist)
    ):
        # DIST-vs-bound comparisons prune via the pairwise self-join.
        return 0.4
    return 1.0


def atom_estimate(
    f: Formula, widths: Mapping[str, float], model: CostModel
) -> CostEstimate:
    """Base case: the atom scans the full domain product of its free
    variables, one kinetic solve (or ``ticks`` samples) per instantiation."""
    product = domain_product(sorted(f.free_vars()), widths)
    sel = atom_selectivity(f)
    invariant = isinstance(f, Compare) and (
        f.left.is_time_invariant() and f.right.is_time_invariant()
    )
    eligible = kinetic_eligible(f)
    per_inst = 1.0 if eligible else float(model.ticks)
    survival = index_survival(f) if model.index_pruning else 1.0
    # Both-invariant comparisons evaluate once without a solver call,
    # so only genuinely kinetic atoms contribute solves.
    solves = product * survival if eligible and not invariant else 0.0
    # The batch backend amortises all of an atom's solves into one
    # solver invocation; scalar solving pays one invocation per solve.
    if solves > 0.0:
        batches = 1.0 if model.batch_solver else solves
    else:
        batches = 0.0
    return CostEstimate(
        tuples=sel * product,
        intervals=1.0 if invariant else 2.0,
        # Atom scans enumerate shard-locally under sharded evaluation,
        # so wall-clock cost divides by the worker count; total work
        # (``solves``) does not — the shards partition it, not shrink it.
        cost=product * per_inst / model.shard_factor,
        selectivity=sel,
        solves=solves,
        solve_batches=batches,
    )


# ---------------------------------------------------------------------------
# Connectives
# ---------------------------------------------------------------------------


def join_estimate(
    e1: CostEstimate,
    e2: CostEstimate,
    vars1: frozenset[str],
    vars2: frozenset[str],
    widths: Mapping[str, float],
) -> CostEstimate:
    """Conjunction: hash join on shared variables, intervals intersect.

    Independence assumption: output selectivity is the product of the
    operands'.  Build + probe + output tuples are all charged.
    """
    out_vars = vars1 | vars2
    product = domain_product(out_vars, widths)
    sel = e1.selectivity * e2.selectivity
    tuples = sel * product
    return CostEstimate(
        tuples=tuples,
        intervals=min(e1.intervals, e2.intervals),
        cost=e1.cost + e2.cost + e1.tuples + e2.tuples + tuples,
        selectivity=sel,
        solves=e1.solves + e2.solves,
        solve_batches=e1.solve_batches + e2.solve_batches,
    )


def union_estimate(
    e1: CostEstimate,
    e2: CostEstimate,
    vars1: frozenset[str],
    vars2: frozenset[str],
    widths: Mapping[str, float],
) -> CostEstimate:
    """Disjunction enumerates the full domain product of the union
    variable set (the safety-restoring evaluation strategy)."""
    out_vars = vars1 | vars2
    product = domain_product(out_vars, widths)
    sel = 1.0 - (1.0 - e1.selectivity) * (1.0 - e2.selectivity)
    return CostEstimate(
        tuples=sel * product,
        intervals=e1.intervals + e2.intervals,
        cost=e1.cost + e2.cost + product,
        selectivity=sel,
        solves=e1.solves + e2.solves,
        solve_batches=e1.solve_batches + e2.solve_batches,
    )


def complement_estimate(
    e: CostEstimate, variables: frozenset[str], widths: Mapping[str, float]
) -> CostEstimate:
    """Negation complements within the window over the full enumerable
    domain product — the FTL602 blowup this module exists to flag."""
    product = domain_product(variables, widths)
    sel = max(0.05, 1.0 - e.selectivity)
    return CostEstimate(
        tuples=sel * product,
        intervals=e.intervals + 1.0,
        cost=e.cost + product,
        selectivity=sel,
        solves=e.solves,
        solve_batches=e.solve_batches,
    )


def until_estimate(
    e1: CostEstimate,
    e2: CostEstimate,
    vars1: frozenset[str],
    vars2: frozenset[str],
    widths: Mapping[str, float],
) -> CostEstimate:
    """Until chain-merge: outer on the left side, so left-only variables
    are enumerated over their full domains per right-side row."""
    extras = vars1 - vars2
    extra_product = domain_product(extras, widths)
    out_vars = vars1 | vars2
    product = domain_product(out_vars, widths)
    sel = min(1.0, e2.selectivity * 1.5)
    tuples = sel * product
    return CostEstimate(
        tuples=tuples,
        intervals=e2.intervals,
        cost=e1.cost + e2.cost + e1.tuples
        + e2.tuples * max(1.0, extra_product) + tuples,
        selectivity=sel,
        solves=e1.solves + e2.solves,
        solve_batches=e1.solve_batches + e2.solve_batches,
    )


#: Interval-map kinds that collapse each tuple's set to at most one run.
_COLLAPSING_KINDS = frozenset({"eventually", "always"})
#: Kinds that extend truth backwards (selectivity grows).
_WIDENING_KINDS = frozenset(
    {"eventually", "eventually-within", "eventually-after", "nexttime"}
)


def map_estimate(e: CostEstimate, kind: str) -> CostEstimate:
    """Per-tuple interval-set transform (the bounded operators of §3.4
    plus the derived unbounded forms): cardinality is preserved, the
    interval structure and selectivity shift."""
    if kind in _WIDENING_KINDS:
        sel = min(1.0, e.selectivity * 1.5)
    else:  # always / always-for erode truth.
        sel = e.selectivity * 0.5
    intervals = 1.0 if kind in _COLLAPSING_KINDS else e.intervals
    return CostEstimate(
        tuples=e.tuples,
        intervals=intervals,
        cost=e.cost + e.tuples,
        selectivity=sel,
        solves=e.solves,
        solve_batches=e.solve_batches,
    )


# ---------------------------------------------------------------------------
# Assignment quantifier
# ---------------------------------------------------------------------------


def assign_values_estimate(
    term: Term, widths: Mapping[str, float], model: CostModel
) -> float:
    """Estimated width of the assigned variable's candidate-value domain:
    the ``Q`` relation pools one value per (instantiation, value-run)."""
    base = domain_product(sorted(term.free_vars()), widths)
    if term.is_time_invariant():
        return base
    return base * float(model.ticks)


def assign_q_cost(
    term: Term, widths: Mapping[str, float], model: CostModel
) -> float:
    """Work to build ``Q``: invariant terms evaluate once per
    instantiation, time-varying ones once per tick."""
    base = domain_product(sorted(term.free_vars()), widths)
    if term.is_time_invariant():
        return base
    return base * float(model.ticks)


def assign_estimate(
    body: CostEstimate,
    q_cost: float,
    body_vars: frozenset[str],
    var: str,
    term_vars: frozenset[str],
    widths: Mapping[str, float],
) -> CostEstimate:
    """``[x := q] g``: join body rows against ``Q`` on the assigned
    column, project the assigned variable out."""
    out_vars = (body_vars - {var}) | term_vars
    product = domain_product(out_vars, widths)
    tuples = body.selectivity * product
    return CostEstimate(
        tuples=tuples,
        intervals=body.intervals,
        cost=q_cost + body.cost + body.tuples + tuples,
        selectivity=body.selectivity,
        solves=body.solves,
        solve_batches=body.solve_batches,
    )


# ---------------------------------------------------------------------------
# Estimate-vs-actual drift
# ---------------------------------------------------------------------------


def drift_report(
    plan: "EvalPlan",
    trace: Mapping[int, "FtlRelation"],
    atom_stats: Mapping[int, Mapping[str, object]] | None = None,
) -> list[dict]:
    """Compare observed ``|R_g|`` sizes against the plan's static
    estimates.

    ``trace`` is an evaluator trace keyed by ``id(subformula)`` of the
    plan's *ordered* formula tree (``record_relations`` wiring in
    :class:`~repro.ftl.query.CompiledQuery`).  Each row reports the
    estimated and observed tuple counts and their ratio
    (``observed / estimated``) — the calibration signal.

    ``atom_stats`` is the evaluator's per-atom acceleration accounting
    (also keyed by ``id(subformula)``); when given, atom rows additionally
    report estimated vs. observed kinetic solves and the pruned
    instantiation count, closing the loop on the index-selectivity
    estimates of :func:`index_survival`.
    """
    rows: list[dict] = []
    for path, node in plan.nodes_with_paths():
        relation = trace.get(id(node.formula))
        if relation is None:
            continue
        observed = float(len(relation))
        estimated = node.estimate.tuples
        if estimated > 0:
            ratio = observed / estimated
        else:
            ratio = 0.0 if observed == 0 else float("inf")
        row = {
            "path": path,
            "op": node.op,
            "formula": str(node.formula),
            "estimated_tuples": round(estimated, 3),
            "observed_tuples": observed,
            "ratio": round(ratio, 4),
        }
        stats = (
            atom_stats.get(id(node.formula))
            if atom_stats is not None
            else None
        )
        if stats is not None:
            row["estimated_solves"] = round(node.estimate.solves, 3)
            row["observed_solves"] = int(stats.get("solves", 0))
            row["pruned_instantiations"] = int(stats.get("pruned", 0))
            row["cache_hits"] = int(stats.get("cache_hits", 0))
        rows.append(row)
    return rows
