"""The multi-pass static analyzer over the FTL AST.

Runs, in order: binding/scope (FTL1xx), sort checking (FTL2xx), safety /
range restriction (FTL3xx), fragment classification (FTL4xx), lints
(FTL5xx) and plan/cost analysis (FTL6xx — the formula is lowered to an
evaluation plan and its abstract cost interpretation flags cross-product
conjunctions, domain-complement blowups, unbounded ``Until`` enumeration
and repeated subformulas).  Passes are independent walks — a failure in
one never hides findings of another — and the result aggregates every
diagnostic sorted by source position.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import FtlSemanticsError
from repro.ftl.analysis.diagnostics import AnalysisResult, make
from repro.ftl.analysis.fragment import classify
from repro.ftl.analysis.lints import check_lints
from repro.ftl.analysis.safety import check_safety
from repro.ftl.analysis.schema import SchemaInfo
from repro.ftl.analysis.scopes import check_scopes
from repro.ftl.analysis.sorts import SortChecker
from repro.ftl.ast import Formula

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.query import FtlQuery


def analyze_formula(
    formula: Formula,
    bindings: dict[str, str] | None = None,
    schema: object = None,
) -> AnalysisResult:
    """Analyze a bare formula under FROM-clause ``bindings``."""
    schema_info = SchemaInfo.coerce(schema)
    bindings = dict(bindings or {})
    result = AnalysisResult()
    result.diagnostics.extend(check_scopes(formula, bindings))
    result.diagnostics.extend(SortChecker(schema_info).check(formula, bindings))
    result.diagnostics.extend(check_safety(formula))
    fragment, fragment_diags = classify(formula)
    result.fragment = fragment
    result.diagnostics.extend(fragment_diags)
    result.diagnostics.extend(check_lints(formula))
    result.diagnostics.extend(_plan_lints(formula, bindings))
    return result.sorted()


def _plan_lints(formula: Formula, bindings: dict[str, str]) -> "list[Diagnostic]":
    """Pass 6: lower to an evaluation plan and collect FTL6xx findings.

    Lowering fails only on constructs no evaluator supports — those are
    already reported as FTL304 by the safety pass, so failures here are
    silently skipped rather than double-reported.
    """
    from repro.ftl.analysis.plan import plan_formula

    try:
        plan = plan_formula(formula, bindings=bindings)
    except FtlSemanticsError:
        return []
    return list(plan.diagnostics)


def analyze_query(query: "FtlQuery", schema: object = None) -> AnalysisResult:
    """Analyze a full query: clause-level checks plus the formula passes."""
    schema_info = SchemaInfo.coerce(schema)
    result = AnalysisResult()
    spans = query.spans

    free = query.where.free_vars()
    for i, target in enumerate(query.targets):
        span = None
        if spans is not None and i < len(spans.targets):
            span = spans.targets[i]
        if target not in query.bindings:
            result.diagnostics.append(
                make(
                    "FTL102",
                    f"RETRIEVE target {target!r} is not bound by FROM",
                    span=span,
                )
            )
        elif target not in free:
            result.diagnostics.append(
                make(
                    "FTL403",
                    f"RETRIEVE target {target!r} does not occur in WHERE; "
                    "it free-ranges over its class and disables "
                    "incremental maintenance",
                    span=span,
                )
            )
    if schema_info.knows_classes():
        for var, cls_name in query.bindings.items():
            if schema_info.object_class(cls_name) is None:
                span = None
                if spans is not None:
                    span = spans.binding_classes.get(var)
                result.diagnostics.append(
                    make(
                        "FTL201",
                        f"FROM binds {var!r} to unknown object class "
                        f"{cls_name!r}",
                        span=span,
                    )
                )

    formula_result = analyze_formula(
        query.where, bindings=query.bindings, schema=schema_info
    )
    result.diagnostics.extend(formula_result.diagnostics)
    result.fragment = formula_result.fragment
    return result.sorted()
