"""Static semantic analysis of FTL queries (pre-evaluation gating).

A multi-pass analyzer over the FTL AST that runs *before* any evaluator
touches the database:

1. **binding/scope** (FTL1xx) — unbound variables, ``[x := q]``
   shadowing, unused assignments;
2. **sort checking** (FTL2xx) — attribute existence against the schema,
   dynamic-vs-static use, numeric/spatial/region operand compatibility;
3. **safety / range restriction** (FTL3xx) — the paper's atomic-query
   safety assumption made checkable, plus guaranteed evaluation
   failures;
4. **fragment classification** (FTL4xx) — temporal depth, bounded vs
   unbounded operators, incremental eligibility with a diagnostic naming
   the disqualifying subformula;
5. **lints** (FTL5xx) — vacuous bounds, constant-foldable comparisons,
   vacuous ``Until``;
6. **plan & cost analysis** (FTL6xx) — the formula is lowered to an
   evaluation-plan IR (``plan.py``), an abstract interpreter propagates
   cardinality/interval/cost bounds over it (``cost.py``), a cost-based
   orderer reorders commutative conjuncts and assignment chains
   (``order.py``), and blowups are flagged: cross-product conjunctions,
   multi-variable negation complements, unbounded ``Until`` enumeration,
   re-evaluated common subformulas;
7. **update-impact / read-set analysis** (FTL7xx, ``deps.py``) — every
   plan node gets a ``ReadSet`` of ``(kind, class, detail)`` dependencies
   propagated bottom-up; ``update_footprint`` maps a database update to
   the dep it writes, and the runtime prunes provably irrelevant work at
   the listener (``ContinuousQuery.affects``), inside incremental
   refreshes (subtree skipping) and in the server's refresh round.
   Report-only diagnostics: FTL701 (maximal read-set nodes), FTL702
   (per-class insensitivity); surfaced via the plan JSON ``dependencies``
   block and ``python -m repro.ftl.lint --deps`` — never in the default
   analyzer passes, never gating evaluation.
8. **temporal-validity analysis** (FTL8xx, ``validity.py``) — every
   plan node gets a symbolic validity :class:`~repro.ftl.analysis.
   validity.Horizon` describing the interval of evaluation times
   ``[t_eval, t_expire)`` over which its cached relation stays provably
   reusable, derived from the motion functions reachable through its
   pass-7 read-set with window arithmetic for temporal operators;
   :func:`~repro.ftl.analysis.validity.class_motion_events` and
   :func:`~repro.ftl.analysis.validity.update_divergence` concretize
   the horizons at refresh time so continuous queries, the incremental
   evaluator and the kinetic-solve cache can skip provably redundant
   work.  Report-only diagnostics: FTL801 (finite horizon), FTL802
   (constant answer), FTL803 (bottom nodes); surfaced via the plan JSON
   ``validity`` block and ``python -m repro.ftl.lint --validity``.

Entry points: :func:`analyze_query` / :func:`analyze_formula`,
:func:`plan_query` / :func:`plan_formula`, the
:class:`~repro.ftl.query.QueryCompiler` wrapper, and the CLIs
``python -m repro.ftl.lint`` / ``python -m repro.ftl.explain``.
"""

from repro.ftl.analysis.analyzer import analyze_formula, analyze_query
from repro.ftl.analysis.cost import CostEstimate, CostModel, drift_report
from repro.ftl.analysis.deps import (
    Dep,
    DepAnalysis,
    ReadSet,
    analyze_formula_deps,
    analyze_query_deps,
    update_footprint,
)
from repro.ftl.analysis.diagnostics import (
    ERROR,
    INFO,
    RULES,
    WARNING,
    AnalysisResult,
    Diagnostic,
    FtlLintWarning,
)
from repro.ftl.analysis.fragment import FragmentInfo, incremental_blockers
from repro.ftl.analysis.plan import EvalPlan, PlanNode, plan_formula, plan_query
from repro.ftl.analysis.schema import SchemaInfo
from repro.ftl.analysis.validity import (
    Constraint,
    Horizon,
    ValidityAnalysis,
    analyze_formula_validity,
    analyze_query_validity,
    class_motion_events,
    update_divergence,
)

__all__ = [
    "analyze_query",
    "analyze_formula",
    "analyze_formula_deps",
    "analyze_query_deps",
    "analyze_formula_validity",
    "analyze_query_validity",
    "class_motion_events",
    "update_divergence",
    "update_footprint",
    "AnalysisResult",
    "Dep",
    "DepAnalysis",
    "ReadSet",
    "Constraint",
    "CostEstimate",
    "CostModel",
    "Diagnostic",
    "Horizon",
    "ValidityAnalysis",
    "EvalPlan",
    "FtlLintWarning",
    "FragmentInfo",
    "PlanNode",
    "drift_report",
    "incremental_blockers",
    "plan_formula",
    "plan_query",
    "SchemaInfo",
    "RULES",
    "ERROR",
    "WARNING",
    "INFO",
]
