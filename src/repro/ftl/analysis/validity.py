"""Static temporal-validity analysis: per-node validity horizons (pass 8).

PR 8's read-sets (:mod:`repro.ftl.analysis.deps`) answer *which updates
matter*; this pass answers *for how long an answer stays true* — the
time axis of Mülle & Böhlen's "ongoing query results".  For every node
of a formula tree the walker computes a :class:`Horizon`: a symbolic
description of the interval of evaluation times ``[t_eval, t_expire)``
over which the node's cached relation is provably reusable, given the
motion functions its read-set reaches.

The abstraction is a two-stage design:

1. **Static stage** (this walker, schema-only, no database): a horizon
   is ⊥ (*bottom*: nothing provable, ``t_expire = t_eval``) or a set of
   :class:`Constraint`\\ s over the *dynamic classes* the node reads.  A
   *sliding* constraint with offset ``o`` says the node reads kinetic
   state up to ``o`` ticks ahead of the evaluation instant, so it
   expires ``o`` before the earliest future motion event of its
   classes; a *guarded* constraint says the node reads all the way to
   the evaluation horizon, so it is valid forever iff no motion event
   occurs before ``end + o`` and expires immediately otherwise.  A
   horizon with no constraints is *constant*: valid through the query's
   expiration horizon.
2. **Concretization** (:meth:`Horizon.concretize`, cheap, per refresh):
   given the per-class earliest-future-motion-event table from
   :func:`class_motion_events`, every node's symbolic horizon collapses
   to one absolute ``t_expire``.

Propagation rules (window arithmetic):

* atoms — ⊥ when the read-set is conservative; constant when no
  dynamic class is read; else one sliding constraint at offset 0;
* ``AND``/``OR``/``NOT`` — union of the children (⊥ absorbs);
* bounded operators — ``Nexttime`` shifts sliding offsets by 1,
  ``eventually within c`` / ``always for c`` / ``until within c`` by
  ``c`` (a node answering about ``[t, t+c]`` reads ``c`` ahead);
* unbounded operators (``Until``, ``Eventually``, ``Always``,
  ``eventually after c``) — children's sliding constraints become
  guarded: the operator reads to the evaluation horizon, so a single
  future motion event anywhere before it can flip the answer;
* ``[x := term] f`` — the body's horizon unioned with a sliding-0
  constraint over the dynamic classes the *term* reads beyond the body
  (sound because a shared class already carries a body constraint that
  concretizes at or before the class event);
* anything outside the grammar — ⊥.

Soundness contract consumed by :class:`~repro.core.queries.
ContinuousQuery`, :class:`~repro.ftl.incremental.
PartialIntervalEvaluator` and the kinetic-solve cache: re-evaluating a
node at any ``t' ∈ [t_eval, t_expire)`` over the same remaining window
provably yields the already-cached relation, and an update whose
:func:`update_divergence` lies at or beyond the window end cannot
change any relation computed over that window.

Population reads deliberately do **not** bottom a node: population
changes never travel the explicit-update stream (see
``UPDATE_SENSITIVE_KINDS`` in deps.py), and every consumer re-derives
its concrete stamps from the live database at each refresh, so a
membership change is re-observed at the next refresh exactly as it is
for the PR 8 dependency skips.

Like the rest of the analysis package this module must not import
:mod:`repro.core`; databases, objects and updates are duck-typed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.ftl.analysis.deps import (
    ATTRIBUTE,
    POSITION,
    DepAnalysis,
    ReadSet,
    _child_formulas,
    _subformulas,
    analyze_formula_deps,
)
from repro.ftl.analysis.diagnostics import Diagnostic, make
from repro.ftl.ast import (
    Always,
    AlwaysFor,
    Assign,
    Compare,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Inside,
    Nexttime,
    Outside,
    Until,
    UntilWithin,
    WithinSphere,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.query import FtlQuery

INF = float("inf")

#: Events table: per class, the earliest future motion event, ``inf``
#: when none exists before the horizon, ``None`` when the class carries
#: motion the analysis cannot bound (non-piecewise-linear functions).
ClassEvents = Mapping[str, "float | None"]


# ---------------------------------------------------------------------------
# The symbolic lattice
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Constraint:
    """One symbolic expiry constraint over a set of dynamic classes.

    Sliding (``guarded=False``): ``t_expire = min_event(classes) -
    offset``.  Guarded (``guarded=True``): ``t_expire = ∞`` when
    ``min_event(classes) >= end + offset`` else ``t_eval``.
    """

    guarded: bool
    offset: float
    classes: frozenset[str]

    def shifted(self, delta: float) -> "Constraint":
        """Window arithmetic for bounded operators: the node now reads
        ``delta`` further ahead.  Guarded constraints already pin the
        evaluation horizon, so they are unchanged."""
        if self.guarded or delta == 0.0:
            return self
        return Constraint(False, self.offset + delta, self.classes)

    def guardified(self) -> "Constraint":
        """Window arithmetic for unbounded operators."""
        if self.guarded:
            return self
        return Constraint(True, self.offset, self.classes)

    def concretize(self, events: ClassEvents, t_eval: float, end: float) -> float:
        earliest = INF
        for cls in self.classes:
            event = events.get(cls, None)
            if event is None:
                return t_eval  # unbounded (nonlinear) motion: unprovable
            earliest = min(earliest, event)
        if self.guarded:
            return INF if earliest >= end + self.offset else t_eval
        return earliest - self.offset

    def to_json(self) -> dict[str, object]:
        return {
            "mode": "guarded" if self.guarded else "sliding",
            "offset": self.offset,
            "classes": sorted(self.classes),
        }


@dataclass(frozen=True)
class Horizon:
    """A node's symbolic validity horizon.

    ``bottom`` (with a human ``reason``) means nothing is provable:
    concretization always yields ``t_expire = t_eval``.  Otherwise the
    horizon is the conjunction of ``constraints`` — no constraints means
    *constant* (valid through the query's expiration horizon).
    """

    bottom: bool = False
    reason: str = ""
    constraints: frozenset[Constraint] = frozenset()

    @property
    def kind(self) -> str:
        """``bottom`` / ``constant`` / ``sliding`` / ``guarded``."""
        if self.bottom:
            return "bottom"
        if not self.constraints:
            return "constant"
        if any(not c.guarded for c in self.constraints):
            return "sliding"
        return "guarded"

    def classes(self) -> list[str]:
        """Every dynamic class any constraint mentions, sorted."""
        return sorted({c for con in self.constraints for c in con.classes})

    @staticmethod
    def union(horizons: Iterable["Horizon"]) -> "Horizon":
        constraints: set[Constraint] = set()
        for h in horizons:
            if h.bottom:
                return h
            constraints |= h.constraints
        return Horizon(constraints=frozenset(constraints))

    def shifted(self, delta: float) -> "Horizon":
        if self.bottom or not self.constraints:
            return self
        return Horizon(
            constraints=frozenset(c.shifted(delta) for c in self.constraints)
        )

    def guardified(self) -> "Horizon":
        if self.bottom or not self.constraints:
            return self
        return Horizon(
            constraints=frozenset(c.guardified() for c in self.constraints)
        )

    def concretize(self, events: ClassEvents, t_eval: float, end: float) -> float:
        """The absolute ``t_expire`` under a concrete event table, always
        clamped to ``>= t_eval`` (a horizon never expires in the past)."""
        if self.bottom:
            return t_eval
        expire = INF
        for c in self.constraints:
            expire = min(expire, c.concretize(events, t_eval, end))
            if expire <= t_eval:
                return t_eval
        return max(expire, t_eval)

    def to_json(self) -> dict[str, object]:
        out: dict[str, object] = {"kind": self.kind}
        if self.bottom:
            out["reason"] = self.reason
        elif self.constraints:
            out["constraints"] = sorted(
                (c.to_json() for c in self.constraints),
                key=lambda c: (str(c["mode"]), str(c["classes"]), str(c["offset"])),
            )
        return out


UNBOUNDED = Horizon()


def _bottom(reason: str) -> Horizon:
    return Horizon(bottom=True, reason=reason)


def _dynamic_classes(rs: ReadSet) -> frozenset[str]:
    """The classes whose *kinetic* state (position or dynamic attribute)
    a read-set reaches — the ones whose motion events bound validity."""
    return frozenset(
        d.cls
        for d in rs.deps
        if d.cls is not None and d.kind in (POSITION, ATTRIBUTE)
    )


# ---------------------------------------------------------------------------
# The bottom-up walker
# ---------------------------------------------------------------------------

_ATOM_TYPES = (Compare, Inside, Outside, WithinSphere)


class _ValidityWalker:
    """One analysis run over the same tree a :class:`DepAnalysis` was
    computed for, memoized by node identity like the dep walker."""

    def __init__(self, deps: DepAnalysis) -> None:
        self.deps = deps
        self.horizons: dict[int, Horizon] = {}

    def walk(self, f: Formula) -> Horizon:
        hit = self.horizons.get(id(f))
        if hit is not None:
            return hit
        h = self._node(f)
        self.horizons[id(f)] = h
        return h

    def _node(self, f: Formula) -> Horizon:
        if isinstance(f, _ATOM_TYPES):
            return self._atom(f)
        if isinstance(f, Assign):
            return self._assign(f)
        if isinstance(f, Nexttime):
            return self.walk(f.operand).shifted(1.0)
        if isinstance(f, EventuallyWithin):
            return self.walk(f.operand).shifted(float(f.bound))
        if isinstance(f, AlwaysFor):
            return self.walk(f.operand).shifted(float(f.bound))
        if isinstance(f, UntilWithin):
            return Horizon.union(
                (self.walk(f.left), self.walk(f.right))
            ).shifted(float(f.bound))
        if isinstance(f, (Eventually, Always)):
            return self.walk(f.operand).guardified()
        if isinstance(f, EventuallyAfter):
            return self.walk(f.operand).guardified()
        if isinstance(f, Until):
            return Horizon.union(
                (self.walk(f.left), self.walk(f.right))
            ).guardified()
        children = _child_formulas(f)
        if children:
            return Horizon.union(self.walk(c) for c in children)
        return _bottom("formula shape outside the analyzed grammar")

    def _atom(self, f: Formula) -> Horizon:
        rs = self.deps.reads_for(f)
        if rs is None:
            return _bottom("node has no read-set")
        if rs.conservative:
            return _bottom("conservative read-set (unattributable term)")
        classes = _dynamic_classes(rs)
        if not classes:
            return UNBOUNDED
        return Horizon(
            constraints=frozenset({Constraint(False, 0.0, classes)})
        )

    def _assign(self, f: Assign) -> Horizon:
        body = self.walk(f.body)
        rs = self.deps.reads_for(f)
        if rs is None or rs.conservative:
            return _bottom("conservative read-set (unattributable term)")
        body_rs = self.deps.reads_for(f.body)
        body_classes = (
            _dynamic_classes(body_rs) if body_rs is not None else frozenset()
        )
        term_classes = _dynamic_classes(rs) - body_classes
        if not term_classes:
            return body
        term = Horizon(
            constraints=frozenset({Constraint(False, 0.0, term_classes)})
        )
        return Horizon.union((body, term))


# ---------------------------------------------------------------------------
# Analysis result + diagnostics
# ---------------------------------------------------------------------------


@dataclass
class ValidityAnalysis:
    """Symbolic horizons of one formula tree.

    ``horizons`` is keyed by ``id(subformula)`` over the analyzed tree —
    the same keying as :class:`DepAnalysis.reads` and the incremental
    evaluator's subformula cache, so runtime consumers can stamp cached
    relations directly.
    """

    root: Formula
    deps: DepAnalysis
    horizons: dict[int, Horizon]
    root_horizon: Horizon
    diagnostics: tuple[Diagnostic, ...] = ()

    def horizon_for(self, f: Formula) -> Horizon | None:
        """The horizon of one node of the analyzed tree (``None`` when
        the node belongs to a different tree)."""
        return self.horizons.get(id(f))

    def dynamic_classes(self) -> frozenset[str]:
        """Every class whose motion events any node's horizon depends
        on — the classes :func:`class_motion_events` must scan."""
        return frozenset(
            cls
            for h in self.horizons.values()
            for c in h.constraints
            for cls in c.classes
        )

    def concretize(
        self, events: ClassEvents, t_eval: float, end: float
    ) -> dict[int, float]:
        """Per-node absolute expiry stamps for one refresh at ``t_eval``
        with remaining window ending at ``end``."""
        return {
            node_id: h.concretize(events, t_eval, end)
            for node_id, h in self.horizons.items()
        }

    def root_expiry(
        self, events: ClassEvents, t_eval: float, end: float
    ) -> float:
        """The whole condition's ``t_expire`` under a concrete event
        table."""
        return self.root_horizon.concretize(events, t_eval, end)

    def to_json(self) -> dict[str, object]:
        counts = {"bottom": 0, "constant": 0, "sliding": 0, "guarded": 0}
        for h in self.horizons.values():
            counts[h.kind] += 1
        return {
            "root": self.root_horizon.to_json(),
            "classes": sorted(self.dynamic_classes()),
            "nodes": {"total": len(self.horizons), **counts},
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }


def _validity_diagnostics(
    root: Formula, horizons: dict[int, Horizon], root_horizon: Horizon
) -> tuple[Diagnostic, ...]:
    """FTL801 (finite horizon), FTL802 (constant), FTL803 (bottom).

    FTL803 fires on *maximal* bottom nodes only, mirroring FTL701."""
    diagnostics: list[Diagnostic] = []
    if root_horizon.bottom:
        pass  # the FTL803 walk below names the offending node(s)
    elif not root_horizon.constraints:
        diagnostics.append(
            make(
                "FTL802",
                "condition reads no time-varying state; its cached "
                "answer stays valid through the query's expiration "
                "horizon",
                span=root.span,
            )
        )
    else:
        classes = ", ".join(root_horizon.classes())
        diagnostics.append(
            make(
                "FTL801",
                f"condition has a {root_horizon.kind} validity horizon "
                f"driven by motion events of class(es) {classes}; cached "
                "answers are reusable until the earliest such event",
                span=root.span,
            )
        )

    def bottom_walk(f: Formula) -> None:
        h = horizons.get(id(f))
        if h is not None and h.bottom:
            diagnostics.append(
                make(
                    "FTL803",
                    f"no provable validity horizon ({h.reason}); "
                    "t_expire conservatively falls back to t_eval",
                    span=f.span,
                    subformula=f,
                )
            )
            return
        for child in _subformulas(f):
            bottom_walk(child)

    bottom_walk(root)
    return tuple(diagnostics)


def analyze_formula_validity(
    formula: Formula,
    bindings: Mapping[str, str] | None = None,
    schema: object = None,
    deps: DepAnalysis | None = None,
) -> ValidityAnalysis:
    """Compute per-node validity horizons of a bare formula.

    Pass a pre-computed ``deps`` (from the *same* tree) to reuse PR 8's
    read-sets; otherwise they are computed here.
    """
    if deps is None:
        deps = analyze_formula_deps(formula, bindings=bindings, schema=schema)
    walker = _ValidityWalker(deps)
    root_horizon = walker.walk(formula)
    diagnostics = _validity_diagnostics(formula, walker.horizons, root_horizon)
    return ValidityAnalysis(
        root=formula,
        deps=deps,
        horizons=walker.horizons,
        root_horizon=root_horizon,
        diagnostics=diagnostics,
    )


def analyze_query_validity(
    query: "FtlQuery",
    schema: object = None,
    formula: Formula | None = None,
    deps: DepAnalysis | None = None,
) -> ValidityAnalysis:
    """Compute validity horizons for a query's WHERE clause.

    ``formula`` substitutes the analyzed tree — continuous queries pass
    their plan's *ordered* tree so the per-node keys match the evaluator
    caches (same contract as :func:`analyze_query_deps`).
    """
    return analyze_formula_validity(
        formula if formula is not None else query.where,
        bindings=query.bindings,
        schema=schema,
        deps=deps,
    )


# ---------------------------------------------------------------------------
# Runtime concretization inputs
# ---------------------------------------------------------------------------


def class_motion_events(
    db: Any, classes: Iterable[str], t_eval: float, end: float
) -> dict[str, float | None]:
    """Per class, the earliest motion event strictly after ``t_eval``.

    A *motion event* is an absolute time at which some object's dynamic
    attribute changes its kinetic character: the start of a
    piecewise-linear leg (``updatetime + breakpoint``).  ``inf`` means
    no event before the horizon ``end``; ``None`` means the class
    carries a function the analysis cannot bound (non-piecewise-linear),
    which concretizes every dependent horizon to ⊥.

    ``db`` is duck-typed as a :class:`~repro.core.database.MostDatabase`
    (``objects_of``); objects expose ``object_class.all_dynamic`` and
    ``dynamic_attribute``.
    """
    events: dict[str, float | None] = {}
    for cls in sorted(set(classes)):
        try:
            objects = list(db.objects_of(cls))
        except Exception:
            events[cls] = None
            continue
        earliest = INF
        nonlinear = False
        for obj in objects:
            for attr in obj.object_class.all_dynamic:
                triple = obj.dynamic_attribute(attr)
                duration = max(end - float(triple.updatetime), 0.0)
                bps = triple.function.linear_breakpoints(duration)
                if bps is None:
                    nonlinear = True
                    break
                for rel_t, _slope in bps:
                    t_abs = float(triple.updatetime) + rel_t
                    if t_abs > t_eval:
                        earliest = min(earliest, t_abs)
                        break  # pieces are sorted ascending
            if nonlinear:
                break
        events[cls] = None if nonlinear else earliest
    return events


def update_divergence(update: Any, end: float) -> float:
    """The earliest time at which an update's new state observably
    diverges from the old within ``[update.time, end)``.

    Returns ``inf`` when old and new are provably indistinguishable over
    the whole window — e.g. a pure re-anchor "heartbeat" that restates
    the value the old motion already implied — so a refresh computed
    from the old state is still exact.  Any doubt (clock regression,
    non-piecewise-linear functions, incomparable values) returns
    ``update.time`` itself: diverges immediately, never skip.

    For piecewise-linear old/new functions the proof obligation is
    finite: both value curves are linear between the merged breakpoint
    cut points, so exact equality at every cut implies identity on the
    whole window.  Comparisons are exact (``==``); floating-point noise
    can only make the result *smaller* (a spurious early divergence),
    which costs a refresh but never soundness.
    """
    t_u = float(update.time)
    old = getattr(update, "old", None)
    new = getattr(update, "new", None)
    if getattr(update, "kind", "dynamic") == "static":
        try:
            return INF if bool(old == new) else t_u
        except Exception:
            return t_u
    try:
        old_ut = float(old.updatetime)  # type: ignore[union-attr]
        new_ut = float(new.updatetime)  # type: ignore[union-attr]
        old_fn = old.function  # type: ignore[union-attr]
        new_fn = new.function  # type: ignore[union-attr]
    except (AttributeError, TypeError):
        return t_u
    if new_ut < old_ut:
        return t_u  # clock regression: old state is not a valid baseline
    old_bps = old_fn.linear_breakpoints(max(end - old_ut, 0.0))
    new_bps = new_fn.linear_breakpoints(max(end - new_ut, 0.0))
    if old_bps is None or new_bps is None:
        return t_u
    t0 = max(t_u, new_ut)
    if end <= t0:
        return INF  # the new state is never observed inside the window
    cuts = {t0, end}
    for anchor, bps in ((old_ut, old_bps), (new_ut, new_bps)):
        for rel_t, _slope in bps:
            t_abs = anchor + rel_t
            if t0 < t_abs < end:
                cuts.add(t_abs)
    ordered = sorted(cuts)
    for i, cut in enumerate(ordered):
        try:
            same = bool(old.value_at(cut) == new.value_at(cut))  # type: ignore[union-attr]
        except Exception:
            return t_u
        if not same:
            return ordered[i - 1] if i > 0 else ordered[0]
    return INF
