"""Static update-impact analysis: per-node read-sets over the FTL AST.

For every subformula the analyzer computes its *read-set* — the set of
:class:`Dep` dependencies ``(kind, class, detail)`` the subformula's
relation can observe:

* ``position`` — a kinetic read of the class's position attributes
  (``DIST``, ``INSIDE``/``OUTSIDE``, ``WITHIN_SPHERE``, or a direct
  ``o.x_position`` access); ``detail`` names one axis attribute, or is
  empty for "all axes";
* ``attribute`` — a non-spatial dynamic attribute (``o.fuel``);
* ``static`` — a static attribute (``o.fuel_type``);
* ``region`` — the geometry of a named region (immutable after
  :meth:`~repro.core.database.MostDatabase.define_region`, so no
  explicit update ever invalidates it — reported for completeness);
* ``population`` — membership of the class extent (which objects exist
  and are enumerated into the variable's domain).

Read-sets propagate bottom-up: every connective, temporal operator and
the assignment quantifier unions its children's sets, so a node's
read-set is monotone in its subtree and a *disjoint* node is maximal.
Hash-consed shared plan nodes are scope-independent by construction
(:mod:`repro.ftl.analysis.plan` only shares formulas with no
assignment-bound free variable), and value variables bound by ``[x :=
q]`` carry no class of their own — the deps of ``q`` are charged where
``q`` occurs — so one read-set per node is correct in every scope.

The soundness contract consumed by :class:`~repro.core.queries.
ContinuousQuery`, the trigger layer and :class:`~repro.ftl.incremental.
PartialIntervalEvaluator`: an explicit update whose
:func:`update_footprint` is not covered by a node's read-set can never
change that node's relation.  When a term cannot be statically
attributed to a class (an attribute access on a non-variable term, say)
the read-set is flagged ``conservative`` and covers everything.

Like the rest of the analysis package this module must not import
:mod:`repro.core`; databases and object classes are duck-typed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.ftl.analysis.diagnostics import Diagnostic, make
from repro.ftl.analysis.schema import SchemaInfo
from repro.ftl.ast import (
    Arith,
    Assign,
    Attr,
    Compare,
    Const,
    Dist,
    Formula,
    Inside,
    Outside,
    SubAttr,
    Term,
    TimeTerm,
    Var,
    WithinSphere,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.query import FtlQuery

# Dependency kinds.
POSITION = "position"
ATTRIBUTE = "attribute"
STATIC = "static"
REGION = "region"
POPULATION = "population"

#: The kinds an explicit :class:`~repro.core.database.MostUpdate` can
#: carry (region geometry is immutable and population changes do not go
#: through the update stream — see ``_population_counts`` in queries.py).
UPDATE_SENSITIVE_KINDS = (POSITION, ATTRIBUTE, STATIC)

#: Canonical spatial attribute names (mirrors ``repro.core.objects``,
#: which this module must not import).
_POSITION_NAMES = frozenset(("x_position", "y_position", "z_position"))


@dataclass(frozen=True)
class Dep:
    """One dependency: what a subformula reads, or what an update writes.

    ``detail`` is the attribute name (``position``/``attribute``/
    ``static``) or the region name (``region``); an empty detail on a
    *read* means "any attribute of this kind" (``DIST`` reads every
    position axis).
    """

    kind: str
    cls: str | None = None
    detail: str = ""

    def matches(self, footprint: "Dep") -> bool:
        """Whether this read dependency covers an update footprint."""
        if self.kind != footprint.kind or self.cls != footprint.cls:
            return False
        return (
            self.detail == ""
            or footprint.detail == ""
            or self.detail == footprint.detail
        )

    def to_json(self) -> dict[str, object]:
        out: dict[str, object] = {"kind": self.kind}
        if self.cls is not None:
            out["class"] = self.cls
        if self.detail:
            out["detail"] = self.detail
        return out


def _dep_sort_key(d: Dep) -> tuple[str, str, str]:
    return (d.cls or "", d.kind, d.detail)


@dataclass(frozen=True)
class ReadSet:
    """A set of dependencies with covering semantics.

    ``conservative`` marks read-sets containing a term the analyzer
    could not attribute to a class; a conservative set covers every
    footprint (no pruning), which keeps the analysis sound for
    programmatically built formulas outside the parsed grammar.
    """

    deps: frozenset[Dep] = frozenset()
    conservative: bool = False

    @staticmethod
    def union(sets: Iterable["ReadSet"]) -> "ReadSet":
        deps: set[Dep] = set()
        conservative = False
        for s in sets:
            deps |= s.deps
            conservative = conservative or s.conservative
        return ReadSet(frozenset(deps), conservative)

    def covers(self, footprint: Dep) -> bool:
        """Whether an update with this footprint may change the node."""
        if self.conservative:
            return True
        return any(d.matches(footprint) for d in self.deps)

    def disjoint_from(self, footprints: Iterable[Dep]) -> bool:
        """Whether no footprint in the batch is covered (safe to skip)."""
        return not any(self.covers(f) for f in footprints)

    @property
    def update_sensitive(self) -> bool:
        """Whether any explicit update can change this node's relation."""
        if self.conservative:
            return True
        return any(d.kind in UPDATE_SENSITIVE_KINDS for d in self.deps)

    def classes(self) -> list[str]:
        """Class names read, sorted."""
        return sorted({d.cls for d in self.deps if d.cls is not None})

    def kinds_for(self, cls: str) -> list[str]:
        """The dependency kinds read from one class, sorted."""
        return sorted({d.kind for d in self.deps if d.cls == cls})

    def insensitive_kinds_for(self, cls: str) -> list[str]:
        """Update kinds of ``cls`` that provably cannot change the node."""
        if self.conservative:
            return []
        present = set(self.kinds_for(cls))
        return [k for k in UPDATE_SENSITIVE_KINDS if k not in present]

    def to_json(self) -> dict[str, object]:
        out: dict[str, object] = {
            "deps": [d.to_json() for d in sorted(self.deps, key=_dep_sort_key)]
        }
        if self.conservative:
            out["conservative"] = True
        return out


EMPTY_READ_SET = ReadSet()


# ---------------------------------------------------------------------------
# The bottom-up walker
# ---------------------------------------------------------------------------


class _DepWalker:
    """One analysis run: formula tree → per-node read-sets.

    Memoized by node identity so the hash-consed DAG of a plan's ordered
    tree is walked once per shared node.
    """

    def __init__(
        self, bindings: Mapping[str, str], schema: SchemaInfo
    ) -> None:
        self.bindings = dict(bindings)
        self.schema = schema
        self.reads: dict[int, ReadSet] = {}

    # -- terms ---------------------------------------------------------
    def _object_class_of(self, term: Term) -> str | None:
        """The bound class a term denotes an object of, if statically
        known (only FROM-bound variables denote objects)."""
        if isinstance(term, Var):
            return self.bindings.get(term.name)
        return None

    def _attr_deps(self, cls: str, attr: str) -> ReadSet:
        """Classify one attribute read against the schema."""
        oc = self.schema.object_class(cls)
        if oc is not None:
            if attr in getattr(oc, "position_attributes", ()):
                return ReadSet(frozenset({Dep(POSITION, cls, attr)}))
            if oc.is_dynamic(attr):
                return ReadSet(frozenset({Dep(ATTRIBUTE, cls, attr)}))
            if oc.has_attribute(attr):
                return ReadSet(frozenset({Dep(STATIC, cls, attr)}))
            # Unknown attribute: sort checking reports FTL202; stay sound.
            return ReadSet(
                frozenset(
                    {Dep(ATTRIBUTE, cls, attr), Dep(STATIC, cls, attr)}
                )
            )
        # Schema-less: the canonical position names are recognisable,
        # anything else could be dynamic or static.
        if attr in _POSITION_NAMES:
            return ReadSet(frozenset({Dep(POSITION, cls, attr)}))
        return ReadSet(
            frozenset({Dep(ATTRIBUTE, cls, attr), Dep(STATIC, cls, attr)})
        )

    def _position_deps(self, term: Term) -> ReadSet:
        """A whole-position (all axes) read of the object a term names."""
        cls = self._object_class_of(term)
        if cls is None:
            # Not a FROM-bound variable: an assignment-bound value (the
            # analyzer rejects spatial reads of those) or a term shape
            # outside the grammar — cover everything.
            return ReadSet(frozenset(), conservative=True)
        return ReadSet(
            frozenset({Dep(POSITION, cls), Dep(POPULATION, cls)})
        )

    def term_deps(self, term: Term) -> ReadSet:
        if isinstance(term, Var):
            cls = self.bindings.get(term.name)
            if cls is None:
                return EMPTY_READ_SET  # assignment-bound value variable
            return ReadSet(frozenset({Dep(POPULATION, cls)}))
        if isinstance(term, (Const, TimeTerm)):
            # ``time`` reads the clock, which no explicit update writes.
            return EMPTY_READ_SET
        if isinstance(term, (Attr, SubAttr)):
            base = self.term_deps(term.obj)
            cls = self._object_class_of(term.obj)
            if cls is None:
                return ReadSet(base.deps, conservative=True)
            return ReadSet.union((base, self._attr_deps(cls, term.attr)))
        if isinstance(term, Arith):
            return ReadSet.union(
                (self.term_deps(term.left), self.term_deps(term.right))
            )
        if isinstance(term, Dist):
            return ReadSet.union(
                (
                    self._position_deps(term.left),
                    self._position_deps(term.right),
                )
            )
        return ReadSet(frozenset(), conservative=True)

    # -- formulas ------------------------------------------------------
    def walk(self, f: Formula) -> ReadSet:
        hit = self.reads.get(id(f))
        if hit is not None:
            return hit
        rs = self._node(f)
        self.reads[id(f)] = rs
        return rs

    def _node(self, f: Formula) -> ReadSet:
        if isinstance(f, Compare):
            return ReadSet.union(
                (self.term_deps(f.left), self.term_deps(f.right))
            )
        if isinstance(f, (Inside, Outside)):
            region = ReadSet(frozenset({Dep(REGION, None, f.region)}))
            return ReadSet.union((self._position_deps(f.obj), region))
        if isinstance(f, WithinSphere):
            return ReadSet.union(
                self._position_deps(o) for o in f.objs
            )
        if isinstance(f, Assign):
            return ReadSet.union(
                (self.term_deps(f.term), self.walk(f.body))
            )
        children = _child_formulas(f)
        if children:
            return ReadSet.union(self.walk(c) for c in children)
        # Unknown formula shape: never prune.
        return ReadSet(frozenset(), conservative=True)


def _child_formulas(f: Formula) -> tuple[Formula, ...]:
    left = getattr(f, "left", None)
    right = getattr(f, "right", None)
    if isinstance(left, Formula) and isinstance(right, Formula):
        return (left, right)
    operand = getattr(f, "operand", None)
    if isinstance(operand, Formula):
        return (operand,)
    return ()


# ---------------------------------------------------------------------------
# Analysis result + diagnostics
# ---------------------------------------------------------------------------


@dataclass
class DepAnalysis:
    """Read-sets of one formula tree plus the query-level roll-up.

    ``reads`` is keyed by ``id(subformula)`` over the analyzed tree —
    the same keying as :class:`~repro.ftl.incremental.QueryCache`, so
    the incremental evaluator can look a node's read-set up directly.
    ``query_reads`` additionally includes the population dependency of
    every FROM binding (free-ranging targets are enumerated from the
    class extent even when they never occur in WHERE).
    """

    root: Formula
    bindings: dict[str, str]
    reads: dict[int, ReadSet]
    root_reads: ReadSet
    query_reads: ReadSet
    diagnostics: tuple[Diagnostic, ...] = ()
    _insensitive: dict[str, list[str]] = field(default_factory=dict)

    def reads_for(self, f: Formula) -> ReadSet | None:
        """The read-set of one node of the analyzed tree (None when the
        node belongs to a different tree)."""
        return self.reads.get(id(f))

    def covers(self, footprint: Dep) -> bool:
        """Whether an update with this footprint may change the query."""
        return self.query_reads.covers(footprint)

    @property
    def insensitive_kinds(self) -> dict[str, list[str]]:
        """Per bound class, the update kinds that provably cannot change
        the answer (the FTL702 payload)."""
        return dict(self._insensitive)

    def to_json(self) -> dict[str, object]:
        classes = sorted(set(self.bindings.values()))
        out: dict[str, object] = {
            "query": self.query_reads.to_json(),
            "by_class": {
                cls: {
                    "reads": self.query_reads.kinds_for(cls),
                    "insensitive_to": self._insensitive.get(cls, []),
                }
                for cls in classes
            },
            "regions": sorted(
                {
                    d.detail
                    for d in self.query_reads.deps
                    if d.kind == REGION
                }
            ),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }
        return out


def _dep_diagnostics(
    root: Formula,
    bindings: Mapping[str, str],
    reads: dict[int, ReadSet],
    query_reads: ReadSet,
) -> tuple[tuple[Diagnostic, ...], dict[str, list[str]]]:
    """FTL701 (constant subtrees) and FTL702 (insensitive update kinds).

    FTL701 fires on *maximal* insensitive nodes only — reporting every
    constant leaf under an already-constant parent would drown the
    finding.
    """
    diagnostics: list[Diagnostic] = []

    def walk(f: Formula) -> None:
        rs = reads.get(id(f))
        if rs is not None and not rs.update_sensitive:
            diagnostics.append(
                make(
                    "FTL701",
                    "subformula reads no update-sensitive state; its "
                    "relation is constant under explicit updates",
                    span=f.span,
                    subformula=f,
                )
            )
            return
        for child in _subformulas(f):
            walk(child)

    walk(root)

    insensitive: dict[str, list[str]] = {}
    for cls in sorted(set(bindings.values())):
        absent = query_reads.insensitive_kinds_for(cls)
        if absent:
            insensitive[cls] = absent
            kinds = ", ".join(absent)
            diagnostics.append(
                make(
                    "FTL702",
                    f"query is insensitive to {kinds} updates of class "
                    f"{cls!r}; such updates never change Answer(CQ)",
                    span=root.span,
                    subformula=None,
                )
            )
    return tuple(diagnostics), insensitive


def _subformulas(f: Formula) -> tuple[Formula, ...]:
    if isinstance(f, Assign):
        return (f.body,)
    return _child_formulas(f)


def analyze_formula_deps(
    formula: Formula,
    bindings: Mapping[str, str] | None = None,
    schema: object = None,
) -> DepAnalysis:
    """Compute per-node read-sets of a bare formula under ``bindings``."""
    schema_info = SchemaInfo.coerce(schema)
    binding_map = dict(bindings or {})
    walker = _DepWalker(binding_map, schema_info)
    root_reads = walker.walk(formula)
    population = ReadSet(
        frozenset(
            Dep(POPULATION, cls) for cls in binding_map.values()
        )
    )
    query_reads = ReadSet.union((root_reads, population))
    diagnostics, insensitive = _dep_diagnostics(
        formula, binding_map, walker.reads, query_reads
    )
    return DepAnalysis(
        root=formula,
        bindings=binding_map,
        reads=walker.reads,
        root_reads=root_reads,
        query_reads=query_reads,
        diagnostics=diagnostics,
        _insensitive=insensitive,
    )


def analyze_query_deps(
    query: "FtlQuery",
    schema: object = None,
    formula: Formula | None = None,
) -> DepAnalysis:
    """Compute read-sets for a query's WHERE clause.

    ``formula`` substitutes the analyzed tree — continuous queries pass
    their plan's *ordered* tree so the per-node keys match the evaluator
    caches; the read-sets themselves are identical either way (ordering
    permutes conjuncts, it never changes what a subtree reads).
    """
    return analyze_formula_deps(
        formula if formula is not None else query.where,
        bindings=query.bindings,
        schema=schema,
    )


# ---------------------------------------------------------------------------
# Update footprints
# ---------------------------------------------------------------------------


def update_footprint(update: object, db: object = None) -> Dep | None:
    """The :class:`Dep` one explicit update writes, or ``None`` when the
    update cannot be attributed to a class.

    ``update`` is duck-typed as a :class:`~repro.core.database.
    MostUpdate` (``class_name``/``kind``/``attribute``/``object_id``);
    ``db`` as a :class:`~repro.core.database.MostDatabase`, used to
    resolve a missing class name and to classify position attributes
    precisely (falling back to the canonical axis names without it).
    """
    cls = getattr(update, "class_name", None)
    object_id = getattr(update, "object_id", None)
    attribute = getattr(update, "attribute", "")
    if cls is None and db is not None:
        try:
            cls = db.get(object_id).object_class.name
        except Exception:
            return None
    if cls is None:
        return None
    if getattr(update, "kind", "dynamic") == "static":
        return Dep(STATIC, cls, attribute)
    oc = None
    if db is not None:
        try:
            oc = db.object_class(cls)
        except Exception:
            oc = None
    if oc is not None:
        if attribute in getattr(oc, "position_attributes", ()):
            return Dep(POSITION, cls, attribute)
        return Dep(ATTRIBUTE, cls, attribute)
    if attribute in _POSITION_NAMES:
        return Dep(POSITION, cls, attribute)
    return Dep(ATTRIBUTE, cls, attribute)
