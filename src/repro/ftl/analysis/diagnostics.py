"""Diagnostics: severities, rule codes, spans, and analysis results.

Every check the static analyzer performs is registered here with a
stable rule code (``FTL1xx`` binding/scope, ``FTL2xx`` sorts, ``FTL3xx``
safety, ``FTL4xx`` fragment classification, ``FTL5xx`` lints).  A
:class:`Diagnostic` pairs a rule with a message, a severity and — when
the formula was parsed from text — a source :class:`Span`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FtlAnalysisError
from repro.ftl.lexer import Span

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITIES = (ERROR, WARNING, INFO)


class FtlLintWarning(UserWarning):
    """Python-warning category for warning-severity FTL diagnostics.

    Raised via :func:`warnings.warn` when a query with lint findings is
    compiled or registered — errors raise, warnings warn, infos stay on
    the :class:`AnalysisResult`.
    """

#: Rule registry: code → (default severity, one-line summary).  The
#: DESIGN.md §5 table is generated from this mapping — keep them in sync.
RULES: dict[str, tuple[str, str]] = {
    # -- pass 1: binding / scope ---------------------------------------
    "FTL101": (ERROR, "variable is not bound by FROM or an enclosing "
                      "assignment quantifier"),
    "FTL102": (ERROR, "RETRIEVE target is not bound by FROM"),
    "FTL103": (ERROR, "assignment quantifier shadows an existing binding"),
    "FTL104": (WARNING, "assigned variable is never used in the body"),
    # -- pass 2: sort checking -----------------------------------------
    "FTL201": (ERROR, "FROM clause names an unknown object class"),
    "FTL202": (ERROR, "attribute is not declared by the object class"),
    "FTL203": (ERROR, "sub-attribute access on a non-dynamic attribute"),
    "FTL204": (ERROR, "attribute access on a non-object term"),
    "FTL205": (ERROR, "spatial operation on a non-spatial operand"),
    "FTL206": (ERROR, "unknown region name"),
    "FTL207": (ERROR, "arithmetic on a non-numeric operand"),
    "FTL208": (ERROR, "ordered comparison between incompatible sorts"),
    # -- pass 3: safety / range restriction ----------------------------
    "FTL301": (ERROR, "division by constant zero"),
    "FTL302": (WARNING, "negation leaves the paper's conjunctive "
                        "fragment; safe only over enumerable domains"),
    "FTL303": (INFO, "disjunction branches bind different variables; "
                     "evaluation enumerates the full domain product"),
    "FTL304": (ERROR, "construct is not supported by any evaluator"),
    # -- pass 4: fragment classification -------------------------------
    "FTL401": (INFO, "subformula disqualifies incremental maintenance"),
    "FTL402": (INFO, "unbounded temporal operator; the answer depends "
                     "on the expiration horizon"),
    "FTL403": (INFO, "RETRIEVE target free-ranges over its class; "
                     "incremental maintenance is disabled"),
    # -- pass 5: lints -------------------------------------------------
    "FTL501": (WARNING, "vacuous temporal bound"),
    "FTL502": (ERROR, "negative temporal bound"),
    "FTL503": (WARNING, "constant-foldable comparison"),
    "FTL504": (WARNING, "vacuous Until operand"),
    # -- pass 6: plan & cost analysis ----------------------------------
    "FTL601": (WARNING, "conjunction joins disjoint variable sets "
                        "(cross product)"),
    "FTL602": (WARNING, "negation complements over the full domain "
                        "product of several variables"),
    "FTL603": (INFO, "unbounded Until outer-enumerates left-side "
                     "variables missing from its right side"),
    "FTL604": (INFO, "structurally identical subformula occurs more "
                     "than once; the plan shares one evaluation"),
    "FTL605": (WARNING, "derived-operator rewrite rule is quarantined "
                        "as unsound"),
    # -- pass 7: update-impact (dependency) analysis -------------------
    # Reported through the EXPLAIN ``dependencies`` block and the lint
    # CLI's ``--deps`` report, not the default analyzer passes: they
    # describe refresh behaviour, not query validity.
    "FTL701": (INFO, "subformula reads no update-sensitive state; its "
                     "relation is constant under explicit updates"),
    "FTL702": (INFO, "query is insensitive to an update kind of a bound "
                     "class; such updates never trigger a refresh"),
    # -- pass 8: temporal-validity analysis ----------------------------
    # Reported through the EXPLAIN ``validity`` block and the lint CLI's
    # ``--validity`` report, not the default analyzer passes: they
    # describe answer-reuse behaviour, not query validity.
    "FTL801": (INFO, "condition has a finite validity horizon driven by "
                     "motion events; cached answers are reusable until "
                     "the earliest such event"),
    "FTL802": (INFO, "condition reads no time-varying state; its cached "
                     "answer stays valid through the query's expiration "
                     "horizon"),
    "FTL803": (INFO, "no provable validity horizon for a subformula; "
                     "t_expire conservatively falls back to t_eval"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding: rule code, severity, message, source span.

    ``subformula`` is the pretty-printed offending AST node — meaningful
    even for programmatically built formulas that carry no span.
    """

    code: str
    severity: str
    message: str
    span: Span | None = None
    subformula: str | None = None

    def __post_init__(self) -> None:
        if self.code not in RULES:
            raise ValueError(f"unregistered rule code {self.code!r}")
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        where = f" at {self.span}" if self.span is not None else ""
        return f"{self.severity}[{self.code}]{where}: {self.message}"

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable form (the lint CLI's ``--json`` output)."""
        out: dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            out["span"] = {
                "start": self.span.start,
                "end": self.span.end,
                "line": self.span.line,
                "col": self.span.col,
            }
        if self.subformula is not None:
            out["subformula"] = self.subformula
        return out


def make(code: str, message: str, span: Span | None = None,
         subformula: object | None = None,
         severity: str | None = None) -> Diagnostic:
    """Build a diagnostic using the rule's registered default severity."""
    return Diagnostic(
        code=code,
        severity=severity or RULES[code][0],
        message=message,
        span=span,
        subformula=None if subformula is None else str(subformula),
    )


def _sort_key(d: Diagnostic) -> "tuple[int, str, str]":
    start = d.span.start if d.span is not None else -1
    return (start, d.code, d.message)


@dataclass
class AnalysisResult:
    """The outcome of a full analyzer run over one query or formula."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Temporal-fragment classification (pass 4); ``None`` when the
    #: fragment pass was not run.
    fragment: "object | None" = None

    def sorted(self) -> "AnalysisResult":
        """Sort diagnostics by source position, then rule code (in place)."""
        self.diagnostics.sort(key=_sort_key)
        return self

    @property
    def errors(self) -> list[Diagnostic]:
        """Diagnostics with error severity (these block evaluation)."""
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Diagnostics with warning severity."""
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        """Diagnostics with info severity."""
        return [d for d in self.diagnostics if d.severity == INFO]

    @property
    def ok(self) -> bool:
        """Whether the query may proceed to evaluation."""
        return not self.errors

    def raise_on_error(self) -> None:
        """Raise :class:`FtlAnalysisError` if any error was found."""
        if not self.ok:
            raise FtlAnalysisError(self.errors)

    def warn_on_lints(self) -> None:
        """Emit an :class:`FtlLintWarning` per warning-severity finding."""
        import warnings

        for d in self.warnings:
            warnings.warn(str(d), FtlLintWarning, stacklevel=3)

    def codes(self) -> list[str]:
        """The rule codes of every diagnostic, in sorted order."""
        return [d.code for d in self.diagnostics]

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable form (the lint CLI's ``--json`` output)."""
        out: dict[str, object] = {
            "ok": self.ok,
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }
        if self.fragment is not None:
            out["fragment"] = self.fragment.to_json()
        return out
