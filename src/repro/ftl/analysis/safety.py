"""Pass 3 — safety / range restriction.

The paper (§3) assumes every atomic sub-query is *safe*: its answer
relation is finite.  This reproduction guarantees finiteness by
enumerating variable domains (FROM-bound objects, assignment-observed
values), so the checkable residue of the paper's assumption is:

* constructs whose evaluation leaves the enumerable fragment —
  negation (FTL302) and variable-mismatched disjunction (FTL303) are
  flagged as leaving the paper's conjunctive fragment of §3.5, where
  safety held by construction;
* sub-terms guaranteed to fail at evaluation time — division by a
  constant zero (FTL301);
* AST nodes no evaluator implements (FTL304) — the static form of the
  ``unsupported formula`` error both evaluators raise
  (``evaluator.py`` / ``naive.py``).
"""

from __future__ import annotations

from repro.ftl.analysis.diagnostics import Diagnostic, make
from repro.ftl.ast import (
    Always,
    AlwaysFor,
    AndF,
    Arith,
    Assign,
    Attr,
    Compare,
    Const,
    Dist,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    SubAttr,
    Term,
    TimeTerm,
    Until,
    UntilWithin,
    Var,
    WithinSphere,
)

_KNOWN_TERMS = (Var, Const, TimeTerm, Attr, SubAttr, Arith, Dist)
_KNOWN_FORMULAS = (
    Compare, Inside, Outside, WithinSphere, AndF, OrF, NotF, Until,
    UntilWithin, Nexttime, Eventually, EventuallyWithin, EventuallyAfter,
    Always, AlwaysFor, Assign,
)


def check_safety(formula: Formula) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    _walk_formula(formula, diags)
    return diags


def _walk_term(term: Term, diags: list[Diagnostic]) -> None:
    if not isinstance(term, _KNOWN_TERMS):
        diags.append(
            make(
                "FTL304",
                f"term construct {type(term).__name__} is not supported "
                "by any evaluator",
                span=term.span,
                subformula=term,
            )
        )
        return
    if isinstance(term, Arith):
        if (
            term.op == "/"
            and isinstance(term.right, Const)
            and isinstance(term.right.value, (int, float))
            and term.right.value == 0
        ):
            diags.append(
                make(
                    "FTL301",
                    "division by constant zero",
                    span=term.span,
                    subformula=term,
                )
            )
        _walk_term(term.left, diags)
        _walk_term(term.right, diags)
    elif isinstance(term, Dist):
        _walk_term(term.left, diags)
        _walk_term(term.right, diags)
    elif isinstance(term, (Attr, SubAttr)):
        _walk_term(term.obj, diags)


def _walk_formula(f: Formula, diags: list[Diagnostic]) -> None:
    if not isinstance(f, _KNOWN_FORMULAS):
        diags.append(
            make(
                "FTL304",
                f"formula construct {type(f).__name__} is not supported "
                "by any evaluator",
                span=f.span,
                subformula=f,
            )
        )
        return
    if isinstance(f, Compare):
        _walk_term(f.left, diags)
        _walk_term(f.right, diags)
        return
    if isinstance(f, (Inside, Outside)):
        _walk_term(f.obj, diags)
        return
    if isinstance(f, WithinSphere):
        for o in f.objs:
            _walk_term(o, diags)
        return
    if isinstance(f, NotF):
        diags.append(
            make(
                "FTL302",
                "negation is outside the conjunctive fragment of §3.5; "
                "it is evaluated by complement over the enumerated "
                "domains of its free variables",
                span=f.span,
                subformula=f,
            )
        )
        _walk_formula(f.operand, diags)
        return
    if isinstance(f, OrF):
        if f.left.free_vars() != f.right.free_vars():
            diags.append(
                make(
                    "FTL303",
                    "disjunction branches bind different variables; "
                    "evaluation enumerates the full product of the "
                    "union's domains",
                    span=f.span,
                    subformula=f,
                )
            )
        _walk_formula(f.left, diags)
        _walk_formula(f.right, diags)
        return
    if isinstance(f, Assign):
        _walk_term(f.term, diags)
        _walk_formula(f.body, diags)
        return
    if isinstance(f, (AndF, Until, UntilWithin)):
        _walk_formula(f.left, diags)
        _walk_formula(f.right, diags)
        return
    # Unary temporal operators.
    _walk_formula(f.operand, diags)
