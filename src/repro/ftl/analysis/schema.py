"""Schema view the sort-checking pass runs against.

The analyzer is usable with or without a database at hand: a
:class:`SchemaInfo` built :meth:`from_database` enables every check
(attribute existence, dynamic-vs-static, spatiality, region names),
while the default "open" schema skips exactly the checks it cannot
decide, so schema-less linting never reports false positives.

Only duck typing is used — this module must not import :mod:`repro.core`
(which imports :mod:`repro.ftl` back).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping


@dataclass(frozen=True)
class SchemaInfo:
    """What the analyzer knows about the database schema.

    ``classes`` maps class name → an object with the
    :class:`~repro.core.objects.ObjectClass` interface
    (``has_attribute`` / ``is_dynamic`` / ``is_spatial``); ``None`` means
    the class universe is unknown and class checks are skipped.
    ``regions`` is the set of defined region names, or ``None`` when
    unknown.
    """

    classes: Mapping[str, object] | None = None
    regions: frozenset[str] | None = None

    @classmethod
    def from_database(cls, db: Any) -> "SchemaInfo":
        """Extract the full schema of a ``MostDatabase``."""
        return cls(
            classes={
                name: db.object_class(name) for name in db.class_names()
            },
            regions=frozenset(db.region_names()),
        )

    @classmethod
    def coerce(cls, schema: object) -> "SchemaInfo":
        """Accept ``None``, a :class:`SchemaInfo`, or a database."""
        if schema is None:
            return cls()
        if isinstance(schema, cls):
            return schema
        if hasattr(schema, "object_class") and hasattr(schema, "class_names"):
            return cls.from_database(schema)
        raise TypeError(
            f"cannot derive a SchemaInfo from {type(schema).__name__}"
        )

    # ------------------------------------------------------------------
    def knows_classes(self) -> bool:
        """Whether the class universe is known (enables class checks)."""
        return self.classes is not None

    def knows_regions(self) -> bool:
        """Whether the region universe is known (enables FTL206)."""
        return self.regions is not None

    def object_class(self, name: str) -> object | None:
        """The class by name, or ``None`` when absent/unknown."""
        if self.classes is None:
            return None
        return self.classes.get(name)

    def has_region(self, name: str) -> bool:
        """False only when the region universe is known and lacks it."""
        return self.regions is None or name in self.regions
