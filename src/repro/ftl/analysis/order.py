"""Cost-based ordering of commutative operands.

Conjunction and independent assignment-quantifier chains are the two
commutative constructs of the appendix algorithm; this module picks their
evaluation order from the static estimates of ``cost.py``:

* :func:`order_conjuncts` — greedy System R-style join ordering: start
  from the operand with the fewest estimated tuples, then repeatedly add
  the operand minimising the estimated size of the accumulated join,
  preferring operands *connected* (sharing a variable) to what has been
  joined so far.  Cheapest-most-selective-first both shrinks intermediate
  joins and lets the evaluator's empty-guard skip expensive conjuncts
  entirely when an early operand's relation is empty.
* :func:`order_assignments` — independent ``[x := q]`` links nest with
  the narrowest estimated value domain innermost, shrinking the inner
  body join first.

Both are pure index permutations over pre-computed ``(free-variable set,
estimate)`` entries; ``plan.py`` applies them to the AST.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.ftl.analysis.cost import CostEstimate, domain_product

Entry = tuple[frozenset, CostEstimate]


def connected_components(var_sets: Iterable[frozenset]) -> list[set]:
    """Connected components of the variable-sharing graph.

    Only non-empty variable sets participate (variable-free operands are
    constant filters, not join operands).  More than one component means
    the conjunction is an inherent cross product — no ordering avoids it
    (rule FTL601).
    """
    components: list[set] = []
    for vs in var_sets:
        if not vs:
            continue
        touching = [c for c in components if c & vs]
        merged = set(vs)
        for c in touching:
            merged |= c
            components.remove(c)
        components.append(merged)
    return components


def order_conjuncts(
    entries: Sequence[Entry], widths: Mapping[str, float]
) -> list[int]:
    """Greedy join order over conjuncts: a permutation of ``range(len))``.

    Deterministic: ties break on estimated cost, then original position
    (so syntactically equal plans come out identical run to run).
    """
    n = len(entries)
    if n <= 1:
        return list(range(n))
    remaining = set(range(n))

    def start_key(i: int) -> tuple[float, float, int]:
        _vs, e = entries[i]
        return (e.tuples, e.cost, i)

    first = min(remaining, key=start_key)
    order = [first]
    remaining.discard(first)
    vars_acc: set[str] = set(entries[first][0])
    sel_acc = entries[first][1].selectivity

    while remaining:
        connected = [
            i for i in remaining
            if not entries[i][0] or (entries[i][0] & vars_acc)
        ]
        pool = connected if connected else sorted(remaining)

        def growth_key(i: int) -> tuple[float, float, int]:
            vs, e = entries[i]
            joined = sel_acc * e.selectivity * domain_product(
                vars_acc | set(vs), widths
            )
            return (joined, e.cost, i)

        nxt = min(pool, key=growth_key)
        order.append(nxt)
        remaining.discard(nxt)
        vars_acc |= set(entries[nxt][0])
        sel_acc *= entries[nxt][1].selectivity
    return order


def order_assignments(value_widths: Sequence[float]) -> list[int]:
    """Nesting order for an independent assignment chain, outermost
    first: widest estimated value domain outermost, narrowest innermost."""
    return sorted(
        range(len(value_widths)), key=lambda i: (-value_widths[i], i)
    )
