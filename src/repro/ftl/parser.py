"""Recursive-descent parser for FTL queries and formulas.

Concrete syntax (example queries I–III of section 3.4 and the query of
section 3.2 all parse):

.. code-block:: text

    RETRIEVE o, n
    FROM objects o, objects n
    WHERE DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))

    RETRIEVE o FROM objects o
    WHERE o.price <= 100 AND EVENTUALLY WITHIN 3 INSIDE(o, P)

    RETRIEVE o FROM objects o
    WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P)
          AND ALWAYS FOR 2 INSIDE(o, P)
          AND EVENTUALLY AFTER 5 INSIDE(o, Q))

    RETRIEVE o FROM objects o
    WHERE [x := o.x_position.function]
          EVENTUALLY o.x_position.function >= 2 * x

Precedence, loosest to tightest: ``UNTIL`` (right-associative) < ``OR`` <
``AND`` < prefix operators (``NOT``, ``NEXTTIME``, ``EVENTUALLY [WITHIN c
| AFTER c]``, ``ALWAYS [FOR c]``, ``[x := t]``) < atoms.

Every AST node the parser builds carries a :class:`~repro.ftl.lexer.Span`
covering its source text, and every syntax error names the offending
line/column — the raw material of the static analyzer's diagnostics.
"""

from __future__ import annotations

from repro.errors import FtlSyntaxError
from repro.ftl.ast import (
    Always,
    AlwaysFor,
    AndF,
    Arith,
    Assign,
    Attr,
    Compare,
    Const,
    Dist,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    SubAttr,
    Term,
    TimeTerm,
    Until,
    UntilWithin,
    Var,
    WithinSphere,
)
from repro.ftl.lexer import Span, Token, tokenize
from repro.ftl.query import FtlQuery, QuerySpans


def parse_query(text: str) -> FtlQuery:
    """Parse a full ``RETRIEVE ... FROM ... WHERE ...`` query."""
    p = _Parser(tokenize(text))
    q = p.query()
    p.expect_eof()
    return q


def parse_formula(text: str) -> Formula:
    """Parse a bare FTL formula (tests and programmatic composition)."""
    p = _Parser(tokenize(text))
    f = p.formula()
    p.expect_eof()
    return f


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._prev_end = 0

    # -- plumbing --------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        if tok.kind != "EOF":
            self._prev_end = tok.span.end
        return tok

    def _span_from(self, start: Token) -> Span:
        """Span from the start token to the last consumed token."""
        return Span(
            start.pos,
            max(self._prev_end, start.span.end),
            start.line,
            start.col,
        )

    def _spanned(self, node, start: Token):
        """Attach the source span covering ``start`` .. the last consumed
        token (only when the node does not already carry one)."""
        if node.span is None:
            object.__setattr__(node, "span", self._span_from(start))
        return node

    @staticmethod
    def _err(message: str, tok: Token) -> FtlSyntaxError:
        return FtlSyntaxError(
            f"{message} at line {tok.line}, col {tok.col}", span=tok.span
        )

    def _match_keyword(self, *words: str) -> bool:
        tok = self._peek()
        if tok.kind == "KEYWORD" and tok.value in words:
            self._advance()
            return True
        return False

    def _match_symbol(self, *symbols: str) -> str | None:
        tok = self._peek()
        if tok.kind == "SYMBOL" and tok.value in symbols:
            self._advance()
            return tok.value
        return None

    def _expect_keyword(self, word: str) -> None:
        tok = self._advance()
        if tok.kind != "KEYWORD" or tok.value != word:
            raise self._err(f"expected {word}, got {tok.value!r}", tok)

    def _expect_symbol(self, symbol: str) -> None:
        tok = self._advance()
        if tok.kind != "SYMBOL" or tok.value != symbol:
            raise self._err(f"expected {symbol!r}, got {tok.value!r}", tok)

    def _expect_ident(self) -> str:
        tok = self._advance()
        if tok.kind != "IDENT":
            raise self._err(
                f"expected identifier, got {tok.value!r}", tok
            )
        return tok.value

    def _expect_number(self) -> float:
        tok = self._advance()
        if tok.kind != "NUMBER":
            raise self._err(f"expected number, got {tok.value!r}", tok)
        return float(tok.value)

    def expect_eof(self) -> None:
        tok = self._peek()
        if tok.kind != "EOF":
            raise self._err(
                f"unexpected trailing input {tok.value!r}", tok
            )

    # -- query -----------------------------------------------------------
    def query(self) -> FtlQuery:
        self._expect_keyword("RETRIEVE")
        target_tok = self._peek()
        targets = [self._expect_ident()]
        target_spans = [target_tok.span]
        while self._match_symbol(","):
            target_tok = self._peek()
            targets.append(self._expect_ident())
            target_spans.append(target_tok.span)
        self._expect_keyword("FROM")
        bindings: dict[str, str] = {}
        binding_vars: dict[str, Span] = {}
        binding_classes: dict[str, Span] = {}
        while True:
            class_tok = self._peek()
            class_name = self._expect_ident()
            var_tok = self._peek()
            var = self._expect_ident()
            if var in bindings:
                raise self._err(
                    f"variable {var!r} bound twice in FROM", var_tok
                )
            bindings[var] = class_name
            binding_vars[var] = var_tok.span
            binding_classes[var] = class_tok.span
            if not self._match_symbol(","):
                break
        self._expect_keyword("WHERE")
        where_tok = self._peek()
        where = self.formula()
        return FtlQuery(
            targets=tuple(targets),
            bindings=bindings,
            where=where,
            spans=QuerySpans(
                targets=tuple(target_spans),
                binding_vars=binding_vars,
                binding_classes=binding_classes,
                where=where.span or self._span_from(where_tok),
            ),
        )

    # -- formulas ----------------------------------------------------------
    def formula(self) -> Formula:
        return self._until_expr()

    def _until_expr(self) -> Formula:
        start = self._peek()
        left = self._or_expr()
        if self._match_keyword("UNTIL"):
            if self._match_keyword("WITHIN"):
                bound = self._expect_number()
                right = self._until_expr()
                return self._spanned(UntilWithin(bound, left, right), start)
            right = self._until_expr()  # right-associative
            return self._spanned(Until(left, right), start)
        return left

    def _or_expr(self) -> Formula:
        start = self._peek()
        left = self._and_expr()
        while self._match_keyword("OR"):
            left = self._spanned(OrF(left, self._and_expr()), start)
        return left

    def _and_expr(self) -> Formula:
        start = self._peek()
        left = self._prefix()
        while self._match_keyword("AND"):
            left = self._spanned(AndF(left, self._prefix()), start)
        return left

    def _prefix(self) -> Formula:
        start = self._peek()
        if self._match_keyword("NOT"):
            return self._spanned(NotF(self._prefix()), start)
        if self._match_keyword("NEXTTIME"):
            return self._spanned(Nexttime(self._prefix()), start)
        if self._match_keyword("EVENTUALLY"):
            if self._match_keyword("WITHIN"):
                bound = self._expect_number()
                return self._spanned(
                    EventuallyWithin(bound, self._prefix()), start
                )
            if self._match_keyword("AFTER"):
                bound = self._expect_number()
                return self._spanned(
                    EventuallyAfter(bound, self._prefix()), start
                )
            return self._spanned(Eventually(self._prefix()), start)
        if self._match_keyword("ALWAYS"):
            if self._match_keyword("FOR"):
                bound = self._expect_number()
                return self._spanned(
                    AlwaysFor(bound, self._prefix()), start
                )
            return self._spanned(Always(self._prefix()), start)
        if self._peek().kind == "SYMBOL" and self._peek().value == "[":
            self._advance()
            var = self._expect_ident()
            self._expect_symbol(":=")
            term = self.term()
            self._expect_symbol("]")
            return self._spanned(Assign(var, term, self._prefix()), start)
        return self._atom()

    def _atom(self) -> Formula:
        tok = self._peek()
        if tok.kind == "KEYWORD" and tok.value in ("INSIDE", "OUTSIDE"):
            self._advance()
            self._expect_symbol("(")
            obj = self.term()
            self._expect_symbol(",")
            region = self._expect_ident()
            self._expect_symbol(")")
            node = (
                Inside(obj, region)
                if tok.value == "INSIDE"
                else Outside(obj, region)
            )
            return self._spanned(node, tok)
        if tok.kind == "KEYWORD" and tok.value == "WITHIN_SPHERE":
            self._advance()
            self._expect_symbol("(")
            radius = self._expect_number()
            objs = []
            while self._match_symbol(","):
                objs.append(self.term())
            self._expect_symbol(")")
            if not objs:
                raise self._err(
                    "WITHIN_SPHERE needs at least one object", tok
                )
            return self._spanned(WithinSphere(radius, tuple(objs)), tok)
        if tok.kind == "KEYWORD" and tok.value in ("TRUE", "FALSE"):
            self._advance()
            # TRUE / FALSE sugar as always-equal comparisons.  The lint
            # pass recognises this exact shape and does not flag it as a
            # constant-foldable comparison.
            value = 1 if tok.value == "TRUE" else 0
            return self._spanned(Compare("=", Const(1), Const(value)), tok)
        if tok.kind == "SYMBOL" and tok.value == "(":
            # Could be a parenthesised formula or a parenthesised term of a
            # comparison; try formula first via backtracking.
            saved = self._pos
            saved_end = self._prev_end
            try:
                self._advance()
                inner = self.formula()
                self._expect_symbol(")")
                return inner
            except FtlSyntaxError:
                self._pos = saved
                self._prev_end = saved_end
        return self._comparison()

    def _comparison(self) -> Formula:
        start = self._peek()
        left = self.term()
        op = self._match_symbol("=", "!=", "<", "<=", ">", ">=")
        if op is None:
            tok = self._peek()
            raise self._err(
                f"expected comparison operator, got {tok.value!r}", tok
            )
        right = self.term()
        return self._spanned(Compare(op, left, right), start)

    # -- terms -------------------------------------------------------------
    def term(self) -> Term:
        return self._additive()

    def _additive(self) -> Term:
        start = self._peek()
        left = self._multiplicative()
        while True:
            op = self._match_symbol("+", "-")
            if op is None:
                return left
            left = self._spanned(
                Arith(op, left, self._multiplicative()), start
            )

    def _multiplicative(self) -> Term:
        start = self._peek()
        left = self._unary_term()
        while True:
            op = self._match_symbol("*", "/")
            if op is None:
                return left
            left = self._spanned(
                Arith(op, left, self._unary_term()), start
            )

    def _unary_term(self) -> Term:
        start = self._peek()
        if self._match_symbol("-"):
            operand = self._unary_term()
            if isinstance(operand, Const) and isinstance(
                operand.value, (int, float)
            ):
                return self._spanned(Const(-operand.value), start)
            return self._spanned(Arith("-", Const(0), operand), start)
        return self._primary_term()

    def _primary_term(self) -> Term:
        tok = self._peek()
        if tok.kind == "NUMBER":
            self._advance()
            return self._spanned(
                Const(float(tok.value) if "." in tok.value else int(tok.value)),
                tok,
            )
        if tok.kind == "STRING":
            self._advance()
            return self._spanned(Const(tok.value), tok)
        if tok.kind == "KEYWORD" and tok.value == "TIME":
            self._advance()
            return self._spanned(TimeTerm(), tok)
        if tok.kind == "KEYWORD" and tok.value == "DIST":
            self._advance()
            self._expect_symbol("(")
            left = self.term()
            self._expect_symbol(",")
            right = self.term()
            self._expect_symbol(")")
            return self._spanned(Dist(left, right), tok)
        if tok.kind == "IDENT":
            name = self._advance().value
            term: Term = self._spanned(Var(name), tok)
            path: list[str] = []
            while self._match_symbol("."):
                path.append(self._expect_ident())
            if len(path) == 0:
                return term
            if len(path) == 1:
                return self._spanned(Attr(term, path[0]), tok)
            if len(path) == 2:
                return self._spanned(
                    SubAttr(term, path[0], path[1]), tok
                )
            raise self._err(
                f"attribute path too deep: {name}.{'.'.join(path)}", tok
            )
        if tok.kind == "SYMBOL" and tok.value == "(":
            self._advance()
            inner = self.term()
            self._expect_symbol(")")
            return inner
        raise self._err(f"unexpected token {tok.value!r}", tok)
