"""Recursive-descent parser for FTL queries and formulas.

Concrete syntax (example queries I–III of section 3.4 and the query of
section 3.2 all parse):

.. code-block:: text

    RETRIEVE o, n
    FROM objects o, objects n
    WHERE DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))

    RETRIEVE o FROM objects o
    WHERE o.price <= 100 AND EVENTUALLY WITHIN 3 INSIDE(o, P)

    RETRIEVE o FROM objects o
    WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P)
          AND ALWAYS FOR 2 INSIDE(o, P)
          AND EVENTUALLY AFTER 5 INSIDE(o, Q))

    RETRIEVE o FROM objects o
    WHERE [x := o.x_position.function]
          EVENTUALLY o.x_position.function >= 2 * x

Precedence, loosest to tightest: ``UNTIL`` (right-associative) < ``OR`` <
``AND`` < prefix operators (``NOT``, ``NEXTTIME``, ``EVENTUALLY [WITHIN c
| AFTER c]``, ``ALWAYS [FOR c]``, ``[x := t]``) < atoms.
"""

from __future__ import annotations

from repro.errors import FtlSyntaxError
from repro.ftl.ast import (
    Always,
    AlwaysFor,
    AndF,
    Arith,
    Assign,
    Attr,
    Compare,
    Const,
    Dist,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    SubAttr,
    Term,
    TimeTerm,
    Until,
    UntilWithin,
    Var,
    WithinSphere,
)
from repro.ftl.lexer import Token, tokenize
from repro.ftl.query import FtlQuery


def parse_query(text: str) -> FtlQuery:
    """Parse a full ``RETRIEVE ... FROM ... WHERE ...`` query."""
    p = _Parser(tokenize(text))
    q = p.query()
    p.expect_eof()
    return q


def parse_formula(text: str) -> Formula:
    """Parse a bare FTL formula (tests and programmatic composition)."""
    p = _Parser(tokenize(text))
    f = p.formula()
    p.expect_eof()
    return f


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- plumbing --------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _match_keyword(self, *words: str) -> bool:
        tok = self._peek()
        if tok.kind == "KEYWORD" and tok.value in words:
            self._advance()
            return True
        return False

    def _match_symbol(self, *symbols: str) -> str | None:
        tok = self._peek()
        if tok.kind == "SYMBOL" and tok.value in symbols:
            self._advance()
            return tok.value
        return None

    def _expect_keyword(self, word: str) -> None:
        tok = self._advance()
        if tok.kind != "KEYWORD" or tok.value != word:
            raise FtlSyntaxError(
                f"expected {word}, got {tok.value!r} at {tok.pos}"
            )

    def _expect_symbol(self, symbol: str) -> None:
        tok = self._advance()
        if tok.kind != "SYMBOL" or tok.value != symbol:
            raise FtlSyntaxError(
                f"expected {symbol!r}, got {tok.value!r} at {tok.pos}"
            )

    def _expect_ident(self) -> str:
        tok = self._advance()
        if tok.kind != "IDENT":
            raise FtlSyntaxError(
                f"expected identifier, got {tok.value!r} at {tok.pos}"
            )
        return tok.value

    def _expect_number(self) -> float:
        tok = self._advance()
        if tok.kind != "NUMBER":
            raise FtlSyntaxError(
                f"expected number, got {tok.value!r} at {tok.pos}"
            )
        return float(tok.value)

    def expect_eof(self) -> None:
        tok = self._peek()
        if tok.kind != "EOF":
            raise FtlSyntaxError(
                f"unexpected trailing input {tok.value!r} at {tok.pos}"
            )

    # -- query -----------------------------------------------------------
    def query(self) -> FtlQuery:
        self._expect_keyword("RETRIEVE")
        targets = [self._expect_ident()]
        while self._match_symbol(","):
            targets.append(self._expect_ident())
        self._expect_keyword("FROM")
        bindings: dict[str, str] = {}
        while True:
            class_name = self._expect_ident()
            var = self._expect_ident()
            if var in bindings:
                raise FtlSyntaxError(f"variable {var!r} bound twice in FROM")
            bindings[var] = class_name
            if not self._match_symbol(","):
                break
        self._expect_keyword("WHERE")
        where = self.formula()
        return FtlQuery(
            targets=tuple(targets), bindings=bindings, where=where
        )

    # -- formulas ----------------------------------------------------------
    def formula(self) -> Formula:
        return self._until_expr()

    def _until_expr(self) -> Formula:
        left = self._or_expr()
        if self._match_keyword("UNTIL"):
            if self._match_keyword("WITHIN"):
                bound = self._expect_number()
                right = self._until_expr()
                return UntilWithin(bound, left, right)
            right = self._until_expr()  # right-associative
            return Until(left, right)
        return left

    def _or_expr(self) -> Formula:
        left = self._and_expr()
        while self._match_keyword("OR"):
            left = OrF(left, self._and_expr())
        return left

    def _and_expr(self) -> Formula:
        left = self._prefix()
        while self._match_keyword("AND"):
            left = AndF(left, self._prefix())
        return left

    def _prefix(self) -> Formula:
        if self._match_keyword("NOT"):
            return NotF(self._prefix())
        if self._match_keyword("NEXTTIME"):
            return Nexttime(self._prefix())
        if self._match_keyword("EVENTUALLY"):
            if self._match_keyword("WITHIN"):
                bound = self._expect_number()
                return EventuallyWithin(bound, self._prefix())
            if self._match_keyword("AFTER"):
                bound = self._expect_number()
                return EventuallyAfter(bound, self._prefix())
            return Eventually(self._prefix())
        if self._match_keyword("ALWAYS"):
            if self._match_keyword("FOR"):
                bound = self._expect_number()
                return AlwaysFor(bound, self._prefix())
            return Always(self._prefix())
        if self._peek().kind == "SYMBOL" and self._peek().value == "[":
            self._advance()
            var = self._expect_ident()
            self._expect_symbol(":=")
            term = self.term()
            self._expect_symbol("]")
            return Assign(var, term, self._prefix())
        return self._atom()

    def _atom(self) -> Formula:
        tok = self._peek()
        if tok.kind == "KEYWORD" and tok.value in ("INSIDE", "OUTSIDE"):
            self._advance()
            self._expect_symbol("(")
            obj = self.term()
            self._expect_symbol(",")
            region = self._expect_ident()
            self._expect_symbol(")")
            return (
                Inside(obj, region)
                if tok.value == "INSIDE"
                else Outside(obj, region)
            )
        if tok.kind == "KEYWORD" and tok.value == "WITHIN_SPHERE":
            self._advance()
            self._expect_symbol("(")
            radius = self._expect_number()
            objs = []
            while self._match_symbol(","):
                objs.append(self.term())
            self._expect_symbol(")")
            if not objs:
                raise FtlSyntaxError("WITHIN_SPHERE needs at least one object")
            return WithinSphere(radius, tuple(objs))
        if tok.kind == "KEYWORD" and tok.value in ("TRUE", "FALSE"):
            self._advance()
            # TRUE / FALSE sugar as always-equal comparisons.
            value = 1 if tok.value == "TRUE" else 0
            return Compare("=", Const(1), Const(value))
        if tok.kind == "SYMBOL" and tok.value == "(":
            # Could be a parenthesised formula or a parenthesised term of a
            # comparison; try formula first via backtracking.
            saved = self._pos
            try:
                self._advance()
                inner = self.formula()
                self._expect_symbol(")")
                return inner
            except FtlSyntaxError:
                self._pos = saved
        return self._comparison()

    def _comparison(self) -> Formula:
        left = self.term()
        op = self._match_symbol("=", "!=", "<", "<=", ">", ">=")
        if op is None:
            tok = self._peek()
            raise FtlSyntaxError(
                f"expected comparison operator, got {tok.value!r} at {tok.pos}"
            )
        right = self.term()
        return Compare(op, left, right)

    # -- terms -------------------------------------------------------------
    def term(self) -> Term:
        return self._additive()

    def _additive(self) -> Term:
        left = self._multiplicative()
        while True:
            op = self._match_symbol("+", "-")
            if op is None:
                return left
            left = Arith(op, left, self._multiplicative())

    def _multiplicative(self) -> Term:
        left = self._unary_term()
        while True:
            op = self._match_symbol("*", "/")
            if op is None:
                return left
            left = Arith(op, left, self._unary_term())

    def _unary_term(self) -> Term:
        if self._match_symbol("-"):
            operand = self._unary_term()
            if isinstance(operand, Const) and isinstance(
                operand.value, (int, float)
            ):
                return Const(-operand.value)
            return Arith("-", Const(0), operand)
        return self._primary_term()

    def _primary_term(self) -> Term:
        tok = self._peek()
        if tok.kind == "NUMBER":
            self._advance()
            return Const(float(tok.value) if "." in tok.value else int(tok.value))
        if tok.kind == "STRING":
            self._advance()
            return Const(tok.value)
        if tok.kind == "KEYWORD" and tok.value == "TIME":
            self._advance()
            return TimeTerm()
        if tok.kind == "KEYWORD" and tok.value == "DIST":
            self._advance()
            self._expect_symbol("(")
            left = self.term()
            self._expect_symbol(",")
            right = self.term()
            self._expect_symbol(")")
            return Dist(left, right)
        if tok.kind == "IDENT":
            name = self._advance().value
            term: Term = Var(name)
            path: list[str] = []
            while self._match_symbol("."):
                path.append(self._expect_ident())
            if len(path) == 0:
                return term
            if len(path) == 1:
                return Attr(term, path[0])
            if len(path) == 2:
                return SubAttr(term, path[0], path[1])
            raise FtlSyntaxError(
                f"attribute path too deep: {name}.{'.'.join(path)}"
            )
        if tok.kind == "SYMBOL" and tok.value == "(":
            self._advance()
            inner = self.term()
            self._expect_symbol(")")
            return inner
        raise FtlSyntaxError(f"unexpected token {tok.value!r} at {tok.pos}")
