"""Abstract syntax of FTL (section 3.2 of the paper).

Terms are variables, constants, attribute accesses (including the three
sub-attributes of a dynamic attribute), arithmetic, the special ``time``
object, and the ``DIST`` method.  Formulas are comparisons, the spatial
atoms ``INSIDE`` / ``OUTSIDE`` / ``WITHIN_SPHERE``, boolean connectives,
the two basic temporal operators ``Until`` and ``Nexttime``, the derived
operators ``Eventually`` / ``Always``, the bounded real-time forms of
section 3.4, and the assignment quantifier ``[x := term] f`` — "the
assignment is the only quantifier" in FTL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FtlSemanticsError
from repro.ftl.lexer import Span

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class of FTL terms."""

    #: Source range the node was parsed from; ``None`` for nodes built
    #: programmatically.  Dataclass subclasses override this with a field
    #: excluded from equality and hashing.
    span: Span | None = None

    def free_vars(self) -> set[str]:
        """Variables occurring in the term."""
        return set()

    def is_time_invariant(self) -> bool:
        """Whether the term's value is the same in every state of a future
        history (constants, static attributes, sub-attributes)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Var(Term):
    """A variable: an object variable (bound by the FROM clause) or a
    value variable (bound by an assignment quantifier)."""

    name: str
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return {self.name}

    def is_time_invariant(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """A constant (number or string)."""

    value: object
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return set()

    def is_time_invariant(self) -> bool:
        return True

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return f"{self.value}"


@dataclass(frozen=True)
class TimeTerm(Term):
    """The special database object ``time`` (section 2)."""

    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return set()

    def is_time_invariant(self) -> bool:
        return False

    def __str__(self) -> str:
        return "time"


@dataclass(frozen=True)
class Attr(Term):
    """``o.attr`` — the value of an attribute in the current state.

    For a dynamic attribute this is the *time-dependent* value
    ``A.value + A.function(t - A.updatetime)``.
    """

    obj: Term
    attr: str

    span: Span | None = field(default=None, compare=False, repr=False)
    def free_vars(self) -> set[str]:
        return self.obj.free_vars()

    def is_time_invariant(self) -> bool:
        # Conservatively time-varying: the evaluator refines this decision
        # per object class (static attributes are invariant).
        return False

    def __str__(self) -> str:
        return f"{self.obj}.{self.attr}"


@dataclass(frozen=True)
class SubAttr(Term):
    """``o.attr.sub`` — direct access to a dynamic sub-attribute.

    ``sub`` is ``value``, ``updatetime`` or ``function`` (section 2.1: "a
    user can query each sub-attribute independently", e.g. the objects for
    which ``X.POSITION.function = 5*t``).  ``function`` evaluates to the
    constant slope of a linear function.
    """

    obj: Term
    attr: str
    sub: str
    span: Span | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.sub not in ("value", "updatetime", "function"):
            raise FtlSemanticsError(
                f"unknown sub-attribute {self.sub!r}; expected value, "
                "updatetime or function"
            )

    def free_vars(self) -> set[str]:
        return self.obj.free_vars()

    def is_time_invariant(self) -> bool:
        # Sub-attributes only change on explicit update — constant along a
        # future history.
        return True

    def __str__(self) -> str:
        return f"{self.obj}.{self.attr}.{self.sub}"


@dataclass(frozen=True)
class Arith(Term):
    """Arithmetic on terms: ``+ - * /``."""

    op: str
    left: Term
    right: Term
    span: Span | None = field(default=None, compare=False, repr=False)
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.left.free_vars() | self.right.free_vars()

    def is_time_invariant(self) -> bool:
        return self.left.is_time_invariant() and self.right.is_time_invariant()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Dist(Term):
    """``DIST(o1, o2)`` — distance between two point objects."""

    left: Term
    right: Term
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.left.free_vars() | self.right.free_vars()

    def is_time_invariant(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"DIST({self.left}, {self.right})"


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class of FTL formulas."""

    #: Source range the node was parsed from (``None`` when built
    #: programmatically); excluded from equality and hashing.
    span: Span | None = None

    def free_vars(self) -> set[str]:
        """Free variables of the formula."""
        raise NotImplementedError

    def is_conjunctive(self) -> bool:
        """Whether the formula is in the negation-free fragment the
        appendix algorithm handles (section 3.5)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Compare(Formula):
    """``left op right`` with op in ``= != < <= > >=``."""

    op: str
    left: Term
    right: Term
    span: Span | None = field(default=None, compare=False, repr=False)
    span: Span | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.op not in ("=", "!=", "<", "<=", ">", ">="):
            raise FtlSemanticsError(f"unknown comparison {self.op!r}")

    def free_vars(self) -> set[str]:
        return self.left.free_vars() | self.right.free_vars()

    def is_conjunctive(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Inside(Formula):
    """``INSIDE(o, R)`` — the point object lies in named region ``R``."""

    obj: Term
    region: str
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.obj.free_vars()

    def is_conjunctive(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"INSIDE({self.obj}, {self.region})"


@dataclass(frozen=True)
class Outside(Formula):
    """``OUTSIDE(o, R)``."""

    obj: Term
    region: str
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.obj.free_vars()

    def is_conjunctive(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"OUTSIDE({self.obj}, {self.region})"


@dataclass(frozen=True)
class WithinSphere(Formula):
    """``WITHIN_SPHERE(r, o1, ..., ok)`` (section 2)."""

    radius: float
    objs: tuple[Term, ...]
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        out: set[str] = set()
        for o in self.objs:
            out |= o.free_vars()
        return out

    def is_conjunctive(self) -> bool:
        return True

    def __str__(self) -> str:
        args = ", ".join(str(o) for o in self.objs)
        return f"WITHIN_SPHERE({self.radius}, {args})"


@dataclass(frozen=True)
class AndF(Formula):
    """Conjunction."""

    left: Formula
    right: Formula
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.left.free_vars() | self.right.free_vars()

    def is_conjunctive(self) -> bool:
        return self.left.is_conjunctive() and self.right.is_conjunctive()

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class OrF(Formula):
    """Disjunction."""

    left: Formula
    right: Formula
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.left.free_vars() | self.right.free_vars()

    def is_conjunctive(self) -> bool:
        return self.left.is_conjunctive() and self.right.is_conjunctive()

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class NotF(Formula):
    """Negation — outside the conjunctive fragment of section 3.5; the
    interval evaluator supports it only over enumerable (object-typed)
    free variables, where safety is restored."""

    operand: Formula
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.operand.free_vars()

    def is_conjunctive(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class Until(Formula):
    """``f Until g`` — one of the two basic operators."""

    left: Formula
    right: Formula
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.left.free_vars() | self.right.free_vars()

    def is_conjunctive(self) -> bool:
        return self.left.is_conjunctive() and self.right.is_conjunctive()

    def __str__(self) -> str:
        return f"({self.left} UNTIL {self.right})"


@dataclass(frozen=True)
class UntilWithin(Formula):
    """``f until within c g`` (section 3.4)."""

    bound: float
    left: Formula
    right: Formula
    span: Span | None = field(default=None, compare=False, repr=False)
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.left.free_vars() | self.right.free_vars()

    def is_conjunctive(self) -> bool:
        return self.left.is_conjunctive() and self.right.is_conjunctive()

    def __str__(self) -> str:
        return f"({self.left} UNTIL WITHIN {self.bound} {self.right})"


@dataclass(frozen=True)
class Nexttime(Formula):
    """``Nexttime f`` — the other basic operator."""

    operand: Formula
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.operand.free_vars()

    def is_conjunctive(self) -> bool:
        return self.operand.is_conjunctive()

    def __str__(self) -> str:
        return f"(NEXTTIME {self.operand})"


@dataclass(frozen=True)
class Eventually(Formula):
    """``Eventually f`` = ``true Until f``."""

    operand: Formula
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.operand.free_vars()

    def is_conjunctive(self) -> bool:
        return self.operand.is_conjunctive()

    def __str__(self) -> str:
        return f"(EVENTUALLY {self.operand})"


@dataclass(frozen=True)
class EventuallyWithin(Formula):
    """``Eventually within c f`` (section 3.4)."""

    bound: float
    operand: Formula
    span: Span | None = field(default=None, compare=False, repr=False)
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.operand.free_vars()

    def is_conjunctive(self) -> bool:
        return self.operand.is_conjunctive()

    def __str__(self) -> str:
        return f"(EVENTUALLY WITHIN {self.bound} {self.operand})"


@dataclass(frozen=True)
class EventuallyAfter(Formula):
    """``Eventually after c f`` (section 3.4)."""

    bound: float
    operand: Formula
    span: Span | None = field(default=None, compare=False, repr=False)
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.operand.free_vars()

    def is_conjunctive(self) -> bool:
        return self.operand.is_conjunctive()

    def __str__(self) -> str:
        return f"(EVENTUALLY AFTER {self.bound} {self.operand})"


@dataclass(frozen=True)
class Always(Formula):
    """``Always f`` = ``NOT Eventually NOT f`` — evaluated against the
    expiration horizon of section 2.3."""

    operand: Formula
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.operand.free_vars()

    def is_conjunctive(self) -> bool:
        return self.operand.is_conjunctive()

    def __str__(self) -> str:
        return f"(ALWAYS {self.operand})"


@dataclass(frozen=True)
class AlwaysFor(Formula):
    """``Always for c f`` (section 3.4)."""

    bound: float
    operand: Formula
    span: Span | None = field(default=None, compare=False, repr=False)
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return self.operand.free_vars()

    def is_conjunctive(self) -> bool:
        return self.operand.is_conjunctive()

    def __str__(self) -> str:
        return f"(ALWAYS FOR {self.bound} {self.operand})"


@dataclass(frozen=True)
class Assign(Formula):
    """``[x := term] f`` — the assignment quantifier.

    Binds ``x`` to the value of ``term`` at the current state, then
    evaluates ``f`` at the same state under the extended evaluation.
    """

    var: str
    term: Term
    body: Formula
    span: Span | None = field(default=None, compare=False, repr=False)

    def free_vars(self) -> set[str]:
        return (self.body.free_vars() - {self.var}) | self.term.free_vars()

    def is_conjunctive(self) -> bool:
        return self.body.is_conjunctive()

    def __str__(self) -> str:
        return f"[{self.var} := {self.term}] {self.body}"
