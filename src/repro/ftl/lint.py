"""Command-line front end to the FTL static analyzer.

Usage::

    python -m repro.ftl.lint [--json] [--strict] [--deps] [--validity]
                             [--strict-deps] query-file ...

Each file holds one FTL query (``RETRIEVE ... FROM ... WHERE ...``);
blank lines and ``--`` comment lines are ignored.  Diagnostics print one
per line in the conventional ``file:line:col: severity[CODE]: message``
shape, or as one JSON object per file with ``--json``.  The exit status
is 1 when any file has an error-severity diagnostic (or fails to parse),
else 0.  ``--strict`` also fails on warnings.

``--deps`` appends the static update-impact report (DESIGN.md §10): the
query's per-class read-set, the update kinds it is provably insensitive
to, and the FTL701/FTL702 informational findings.  ``--validity``
appends the temporal-validity report (DESIGN.md §11): the condition's
symbolic horizon, the classes whose motion events bound it, and the
FTL801–FTL803 findings.  Both compose — each report is a separate key
of the same per-file JSON document — and neither affects the exit
status: they describe refresh behaviour, not query validity.

``--strict-deps`` (implies ``--deps``) promotes the FTL701/FTL702
update-impact findings from report-only to failures: a query with a
constant subcondition (FTL701) or one provably insensitive to an
update kind of a bound class (FTL702) exits 1.  Both usually indicate
a condition that asks less than its FROM clause suggests — the strict
gate surfaces them in CI the way ``--strict`` surfaces warnings.

The CLI is schema-less: checks that need the database schema (attribute
existence, region names) are skipped, so a clean lint run does not
guarantee the query matches any particular database — registration-time
analysis (:class:`~repro.core.queries.ContinuousQuery`) rechecks with
the schema in hand.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import FtlSemanticsError, FtlSyntaxError
from repro.ftl.analysis import AnalysisResult
from repro.ftl.parser import parse_query

#: Pseudo rule codes for failures upstream of the analyzer.
SYNTAX = "syntax"
SEMANTICS = "semantics"


def strip_comments(text: str) -> str:
    """Drop ``--``-prefixed comment lines, preserving line numbers."""
    lines = []
    for line in text.splitlines():
        lines.append("" if line.lstrip().startswith("--") else line)
    return "\n".join(lines)


def lint_text(text: str, schema=None) -> tuple[AnalysisResult | None, list[dict]]:
    """Analyze one query text.

    Returns ``(analysis, extra)`` where ``extra`` holds JSON-shaped
    pseudo-diagnostics for parse/construction failures (in which case
    ``analysis`` is None).
    """
    try:
        query = parse_query(strip_comments(text))
    except FtlSyntaxError as exc:
        return None, [_pseudo(SYNTAX, exc)]
    except FtlSemanticsError as exc:
        return None, [_pseudo(SEMANTICS, exc)]
    return query.analyze(schema=schema), []


def _pseudo(code: str, exc: Exception) -> dict:
    out = {"code": code, "severity": "error", "message": str(exc)}
    span = getattr(exc, "span", None)
    if span is not None:
        out["span"] = {
            "start": span.start,
            "end": span.end,
            "line": span.line,
            "col": span.col,
        }
    return out


def _location(diag_json: dict) -> str:
    span = diag_json.get("span")
    if span is None:
        return ""
    return f"{span['line']}:{span['col']}"


def _human_line(path: str, diag_json: dict) -> str:
    loc = _location(diag_json)
    prefix = f"{path}:{loc}" if loc else path
    return (
        f"{prefix}: {diag_json['severity']}[{diag_json['code']}]: "
        f"{diag_json['message']}"
    )


def deps_report(text: str) -> dict | None:
    """The update-impact report of one query text (None on parse failure).

    Schema-less like the rest of the CLI: attribute reads the schema
    could classify precisely come back as both ``attribute`` and
    ``static`` dependencies (sound either way), and the canonical
    position axes are still recognised.
    """
    from repro.ftl.analysis.deps import analyze_query_deps

    try:
        query = parse_query(strip_comments(text))
    except (FtlSyntaxError, FtlSemanticsError):
        return None
    return analyze_query_deps(query).to_json()


def validity_report(text: str) -> dict | None:
    """The temporal-validity report of one query text (None on parse
    failure).

    Schema-less like :func:`deps_report`; the horizons are *symbolic*
    (mode, offset, classes) — concretization against motion events
    happens at refresh time, not here.
    """
    from repro.ftl.analysis.validity import analyze_query_validity

    try:
        query = parse_query(strip_comments(text))
    except (FtlSyntaxError, FtlSemanticsError):
        return None
    return analyze_query_validity(query).to_json()


def lint_file(path: str, deps: bool = False, validity: bool = False) -> dict:
    """Lint one file; returns its JSON report.

    ``deps`` and ``validity`` compose: each attaches its report under
    its own key (``dependencies`` / ``validity``) of the same document.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        return {
            "file": path,
            "ok": False,
            "diagnostics": [
                {"code": SYNTAX, "severity": "error", "message": str(exc)}
            ],
        }
    analysis, extra = lint_text(text)
    if analysis is None:
        return {"file": path, "ok": False, "diagnostics": extra}
    report = analysis.to_json()
    report["file"] = path
    if deps:
        report["dependencies"] = deps_report(text)
    if validity:
        report["validity"] = validity_report(text)
    return report


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.ftl.lint",
        description="Statically analyze FTL query files.",
    )
    parser.add_argument("files", nargs="+", help="FTL query files")
    parser.add_argument(
        "--json", action="store_true", help="emit one JSON report per file"
    )
    parser.add_argument(
        "--strict", action="store_true", help="fail on warnings too"
    )
    parser.add_argument(
        "--deps",
        action="store_true",
        help="also report the update-impact (read-set) analysis",
    )
    parser.add_argument(
        "--validity",
        action="store_true",
        help="also report the temporal-validity (horizon) analysis",
    )
    parser.add_argument(
        "--strict-deps",
        action="store_true",
        help="fail on FTL701/FTL702 update-impact findings (implies --deps)",
    )
    opts = parser.parse_args(argv)
    if opts.strict_deps:
        opts.deps = True

    status = 0
    reports = []
    for path in opts.files:
        report = lint_file(path, deps=opts.deps, validity=opts.validity)
        reports.append(report)
        severities = {d["severity"] for d in report["diagnostics"]}
        if "error" in severities or (opts.strict and "warning" in severities):
            status = 1
        if opts.strict_deps and _deps_findings(report):
            status = 1

    if opts.json:
        print(json.dumps(reports, indent=2))
        return status

    clean = 0
    for report in reports:
        if not report["diagnostics"]:
            clean += 1
        for diag in report["diagnostics"]:
            print(_human_line(report["file"], diag))
        if opts.deps and report.get("dependencies") is not None:
            _print_deps(report["file"], report["dependencies"])
        if opts.validity and report.get("validity") is not None:
            _print_validity(report["file"], report["validity"])
    checked = len(reports)
    print(f"{checked} file(s) checked, {checked - clean} with findings")
    return status


def _deps_findings(report: dict) -> list[dict]:
    """The FTL701/FTL702 findings of one file report (strict-deps gate)."""
    deps = report.get("dependencies")
    if not deps:
        return []
    return [
        d
        for d in deps.get("diagnostics", ())
        if d.get("code") in ("FTL701", "FTL702")
    ]


def _print_deps(path: str, deps: dict) -> None:
    """Human-readable update-impact block for one file."""
    print(f"{path}: dependencies:")
    for cls, info in deps["by_class"].items():
        reads = ", ".join(info["reads"]) or "nothing"
        line = f"  {cls}: reads {reads}"
        if info["insensitive_to"]:
            line += f"; insensitive to {', '.join(info['insensitive_to'])}"
        print(line)
    if deps["regions"]:
        print(f"  regions: {', '.join(deps['regions'])}")
    for diag in deps["diagnostics"]:
        print("  " + _human_line(path, diag))


def _print_validity(path: str, validity: dict) -> None:
    """Human-readable temporal-validity block for one file."""
    print(f"{path}: validity:")
    print("  horizon: " + horizon_phrase(validity["root"]))
    if validity["classes"]:
        print(f"  event classes: {', '.join(validity['classes'])}")
    nodes = validity["nodes"]
    print(
        f"  nodes: {nodes['total']} total"
        f" ({nodes['constant']} constant, {nodes['sliding']} sliding,"
        f" {nodes['guarded']} guarded, {nodes['bottom']} bottom)"
    )
    for diag in validity["diagnostics"]:
        print("  " + _human_line(path, diag))


def horizon_phrase(root: dict) -> str:
    """One-line human rendering of a symbolic horizon JSON object."""
    if root.get("kind") == "bottom":
        reason = root.get("reason", "")
        return f"none ({reason})" if reason else "none"
    constraints = root.get("constraints", [])
    if not constraints:
        return "unbounded (condition reads no time-varying state)"
    parts = []
    for c in constraints:
        classes = ", ".join(c["classes"])
        if c["mode"] == "guarded":
            parts.append(f"guarded by events of {classes}")
        elif c["offset"]:
            parts.append(f"events of {classes} minus {c['offset']:g}")
        else:
            parts.append(f"events of {classes}")
    return "min of " + "; ".join(parts) if len(parts) > 1 else parts[0]


if __name__ == "__main__":
    sys.exit(main())
