"""Incremental maintenance of continuous-query answers.

The paper's processing scheme evaluates a continuous query once and then
keeps the materialised ``Answer(CQ)`` valid; section 2.3 only says the
answer "has to be reevaluated when an update occurs that may change" it.
Recomputing the whole ``R_f`` on every update reintroduces exactly the
per-update cost the single-evaluation scheme was designed to avoid, so
this module recomputes *per instantiation* instead:

* the initial evaluation records every per-subformula relation ``R_g`` in
  a :class:`QueryCache` (the ``trace`` hook of
  :class:`~repro.ftl.evaluator.IntervalEvaluator`);
* when objects ``D`` are explicitly updated,
  :class:`PartialIntervalEvaluator` recomputes, bottom-up, only the rows
  of each ``R_g`` whose instantiation mentions an object of ``D`` — the
  *recompute frontier* — and splices them into the cached relation with
  :meth:`~repro.ftl.relations.FtlRelation.patch`.

Soundness rests on two structural facts:

1. **FTL is future-looking.**  Satisfaction of any formula at tick ``t``
   depends only on states at ``t' >= t`` (and the fixed window end), so a
   cached row computed at an earlier refresh remains correct on
   ``[now, end]`` as long as none of its objects changed.  Stale prefixes
   before the latest refresh are never read (``Answer.at`` is only asked
   about the present and the continuous query clips on materialisation).
2. **Every connective is per-instantiation decomposable.**  For each
   output row of an appendix join, the contributing child rows are
   projections of that row, so a row containing no dirty object is
   derived exclusively from clean child rows and need not be recomputed.
   This is why the frontier is derived per subformula: an update to
   object ``o`` dirties, at each node, exactly the instantiations pairing
   ``o`` with other objects — no more, no less.

The assignment quantifier is the one construct whose value domains couple
instantiations (the candidate values of ``[y := q] g`` are pooled across
all objects), so formulas containing ``Assign`` fall back to full
reevaluation — see :func:`supports_incremental` and DESIGN.md.

With a static update-impact analysis
(:mod:`repro.ftl.analysis.deps`), whole subtrees of the recompute are
skipped: a node whose *read-set* — the (class, kind) state it can
observe — is disjoint from the footprints of every dirty update has a
cached relation that recomputation would reproduce bit-for-bit, even
for rows mentioning dirty objects (nothing those rows read was
touched).  Its delta is the cached dirty frontier verbatim, so parent
joins still re-derive their own stale rows (DESIGN.md §10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import FtlSemanticsError
from repro.ftl.ast import (
    Always,
    AlwaysFor,
    AndF,
    Compare,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    Until,
    UntilWithin,
    WithinSphere,
)
from repro.ftl.context import EvalContext
from repro.ftl.evaluator import IntervalEvaluator
from repro.ftl.relations import FtlRelation, Instantiation, merge_instantiations
from repro.temporal import (
    Interval,
    always,
    always_for,
    eventually,
    eventually_after,
    eventually_within,
    nexttime,
    until,
    until_within,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.history import History
    from repro.ftl.analysis.plan import EvalPlan
    from repro.ftl.query import FtlQuery

_ATOMS = (Compare, Inside, Outside, WithinSphere)


def supports_incremental(f: Formula) -> bool:
    """Whether a formula is in the incrementally maintainable fragment.

    Everything except the assignment quantifier: ``[y := q] g`` pools the
    observed values of ``q`` over *all* instantiations into the body's
    variable domain, so a single dirty object can change the rows of every
    clean instantiation — the per-object decomposition breaks down.

    Thin compatibility wrapper over
    :func:`repro.ftl.analysis.fragment.incremental_blockers`, which
    additionally *names* each disqualifying subformula with a source
    span (rule FTL401) — prefer it when the caller can surface a
    diagnostic.
    """
    from repro.ftl.analysis.fragment import incremental_blockers

    return not incremental_blockers(f)


@dataclass
class QueryCache:
    """Per-subformula relations of the last evaluation, keyed by AST node.

    The cached :class:`FtlRelation` objects are mutated in place by
    :class:`PartialIntervalEvaluator` — the cache always reflects the most
    recent refresh.  Keys are ``id(subformula)``; the owning query must
    keep the formula tree alive (continuous queries hold their
    :class:`~repro.ftl.query.FtlQuery`).
    """

    relations: dict[int, FtlRelation] = field(default_factory=dict)

    def __len__(self) -> int:
        """Number of cached subformula relations (metrics/diagnostics)."""
        return len(self.relations)


def evaluate_with_cache(
    query: "FtlQuery",
    history: "History",
    horizon: int,
    analytic_atoms: bool = True,
    plan: "EvalPlan | None" = None,
    index_pruning: bool = True,
    solve_cache: bool = True,
    batch_solver: bool = True,
    validity: "dict[int, float] | None" = None,
) -> tuple[FtlRelation, QueryCache, IntervalEvaluator]:
    """Full appendix evaluation that also captures the subformula cache.

    Returns the *unprojected* ``R_f`` (the continuous query projects onto
    its targets lazily), the populated :class:`QueryCache`, and the
    evaluator (for its instrumentation counters).  With a ``plan``, the
    cost-ordered formula tree is evaluated and cached — later incremental
    refreshes must then patch the *ordered* tree (the plan owner keeps it
    alive; see :class:`~repro.core.queries.ContinuousQuery`).
    """
    ctx = EvalContext(history, horizon, query.bindings)
    cache = QueryCache()
    evaluator = IntervalEvaluator(
        ctx,
        analytic_atoms=analytic_atoms,
        trace=cache.relations,
        plan=plan,
        index_pruning=index_pruning,
        solve_cache=solve_cache,
        batch_solver=batch_solver,
        validity=validity,
    )
    relation = evaluator.evaluate(query.where)
    return relation, cache, evaluator


class PartialIntervalEvaluator(IntervalEvaluator):
    """Bottom-up recomputation of the dirty rows of each ``R_g``.

    For every subformula the evaluator computes the *delta relation* —
    fresh interval sets for exactly the instantiations that mention a
    dirty object — and patches it into the cached relation, which thereby
    becomes the relation a full reevaluation would have produced (up to
    stale, never-read interval content before the current window start).
    """

    def __init__(
        self,
        ctx: EvalContext,
        cache: QueryCache,
        dirty_objects: Iterable[object],
        analytic_atoms: bool = True,
        plan: "EvalPlan | None" = None,
        index_pruning: bool = True,
        solve_cache: bool = True,
        batch_solver: bool = True,
        deps: "object | None" = None,
        dirty_deps: "frozenset | None" = None,
        validity: "dict[int, float] | None" = None,
        dirty_divergence: "dict | None" = None,
    ) -> None:
        super().__init__(
            ctx,
            analytic_atoms=analytic_atoms,
            plan=plan,
            index_pruning=index_pruning,
            solve_cache=solve_cache,
            batch_solver=batch_solver,
            validity=validity,
        )
        self.cache = cache
        self.dirty_values = frozenset(dirty_objects)
        #: Per-node read-sets from the static update-impact analysis
        #: (:class:`~repro.ftl.analysis.deps.DepAnalysis`), keyed over the
        #: same tree the cache is keyed over.  ``None`` disables subtree
        #: skipping.
        self.deps = deps
        #: The (class, kind) footprints of the updates being refreshed
        #: over; ``None`` means some update could not be attributed and
        #: subtree skipping stands down for this refresh.
        self.dirty_deps = dirty_deps
        #: Per dirty footprint, the earliest time any update carrying it
        #: observably diverges from the pre-update state
        #: (:func:`~repro.ftl.analysis.validity.update_divergence`,
        #: min-folded per footprint by the continuous query).  ``None``
        #: disables horizon-based subtree skipping.
        self.dirty_divergence = dirty_divergence
        self._clean_domain: dict[str, list[object]] = {}
        self._dirty_domain: dict[str, list[object]] = {}
        self._done: dict[int, FtlRelation] = {}
        #: Dirty instantiations enumerated across all subformulas — the
        #: size of the recompute frontier actually walked, counted whether
        #: or not the recomputed satisfaction set turned out non-empty
        #: (bench instrumentation; a full reevaluation walks every
        #: instantiation of every node instead).
        self.rows_recomputed = 0
        #: Subtrees whose read-set was disjoint from every dirty footprint
        #: and whose cached rows were therefore reused without
        #: recomputation (DESIGN.md §10).
        self.subtrees_skipped = 0
        #: Subtrees whose read-set *was* touched by a dirty footprint but
        #: whose validity stamp and the updates' divergence times both
        #: reach the window end, proving recomputation would reproduce
        #: the cache (pass 8, DESIGN.md §11).
        self.horizon_subtrees_skipped = 0

    # ------------------------------------------------------------------
    def refresh(self, formula: Formula) -> FtlRelation:
        """Patch every cached ``R_g`` and return the refreshed ``R_f``."""
        if self.plan is not None:
            formula = self.plan.resolve(formula)
        self._delta(formula)
        return self.cache.relations[id(formula)]

    # ------------------------------------------------------------------
    def _delta(self, f: Formula) -> FtlRelation:
        key = id(f)
        done = self._done.get(key)
        if done is not None:
            return done
        cached = self.cache.relations.get(key)
        if cached is None:
            raise FtlSemanticsError(
                "no cached relation for subformula; a full evaluation must "
                "precede incremental refresh"
            )
        skipped = self._skip_delta(f, cached)
        if skipped is not None:
            self._done[key] = skipped
            return skipped
        delta = self._delta_node(f)
        stale = cached.rows_touching(self.dirty_values)
        cached.patch(stale, delta)
        self._done[key] = delta
        return delta

    def _skip_delta(
        self, f: Formula, cached: FtlRelation
    ) -> FtlRelation | None:
        """The no-recompute delta for a dependency-clean subtree, or None.

        When the subtree's statically inferred read-set is disjoint from
        every dirty update's (class, kind) footprint, a recomputation
        would reproduce the cached interval sets exactly — even for rows
        that mention dirty objects, because nothing those rows *read* was
        touched.  The delta is then the cached rows of the dirty frontier
        verbatim (so parent joins still re-derive their own stale rows),
        and the cached relation needs no patch.

        A second, pass-8 skip applies when the read-set *is* touched:
        if the node's validity stamp reaches the window end and every
        covered dirty update's divergence time does too (the new motion
        provably equals the old everywhere the remaining window can
        look), recomputation would still reproduce the cache bit-for-bit
        (DESIGN.md §11).
        """
        if self.deps is None or self.dirty_deps is None:
            return None
        reads = self.deps.reads_for(f)
        if reads is None or reads.conservative:
            return None
        if reads.disjoint_from(self.dirty_deps):
            self.subtrees_skipped += 1
        elif self._beyond_horizon(f, reads):
            self.horizon_subtrees_skipped += 1
        else:
            return None
        delta = FtlRelation(cached.variables)
        for inst in cached.rows_touching(self.dirty_values):
            delta.set(inst, cached.get(inst))
        return delta

    def _beyond_horizon(self, f: Formula, reads) -> bool:
        """Whether the node's stamp and every covered dirty update's
        divergence time all reach the window end."""
        if self.validity is None or self.dirty_divergence is None:
            return False
        stamp = self.validity.get(id(f))
        if stamp is None or stamp < self.ctx.end:
            return False
        for dep in self.dirty_deps:
            if not reads.covers(dep):
                continue
            divergence = self.dirty_divergence.get(dep)
            if divergence is None or divergence < self.ctx.end:
                return False
        return True

    def _full(self, f: Formula) -> FtlRelation:
        """The child's patched (fully refreshed) relation."""
        return self.cache.relations[id(f)]

    def _delta_node(self, f: Formula) -> FtlRelation:
        if isinstance(f, _ATOMS):
            return self._delta_atom(f)
        if isinstance(f, AndF):
            d1, d2 = self._delta(f.left), self._delta(f.right)
            out = self._conjunction(d1, self._full(f.right))
            # Each output row is determined by its unique pair of child
            # rows, so overlapping (both-dirty) rows re-add identical sets.
            for inst, iset in self._conjunction(self._full(f.left), d2).rows():
                out.add(inst, iset)
            return out
        if isinstance(f, OrF):
            self._delta(f.left)
            self._delta(f.right)
            return self._delta_disjunction(f)
        if isinstance(f, NotF):
            self._delta(f.operand)
            return self._delta_negation(f)
        if isinstance(f, Until):
            return self._delta_until(f, until)
        if isinstance(f, UntilWithin):
            bound = f.bound
            return self._delta_until(
                f, lambda a, b: until_within(bound, a, b)
            )
        if isinstance(f, Nexttime):
            return self._delta(f.operand).map_sets(
                lambda s: nexttime(s, self.ctx.start)
            )
        if isinstance(f, Eventually):
            return self._delta(f.operand).map_sets(
                lambda s: eventually(s, self.ctx.start)
            )
        if isinstance(f, EventuallyWithin):
            return self._delta(f.operand).map_sets(
                lambda s: eventually_within(f.bound, s, self.ctx.start)
            )
        if isinstance(f, EventuallyAfter):
            return self._delta(f.operand).map_sets(
                lambda s: eventually_after(f.bound, s, self.ctx.start)
            )
        if isinstance(f, Always):
            return self._delta(f.operand).map_sets(
                lambda s: always(s, self.ctx.start, self.ctx.end)
            )
        if isinstance(f, AlwaysFor):
            return self._delta(f.operand).map_sets(
                lambda s: always_for(f.bound, s)
            )
        raise FtlSemanticsError(
            f"incremental evaluation does not support {type(f).__name__}"
        )

    # ------------------------------------------------------------------
    # Dirty-instantiation enumeration
    # ------------------------------------------------------------------
    def _split(self, var: str) -> tuple[list[object], list[object]]:
        try:
            return self._clean_domain[var], self._dirty_domain[var]
        except KeyError:
            clean, dirty = self.ctx.split_domain(var, self.dirty_values)
            self._clean_domain[var] = clean
            self._dirty_domain[var] = dirty
            return clean, dirty

    def _dirty_product(
        self, variables: Iterable[str]
    ) -> Iterator[Instantiation]:
        """All instantiations with at least one dirty value, each once.

        Position ``i`` is the *first* dirty position: earlier variables
        range over clean values only, later ones over their full domains —
        a disjoint cover of the frontier costing
        ``O(k * |dirty| * n^(k-1))`` instead of the full ``O(n^k)``.
        """
        variables = list(variables)
        for i, pivot in enumerate(variables):
            _clean_p, dirty_p = self._split(pivot)
            if not dirty_p:
                continue
            axes: list[list[object]] = []
            for j, var in enumerate(variables):
                if j < i:
                    axes.append(self._split(var)[0])
                elif j == i:
                    axes.append(dirty_p)
                else:
                    axes.append(self.ctx.domain(var))
            for inst in product(*axes):
                self.rows_recomputed += 1
                yield inst

    def _touches(self, inst: Instantiation) -> bool:
        return any(value in self.dirty_values for value in inst)

    # ------------------------------------------------------------------
    # Per-connective deltas
    # ------------------------------------------------------------------
    def _atom_gate(self, f: Formula):
        """Index pruning is a *full-evaluation* optimisation: building
        the trajectory index costs O(all objects) while a delta refresh
        recomputes only the dirty frontier — typically a handful of
        rows — so the gate would cost more than every solve it could
        save.  Deltas always take the solve path (through the shared
        cache, which is O(1) per row and still applies)."""
        return None

    def _delta_atom(self, f: Formula) -> FtlRelation:
        free = sorted(f.free_vars())
        out = FtlRelation(tuple(free))
        gate = self._atom_gate(f)
        stats = self._stats_for(f)
        if self._use_batch():
            # Materialize the frontier first: _dirty_product counts
            # rows_recomputed as it yields.
            return self._batched_rows(
                f, free, list(self._dirty_product(free)), out, gate, stats
            )
        for inst in self._dirty_product(free):
            env = dict(zip(free, inst))
            out.set(
                tuple(inst), self._gated_atom_intervals(f, env, gate, stats)
            )
        return out

    def _delta_disjunction(self, f: OrF) -> FtlRelation:
        r1, r2 = self._full(f.left), self._full(f.right)
        out_vars = tuple(sorted(set(r1.variables) | set(r2.variables)))
        out = FtlRelation(out_vars)
        idx1 = [out_vars.index(v) for v in r1.variables]
        idx2 = [out_vars.index(v) for v in r2.variables]
        for inst in self._dirty_product(out_vars):
            s1 = r1.get(tuple(inst[i] for i in idx1))
            s2 = r2.get(tuple(inst[i] for i in idx2))
            combined = s1.union(s2)
            if not combined.is_empty:
                out.set(tuple(inst), combined)
        return out

    def _delta_negation(self, f: NotF) -> FtlRelation:
        inner = self._full(f.operand)
        bound = Interval(self.ctx.start, self.ctx.end)
        out = FtlRelation(inner.variables)
        for inst in self._dirty_product(inner.variables):
            out.set(tuple(inst), inner.get(tuple(inst)).complement(bound))
        return out

    def _delta_until(self, f: Formula, combine) -> FtlRelation:
        self._delta(f.left)
        d2 = self._delta(f.right)
        r1, r2 = self._full(f.left), self._full(f.right)
        # Branch A — dirty right-side rows, extras over their full domains.
        out = self._until_join(r1, d2, combine)
        # Branch B — clean right-side rows joined with dirty extras (the
        # r1-only variables; dirty *shared* values always appear in the
        # right side's instantiation and are covered by branch A).
        shared = [v for v in r1.variables if v in r2.variables]
        extra1 = [v for v in r1.variables if v not in r2.variables]
        if extra1:
            dirty_extras = list(self._dirty_product(extra1))
            if dirty_extras:
                idx2_shared = [r2.index_of(v) for v in shared]
                for inst2, set2 in r2.rows():
                    if self._touches(inst2):
                        continue
                    key = tuple(inst2[i] for i in idx2_shared)
                    for extra_vals in dirty_extras:
                        inst1_like = self._compose(
                            r1.variables, shared, key, extra1, tuple(extra_vals)
                        )
                        result = combine(r1.get(inst1_like), set2)
                        if result.is_empty:
                            continue
                        merged = merge_instantiations(
                            out.variables,
                            r1.variables,
                            inst1_like,
                            r2.variables,
                            inst2,
                        )
                        out.add(merged, result)
        return out
