"""The naive reference evaluator: per-state semantics of section 3.3.

This evaluator follows the paper's satisfaction definition *literally*:
a formula is checked at every state of the (finite-horizon) history, with
temporal operators quantifying over future states by explicit iteration.
It is exponentially slower than the interval algorithm but obviously
correct — which is exactly what makes it the oracle the property tests
(and experiment E9) compare the appendix algorithm against.

It also handles the full language including negation and recorded
histories, so persistent queries (whose algorithm the paper explicitly
postpones) are evaluated through it.
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING

from repro.errors import FtlSemanticsError
from repro.ftl.ast import (
    Always,
    AlwaysFor,
    AndF,
    Assign,
    Compare,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    Until,
    UntilWithin,
    WithinSphere,
)
from repro.ftl.atoms import region_solve_key, sphere_solve_key
from repro.ftl.context import Env, EvalContext
from repro.ftl.relations import FtlRelation
from repro.spatial.predicates import within_a_sphere
from repro.temporal import DISCRETE, IntervalSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.ftl.analysis.plan import EvalPlan

_CMP = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class NaiveEvaluator:
    """Per-state evaluation with memoisation on (formula, env, tick)."""

    def __init__(
        self,
        ctx: EvalContext,
        plan: "EvalPlan | None" = None,
        use_solve_cache: bool = False,
        batch_solver: bool = False,
    ) -> None:
        self.ctx = ctx
        #: Accepted for API symmetry with the interval evaluator and
        #: ignored: per-state evaluation has no kinetic solves to batch,
        #: which keeps this oracle independent of the numpy backend.
        self.batch_solver = batch_solver
        #: Cost-ordered plan: the ordered conjunction tree short-circuits
        #: selective conjuncts first under ``and``.
        self.plan = plan
        #: Opt-in (default off, preserving this evaluator's independence
        #: as the differential oracle): spatial atoms read through the
        #: shared kinetic-solve cache — a hit answers ``contains(t)`` on
        #: the cached interval set instead of recomputing geometry.
        #: Read-only: per-state evaluation never *fills* the cache.
        self._solve_cache = ctx.solve_cache() if use_solve_cache else None
        self.cache_hits = 0
        self._memo: dict[tuple, bool] = {}

    def _cached_atom(self, key) -> "IntervalSet | None":
        if self._solve_cache is None or key is None:
            return None
        hit = self._solve_cache.get(key, record=False)
        if hit is not None:
            self.cache_hits += 1
        return hit

    # ------------------------------------------------------------------
    def evaluate(self, formula: Formula) -> FtlRelation:
        """The relation of all instantiations of the formula's free object
        variables, each with its set of satisfying ticks."""
        if self.plan is not None:
            formula = self.plan.resolve(formula)
        free = sorted(formula.free_vars())
        for var in free:
            if not self.ctx.is_object_var(var):
                raise FtlSemanticsError(
                    f"free variable {var!r} is not bound by FROM"
                )
        domains = [self.ctx.domain(v) for v in free]
        relation = FtlRelation(tuple(free))
        for inst in product(*domains):
            env = dict(zip(free, inst))
            flags = [
                self.satisfied(formula, env, t) for t in self.ctx.ticks()
            ]
            iset = IntervalSet.from_boolean_samples(
                flags, DISCRETE, start=self.ctx.start
            )
            relation.set(inst, iset)
        return relation

    # ------------------------------------------------------------------
    def satisfied(self, f: Formula, env: Env, t: int) -> bool:
        """Satisfaction of ``f`` at the state with time stamp ``t`` with
        respect to the evaluation ``env`` (section 3.3)."""
        key = (
            id(f),
            tuple(sorted((k, v) for k, v in env.items() if k in f.free_vars())),
            t,
        )
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._satisfied(f, env, t)
        self._memo[key] = result
        return result

    def _satisfied(self, f: Formula, env: Env, t: int) -> bool:
        ctx = self.ctx
        end = ctx.end

        if isinstance(f, Compare):
            lhs = ctx.eval_term(f.left, env, t)
            rhs = ctx.eval_term(f.right, env, t)
            if lhs is None or rhs is None:
                return False
            return _CMP[f.op](lhs, rhs)

        if isinstance(f, (Inside, Outside)):
            obj_id = ctx.eval_term(f.obj, env, t)
            region = ctx.history.region(f.region)
            if self._solve_cache is not None:
                hit = self._cached_atom(
                    region_solve_key(ctx, region, obj_id)
                )
                if hit is not None:
                    inside = hit.contains(t)
                    return inside if isinstance(f, Inside) else not inside
            inside = region.contains(ctx.history.position(obj_id, t))
            return inside if isinstance(f, Inside) else not inside

        if isinstance(f, WithinSphere):
            obj_ids = [ctx.eval_term(o, env, t) for o in f.objs]
            if self._solve_cache is not None:
                hit = self._cached_atom(
                    sphere_solve_key(ctx, f.radius, obj_ids)
                )
                if hit is not None:
                    return hit.contains(t)
            points = [ctx.history.position(oid, t) for oid in obj_ids]
            return within_a_sphere(f.radius, points)

        if isinstance(f, AndF):
            return self.satisfied(f.left, env, t) and self.satisfied(
                f.right, env, t
            )
        if isinstance(f, OrF):
            return self.satisfied(f.left, env, t) or self.satisfied(
                f.right, env, t
            )
        if isinstance(f, NotF):
            return not self.satisfied(f.operand, env, t)

        if isinstance(f, Until):
            for tp in range(t, end + 1):
                if self.satisfied(f.right, env, tp):
                    return True
                if not self.satisfied(f.left, env, tp):
                    return False
            return False

        if isinstance(f, UntilWithin):
            limit = min(end, t + int(f.bound))
            for tp in range(t, limit + 1):
                if self.satisfied(f.right, env, tp):
                    return True
                if not self.satisfied(f.left, env, tp):
                    return False
            return False

        if isinstance(f, Nexttime):
            if t + 1 > end:
                return False
            return self.satisfied(f.operand, env, t + 1)

        if isinstance(f, Eventually):
            return any(
                self.satisfied(f.operand, env, tp) for tp in range(t, end + 1)
            )

        if isinstance(f, EventuallyWithin):
            limit = min(end, t + int(f.bound))
            return any(
                self.satisfied(f.operand, env, tp)
                for tp in range(t, limit + 1)
            )

        if isinstance(f, EventuallyAfter):
            return any(
                self.satisfied(f.operand, env, tp)
                for tp in range(t + int(f.bound), end + 1)
            )

        if isinstance(f, Always):
            return all(
                self.satisfied(f.operand, env, tp) for tp in range(t, end + 1)
            )

        if isinstance(f, AlwaysFor):
            limit = t + int(f.bound)
            if limit > end:
                # The window reaches past the modelled horizon: bounded
                # semantics call this unsatisfied (matching the interval
                # algorithm's erosion).
                return False
            return all(
                self.satisfied(f.operand, env, tp)
                for tp in range(t, limit + 1)
            )

        if isinstance(f, Assign):
            value = self.ctx.eval_term(f.term, env, t)
            inner = dict(env)
            inner[f.var] = value
            return self.satisfied(f.body, inner, t)

        at = f" at {f.span}" if f.span is not None else ""
        raise FtlSemanticsError(f"unsupported formula {type(f).__name__}{at}")
