"""FTL — Future Temporal Logic (section 3 of the paper).

The query language of the MOST model: temporal formulas over database
histories, with ``Until`` / ``Nexttime`` as the basic operators, derived
``Eventually`` / ``Always``, the bounded real-time operators of section
3.4, and the assignment quantifier.

Two evaluators are provided:

* :class:`~repro.ftl.evaluator.IntervalEvaluator` — the appendix
  algorithm: bottom-up interval relations, chain-merging ``Until`` join.
* :class:`~repro.ftl.naive.NaiveEvaluator` — the literal per-state
  semantics of section 3.3, used as the correctness oracle and for
  persistent queries over recorded histories.

Before either evaluator runs, the static analyzer
(:mod:`repro.ftl.analysis`) checks scope, sorts, safety, the temporal
fragment and lints, producing span-carrying diagnostics;
:class:`~repro.ftl.query.QueryCompiler` bundles parse + analyze +
plan, and ``python -m repro.ftl.lint`` exposes the analyzer on the
command line.  Evaluation goes through a cost-annotated plan
(:mod:`repro.ftl.analysis.plan`) whose orderer runs cheap, selective
conjuncts first; ``python -m repro.ftl.explain`` prints the plan tree.
"""

from repro.ftl.ast import (
    Always,
    AlwaysFor,
    AndF,
    Arith,
    Assign,
    Attr,
    Compare,
    Const,
    Dist,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    SubAttr,
    Term,
    TimeTerm,
    Until,
    UntilWithin,
    Var,
    WithinSphere,
)
from repro.ftl.analysis import (
    AnalysisResult,
    CostEstimate,
    CostModel,
    Diagnostic,
    EvalPlan,
    FragmentInfo,
    PlanNode,
    analyze_formula,
    analyze_query,
    drift_report,
    incremental_blockers,
    plan_formula,
    plan_query,
)
from repro.ftl.context import EvalContext
from repro.ftl.evaluator import IntervalEvaluator
from repro.ftl.incremental import (
    PartialIntervalEvaluator,
    QueryCache,
    evaluate_with_cache,
    supports_incremental,
)
from repro.ftl.naive import NaiveEvaluator
from repro.ftl.lexer import Span
from repro.ftl.parser import parse_formula, parse_query
from repro.ftl.query import (
    CompiledQuery,
    FtlQuery,
    QueryCompiler,
    compile_query,
)
from repro.ftl.relations import AnswerTuple, FtlRelation
from repro.ftl.rewrite import (
    expand,
    quarantined_rules,
    uses_only_basic_operators,
)

__all__ = [
    "parse_query",
    "parse_formula",
    "expand",
    "quarantined_rules",
    "uses_only_basic_operators",
    "FtlQuery",
    "QueryCompiler",
    "CompiledQuery",
    "compile_query",
    "analyze_query",
    "analyze_formula",
    "AnalysisResult",
    "Diagnostic",
    "FragmentInfo",
    "incremental_blockers",
    # Plans & cost
    "EvalPlan",
    "PlanNode",
    "CostEstimate",
    "CostModel",
    "plan_formula",
    "plan_query",
    "drift_report",
    "Span",
    "FtlRelation",
    "AnswerTuple",
    "EvalContext",
    "IntervalEvaluator",
    "NaiveEvaluator",
    "PartialIntervalEvaluator",
    "QueryCache",
    "evaluate_with_cache",
    "supports_incremental",
    # AST
    "Formula",
    "Term",
    "Var",
    "Const",
    "TimeTerm",
    "Attr",
    "SubAttr",
    "Arith",
    "Dist",
    "Compare",
    "Inside",
    "Outside",
    "WithinSphere",
    "AndF",
    "OrF",
    "NotF",
    "Until",
    "UntilWithin",
    "Nexttime",
    "Eventually",
    "EventuallyWithin",
    "EventuallyAfter",
    "Always",
    "AlwaysFor",
    "Assign",
]
