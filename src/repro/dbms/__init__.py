"""The relational DBMS substrate.

Section 5.1 of the paper builds MOST "on top of an existing DBMS ... For
simplicity our exposition will assume the relational model and SQL for the
underlying DBMS."  This package *is* that underlying DBMS: a from-scratch,
in-memory relational engine with

* typed schemas and tables with optional primary keys,
* a mini-SQL dialect (CREATE TABLE / INSERT / SELECT / UPDATE / DELETE,
  multi-table FROM with WHERE joins),
* a planner + iterator executor (sequential scan, index scan, filter,
  project, nested-loop and hash joins),
* hash and B+-tree secondary indexes,
* an update log with subscriptions — the hook continuous queries use to
  learn that ``Answer(CQ)`` must be revalidated (section 2.3) and the
  record persistent queries replay (section 2.3's query ``R``).

The MOST bridge (:mod:`repro.bridge`) drives this engine exactly the way
the paper prescribes: dynamic attributes are stored as the three
sub-attribute columns and queries are decomposed into static sub-queries.
"""

from repro.dbms.types import BOOL, FLOAT, INT, STRING, DataType
from repro.dbms.schema import Column, Schema
from repro.dbms.table import Table
from repro.dbms.relation import Relation
from repro.dbms.expressions import (
    And,
    BinOp,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Not,
    Or,
)
from repro.dbms.database import Database
from repro.dbms.updatelog import UpdateLog, UpdateRecord

__all__ = [
    "DataType",
    "INT",
    "FLOAT",
    "STRING",
    "BOOL",
    "Column",
    "Schema",
    "Table",
    "Relation",
    "Expr",
    "Literal",
    "ColumnRef",
    "BinOp",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Database",
    "UpdateLog",
    "UpdateRecord",
]
