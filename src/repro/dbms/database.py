"""The DBMS facade: catalog + SQL entry point + update log.

This is "the underlying DBMS" of section 5.1.  It knows nothing about
dynamic attributes or temporal operators — the MOST layer
(:mod:`repro.bridge`, :mod:`repro.core`) adds those on top, exactly as the
paper prescribes.
"""

from __future__ import annotations

from repro.dbms.executor import ExecutionStats, project
from repro.dbms.planner import Planner
from repro.dbms.relation import Relation
from repro.dbms.schema import Schema
from repro.dbms.sql.ast import (
    CreateTable,
    Delete,
    Insert,
    Select,
    Statement,
    Update,
)
from repro.dbms.sql.parser import parse_statement
from repro.dbms.table import Table
from repro.dbms.updatelog import UpdateLog, UpdateRecord
from repro.errors import SqlError
from repro.temporal import SimulationClock


class Database:
    """An in-memory relational database with a mini-SQL interface.

    Args:
        clock: the global time object (section 2) used to timestamp the
            update log; a private clock is created when omitted.
    """

    def __init__(self, clock: SimulationClock | None = None) -> None:
        self.clock = clock if clock is not None else SimulationClock()
        self.log = UpdateLog()
        self.stats = ExecutionStats()
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        """Register a new table."""
        if name in self._tables:
            raise SqlError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SqlError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether the table exists."""
        return name in self._tables

    def tables(self) -> list[str]:
        """All table names."""
        return sorted(self._tables)

    def create_index(self, table: str, column: str, kind: str = "btree") -> None:
        """Create a secondary index."""
        self.table(table).create_index(column, kind)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, sql: str | Statement) -> Relation | int:
        """Run one statement.

        Returns a :class:`Relation` for SELECT and the affected row count
        for everything else.
        """
        stmt = parse_statement(sql) if isinstance(sql, str) else sql
        self.stats.statements += 1
        if isinstance(stmt, CreateTable):
            self.create_table(
                stmt.name, Schema(list(stmt.columns), key=stmt.key)
            )
            return 0
        if isinstance(stmt, Insert):
            return self._execute_insert(stmt)
        if isinstance(stmt, Select):
            return self._execute_select(stmt)
        if isinstance(stmt, Update):
            return self._execute_update(stmt)
        if isinstance(stmt, Delete):
            return self._execute_delete(stmt)
        raise SqlError(f"unsupported statement {type(stmt).__name__}")

    def query(self, sql: str | Select) -> Relation:
        """Run a statement that must be a SELECT."""
        result = self.execute(sql)
        if not isinstance(result, Relation):
            raise SqlError("query() requires a SELECT statement")
        return result

    # ------------------------------------------------------------------
    def _execute_select(self, stmt: Select) -> Relation:
        planner = Planner(self._tables, self.stats)
        plan, targets = planner.plan(stmt)
        return project(plan, targets, self.stats)

    def _execute_insert(self, stmt: Insert) -> int:
        table = self.table(stmt.table)
        count = 0
        for values in stmt.rows:
            if stmt.columns is not None:
                if len(stmt.columns) != len(values):
                    raise SqlError(
                        f"INSERT arity mismatch: {len(stmt.columns)} columns,"
                        f" {len(values)} values"
                    )
                row = table.schema.row_from_mapping(
                    dict(zip(stmt.columns, values))
                )
            else:
                row = table.schema.validate_row(values)
            table.insert(row)
            self._log("insert", table, old=None, new=row)
            count += 1
        return count

    def _execute_update(self, stmt: Update) -> int:
        table = self.table(stmt.table)
        changes_exprs = dict(stmt.assignments)
        affected: list[int] = []
        for rowid, row in list(table.scan()):
            env = {
                f"{table.name}.{n}": v
                for n, v in zip(table.schema.names, row)
            }
            if stmt.where is None or stmt.where.eval(env) is True:
                affected.append(rowid)
        for rowid in affected:
            row = table.get(rowid)
            env = {
                f"{table.name}.{n}": v
                for n, v in zip(table.schema.names, row)
            }
            changes = {
                col: expr.eval(env) for col, expr in changes_exprs.items()
            }
            old, new = table.update_row(rowid, changes)
            self._log("update", table, old=old, new=new)
        return len(affected)

    def _execute_delete(self, stmt: Delete) -> int:
        table = self.table(stmt.table)
        doomed: list[int] = []
        for rowid, row in list(table.scan()):
            env = {
                f"{table.name}.{n}": v
                for n, v in zip(table.schema.names, row)
            }
            if stmt.where is None or stmt.where.eval(env) is True:
                doomed.append(rowid)
        for rowid in doomed:
            old = table.delete_row(rowid)
            self._log("delete", table, old=old, new=None)
        return len(doomed)

    def _log(
        self,
        op: str,
        table: Table,
        old: tuple[object, ...] | None,
        new: tuple[object, ...] | None,
    ) -> None:
        row = new if new is not None else old
        key: object = None
        if table.schema.key is not None and row is not None:
            key = row[table.schema.key_index()]
        self.log.append(
            UpdateRecord(
                time=self.clock.now,
                table=table.name,
                op=op,
                key=key,
                old=old,
                new=new,
            )
        )
