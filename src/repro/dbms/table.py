"""Tables: typed row storage with key enforcement and secondary indexes."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.dbms.indexes.btree import BPlusTree
from repro.dbms.indexes.hashindex import HashIndex
from repro.dbms.schema import Schema
from repro.errors import SchemaError

Row = tuple[object, ...]


class Table:
    """An in-memory heap of rows plus any number of secondary indexes.

    Rows are addressed by a surrogate row id so indexes stay valid across
    updates of non-indexed columns.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._rows: dict[int, Row] = {}
        self._next_rowid = 0
        self._key_map: dict[object, int] = {}
        self._indexes: dict[str, tuple[str, object]] = {}

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterator[tuple[int, Row]]:
        """All ``(rowid, row)`` pairs in insertion order."""
        return iter(sorted(self._rows.items()))

    def rows(self) -> list[Row]:
        """All rows in insertion order."""
        return [row for _, row in self.scan()]

    def get(self, rowid: int) -> Row:
        """Row by id (raises on stale ids)."""
        try:
            return self._rows[rowid]
        except KeyError:
            raise SchemaError(f"no row with id {rowid} in {self.name}") from None

    def get_by_key(self, key: object) -> Row | None:
        """Row by primary-key value, or ``None``."""
        rowid = self._key_map.get(key)
        return self._rows[rowid] if rowid is not None else None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[object]) -> int:
        """Insert a row, returning its row id."""
        row = self.schema.validate_row(values)
        if self.schema.key is not None:
            key = row[self.schema.key_index()]
            if key is None:
                raise SchemaError(f"NULL key inserted into {self.name}")
            if key in self._key_map:
                raise SchemaError(
                    f"duplicate key {key!r} in table {self.name}"
                )
            self._key_map[key] = self._next_rowid
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        for column, index in self._index_objects():
            index.insert(row[self.schema.index_of(column)], rowid)
        return rowid

    def insert_mapping(self, mapping: dict[str, object]) -> int:
        """Insert from a name→value mapping."""
        return self.insert(self.schema.row_from_mapping(mapping))

    def delete_row(self, rowid: int) -> Row:
        """Delete by row id, returning the removed row."""
        row = self.get(rowid)
        del self._rows[rowid]
        if self.schema.key is not None:
            del self._key_map[row[self.schema.key_index()]]
        for column, index in self._index_objects():
            index.delete(row[self.schema.index_of(column)], rowid)
        return row

    def update_row(self, rowid: int, changes: dict[str, object]) -> tuple[Row, Row]:
        """Apply column changes to one row; returns ``(old, new)``."""
        old = self.get(rowid)
        values = list(old)
        for name, value in changes.items():
            idx = self.schema.index_of(name)
            values[idx] = self.schema.column(name).type.validate(value)
        new = tuple(values)
        if self.schema.key is not None:
            key_idx = self.schema.key_index()
            if new[key_idx] != old[key_idx]:
                if new[key_idx] in self._key_map:
                    raise SchemaError(
                        f"duplicate key {new[key_idx]!r} in {self.name}"
                    )
                del self._key_map[old[key_idx]]
                self._key_map[new[key_idx]] = rowid
        self._rows[rowid] = new
        for column, index in self._index_objects():
            idx = self.schema.index_of(column)
            if old[idx] != new[idx]:
                index.delete(old[idx], rowid)
                index.insert(new[idx], rowid)
        return old, new

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def create_index(self, column: str, kind: str = "btree") -> None:
        """Create a secondary index on ``column`` (``btree`` or ``hash``)."""
        self.schema.index_of(column)  # validates the column exists
        if column in self._indexes:
            raise SchemaError(f"index on {column!r} already exists")
        if kind == "btree":
            index: object = BPlusTree()
        elif kind == "hash":
            index = HashIndex()
        else:
            raise SchemaError(f"unknown index kind {kind!r}")
        idx = self.schema.index_of(column)
        for rowid, row in self._rows.items():
            index.insert(row[idx], rowid)
        self._indexes[column] = (kind, index)

    def index_on(self, column: str) -> tuple[str, object] | None:
        """``(kind, index)`` for the column, or ``None``."""
        return self._indexes.get(column)

    def has_index(self, column: str) -> bool:
        """Whether a secondary index exists on the column."""
        return column in self._indexes

    def _index_objects(self) -> Iterator[tuple[str, object]]:
        for column, (_kind, index) in self._indexes.items():
            yield column, index

    def index_lookup(self, column: str, value: object) -> list[int]:
        """Row ids with ``column == value`` via the index."""
        entry = self._indexes.get(column)
        if entry is None:
            raise SchemaError(f"no index on {column!r}")
        return list(entry[1].search(value))

    def index_range(
        self, column: str, lo: object | None, hi: object | None
    ) -> list[int]:
        """Row ids with ``lo <= column <= hi`` via a B+-tree index."""
        entry = self._indexes.get(column)
        if entry is None or entry[0] != "btree":
            raise SchemaError(f"no range index on {column!r}")
        return [rowid for _key, rowid in entry[1].range(lo, hi)]

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows)"
