"""A hash index: exact-match lookups in expected O(1)."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class HashIndex:
    """Maps hashable keys to multisets of values (row ids)."""

    def __init__(self) -> None:
        self._buckets: dict[object, list[object]] = defaultdict(list)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, key: object, value: object) -> None:
        """Add one pair (duplicates allowed)."""
        self._buckets[key].append(value)
        self._size += 1

    def delete(self, key: object, value: object) -> bool:
        """Remove one pair; returns whether it existed."""
        bucket = self._buckets.get(key)
        if not bucket:
            return False
        try:
            bucket.remove(value)
        except ValueError:
            return False
        if not bucket:
            del self._buckets[key]
        self._size -= 1
        return True

    def search(self, key: object) -> list[object]:
        """All values under ``key`` (empty when absent)."""
        return list(self._buckets.get(key, ()))

    def keys(self) -> Iterator[object]:
        """Distinct keys, in arbitrary order."""
        return iter(self._buckets)
