"""A B+-tree supporting duplicate keys, point and range lookups.

Values live only in the leaves; leaves are chained left-to-right so range
scans stream in key order.  Duplicates are handled by storing a list of
values per key entry.  Deletion uses lazy underflow handling (borrow or
merge), keeping the classic invariants:

* every node except the root has at least ``ceil(order / 2) - 1`` keys;
* all leaves sit at the same depth.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import IndexError_


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: list[object] = []
        self.children: list[_Node] = []  # internal nodes only
        self.values: list[list[object]] = []  # leaves only
        self.next_leaf: _Node | None = None  # leaves only


class BPlusTree:
    """An in-memory B+-tree index from orderable keys to value lists."""

    def __init__(self, order: int = 32) -> None:
        if order < 4:
            raise IndexError_("B+-tree order must be at least 4")
        self._order = order
        self._root = _Node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone leaf root)."""
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _find_leaf(self, key: object) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = _upper_bound(node.keys, key)
            node = node.children[idx]
        return node

    def search(self, key: object) -> list[object]:
        """All values stored under ``key`` (empty list when absent)."""
        leaf = self._find_leaf(key)
        idx = _lower_bound(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range(
        self, lo: object | None, hi: object | None
    ) -> Iterator[tuple[object, object]]:
        """Yield ``(key, value)`` pairs with ``lo <= key <= hi`` in key
        order; ``None`` bounds are open."""
        if lo is not None and hi is not None and hi < lo:
            return
        leaf = self._find_leaf(lo) if lo is not None else self._leftmost()
        while leaf is not None:
            for key, vals in zip(leaf.keys, leaf.values):
                if lo is not None and key < lo:
                    continue
                if hi is not None and key > hi:
                    return
                for v in vals:
                    yield key, v
            leaf = leaf.next_leaf

    def items(self) -> Iterator[tuple[object, object]]:
        """All pairs in key order."""
        return self.range(None, None)

    def keys(self) -> list[object]:
        """All distinct keys in order."""
        out = []
        leaf = self._leftmost()
        while leaf is not None:
            out.extend(leaf.keys)
            leaf = leaf.next_leaf
        return out

    def _leftmost(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: object, value: object) -> None:
        """Insert one ``(key, value)`` pair (duplicates allowed)."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(
        self, node: _Node, key: object, value: object
    ) -> tuple[object, _Node] | None:
        if node.is_leaf:
            idx = _lower_bound(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx].append(value)
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, [value])
            if len(node.keys) < self._order:
                return None
            return self._split_leaf(node)
        idx = _upper_bound(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) < self._order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> tuple[object, _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> tuple[object, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: object, value: object) -> bool:
        """Remove one ``(key, value)`` pair; returns whether it existed."""
        removed = self._delete(self._root, key, value)
        if removed:
            self._size -= 1
            if not self._root.is_leaf and len(self._root.children) == 1:
                self._root = self._root.children[0]
        return removed

    def _min_keys(self) -> int:
        return (self._order + 1) // 2 - 1

    def _delete(self, node: _Node, key: object, value: object) -> bool:
        if node.is_leaf:
            idx = _lower_bound(node.keys, key)
            if idx >= len(node.keys) or node.keys[idx] != key:
                return False
            try:
                node.values[idx].remove(value)
            except ValueError:
                return False
            if not node.values[idx]:
                node.keys.pop(idx)
                node.values.pop(idx)
            return True
        idx = _upper_bound(node.keys, key)
        child = node.children[idx]
        removed = self._delete(child, key, value)
        if removed and _entry_count(child) < self._min_keys():
            self._rebalance(node, idx)
        return removed

    def _rebalance(self, parent: _Node, idx: int) -> None:
        child = parent.children[idx]
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None

        if left is not None and _entry_count(left) > self._min_keys():
            self._borrow_from_left(parent, idx, left, child)
            return
        if right is not None and _entry_count(right) > self._min_keys():
            self._borrow_from_right(parent, idx, child, right)
            return
        if left is not None:
            self._merge(parent, idx - 1, left, child)
        elif right is not None:
            self._merge(parent, idx, child, right)

    def _borrow_from_left(
        self, parent: _Node, idx: int, left: _Node, child: _Node
    ) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(
        self, parent: _Node, idx: int, child: _Node, right: _Node
    ) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(
        self, parent: _Node, sep_idx: int, left: _Node, right: _Node
    ) -> None:
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[sep_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(sep_idx)
        parent.children.pop(sep_idx + 1)

    # ------------------------------------------------------------------
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert structural invariants; raises :class:`IndexError_`."""
        depths = set()
        self._check(self._root, None, None, 0, depths, is_root=True)
        if len(depths) > 1:
            raise IndexError_(f"leaves at different depths: {depths}")

    def _check(
        self,
        node: _Node,
        lo: object | None,
        hi: object | None,
        depth: int,
        depths: set[int],
        is_root: bool = False,
    ) -> None:
        keys = node.keys
        if sorted(keys, key=_order_key) != keys:
            raise IndexError_(f"unsorted keys {keys}")
        for k in keys:
            if lo is not None and k < lo:
                raise IndexError_(f"key {k} below bound {lo}")
            if hi is not None and k >= hi:
                raise IndexError_(f"key {k} above bound {hi}")
        if not is_root and _entry_count(node) < self._min_keys():
            raise IndexError_("underfull node")
        if node.is_leaf:
            depths.add(depth)
            if len(node.values) != len(node.keys):
                raise IndexError_("leaf key/value length mismatch")
            return
        if len(node.children) != len(node.keys) + 1:
            raise IndexError_("internal fanout mismatch")
        bounds = [lo] + list(keys) + [hi]
        for i, child in enumerate(node.children):
            self._check(child, bounds[i], bounds[i + 1], depth + 1, depths)


def _entry_count(node: _Node) -> int:
    return len(node.keys)


def _order_key(k: object):
    return k


def _lower_bound(keys: Sequence[object], key: object) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _upper_bound(keys: Sequence[object], key: object) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo
