"""Secondary index structures of the DBMS substrate.

Two access methods: a hash index (exact match) and a B+-tree (exact match
and range scans).  Section 4 of the paper requires "logarithmic (in the
number of objects) access time" — the B+-tree provides it for 1-D keys,
and the spatial structures in :mod:`repro.index` provide it for the
(time, value) plane of dynamic attributes.
"""

from repro.dbms.indexes.btree import BPlusTree
from repro.dbms.indexes.hashindex import HashIndex

__all__ = ["BPlusTree", "HashIndex"]
