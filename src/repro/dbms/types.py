"""Value types of the relational substrate.

Four scalar types cover everything the paper's examples need (ids, prices,
coordinates, names, and the sub-attributes of dynamic attributes, whose
``A.function`` column stores a slope as a FLOAT).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError


@dataclass(frozen=True)
class DataType:
    """A scalar column type with validation and coercion rules."""

    name: str

    def validate(self, value: object) -> object:
        """Coerce ``value`` to this type, or raise :class:`SchemaError`.

        ``None`` is always legal (SQL NULL).
        """
        if value is None:
            return None
        try:
            return _COERCERS[self.name](value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"value {value!r} is not a valid {self.name}"
            ) from exc

    def __str__(self) -> str:
        return self.name


def _coerce_int(value: object) -> int:
    if isinstance(value, bool):
        raise ValueError("bool is not an INT")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise ValueError(f"not an integer: {value!r}")


def _coerce_float(value: object) -> float:
    if isinstance(value, bool):
        raise ValueError("bool is not a FLOAT")
    if isinstance(value, (int, float)):
        return float(value)
    raise ValueError(f"not a number: {value!r}")


def _coerce_string(value: object) -> str:
    if isinstance(value, str):
        return value
    raise ValueError(f"not a string: {value!r}")


def _coerce_bool(value: object) -> bool:
    if isinstance(value, bool):
        return value
    raise ValueError(f"not a boolean: {value!r}")


_COERCERS = {
    "INT": _coerce_int,
    "FLOAT": _coerce_float,
    "STRING": _coerce_string,
    "BOOL": _coerce_bool,
}

INT = DataType("INT")
FLOAT = DataType("FLOAT")
STRING = DataType("STRING")
BOOL = DataType("BOOL")

#: Lookup used by the SQL parser's CREATE TABLE clause.
TYPES_BY_NAME = {t.name: t for t in (INT, FLOAT, STRING, BOOL)}
