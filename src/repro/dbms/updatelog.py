"""The update log: every explicit database update, in commit order.

Two consumers, both from the paper:

* **Continuous queries** (section 2.3): "a continuous query CQ has to be
  reevaluated when an update occurs that may change the set of tuples
  Answer(CQ)" — subscribers get a callback per update and decide whether
  their materialised answer is affected.
* **Persistent queries** (section 2.3): "the evaluation of persistent
  queries requires saving of information about the way the database is
  updated over time" — the log *is* that saved information; the persistent
  evaluator replays it to rebuild the history anchored at entry time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator


@dataclass(frozen=True)
class UpdateRecord:
    """One committed update.

    Attributes:
        time: transaction time (== valid time; the paper assumes
            instantaneous updates, section 2.1).
        table: table name.
        op: ``"insert"``, ``"delete"`` or ``"update"``.
        key: primary-key value of the affected row (or rowid when keyless).
        old: the prior row (``None`` for inserts).
        new: the new row (``None`` for deletes).
    """

    time: int
    table: str
    op: str
    key: object
    old: tuple[object, ...] | None
    new: tuple[object, ...] | None


Subscriber = Callable[[UpdateRecord], None]


class UpdateLog:
    """Append-only commit log with subscriber fan-out."""

    def __init__(self) -> None:
        self._records: list[UpdateRecord] = []
        self._subscribers: list[Subscriber] = []

    def append(self, record: UpdateRecord) -> None:
        """Commit a record and notify subscribers in order."""
        self._records.append(record)
        for sub in list(self._subscribers):
            sub(record)

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        """Register a callback; returns an unsubscribe function."""
        self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

        return unsubscribe

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[UpdateRecord]:
        return iter(self._records)

    def since(self, time: int) -> list[UpdateRecord]:
        """Records with commit time strictly greater than ``time``."""
        return [r for r in self._records if r.time > time]

    def for_table(self, table: str) -> list[UpdateRecord]:
        """Records touching one table, in commit order."""
        return [r for r in self._records if r.table == table]
