"""Schemas: ordered, typed column lists with an optional primary key."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.dbms.types import DataType
from repro.errors import SchemaError


@dataclass(frozen=True)
class Column:
    """One column: a name and a :class:`~repro.dbms.types.DataType`."""

    name: str
    type: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").replace(
            ".", "a"
        ).isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")

    def __str__(self) -> str:
        return f"{self.name} {self.type}"


class Schema:
    """An ordered set of columns, optionally with a primary-key column.

    Column names may contain dots — the convention the MOST bridge uses to
    store dynamic sub-attributes (``pos_x.value``, ``pos_x.updatetime``,
    ``pos_x.function``) as plain DBMS columns, per section 5.1.
    """

    __slots__ = ("_columns", "_index", "_key")

    def __init__(
        self, columns: Sequence[Column], key: str | None = None
    ) -> None:
        if not columns:
            raise SchemaError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self._columns = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(self._columns)}
        if key is not None and key not in self._index:
            raise SchemaError(f"key column {key!r} not in schema")
        self._key = key

    @classmethod
    def of(cls, *specs: tuple[str, DataType], key: str | None = None) -> "Schema":
        """Build from ``(name, type)`` pairs."""
        return cls([Column(n, t) for n, t in specs], key=key)

    # ------------------------------------------------------------------
    @property
    def columns(self) -> tuple[Column, ...]:
        """Ordered columns."""
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        """Ordered column names."""
        return tuple(c.name for c in self._columns)

    @property
    def key(self) -> str | None:
        """Primary-key column name, if any."""
        return self._key

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._columns)

    def index_of(self, name: str) -> int:
        """Position of a column, raising on unknown names."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; have {list(self.names)}"
            ) from None

    def column(self, name: str) -> Column:
        """Column metadata by name."""
        return self._columns[self.index_of(name)]

    def key_index(self) -> int:
        """Position of the primary key column."""
        if self._key is None:
            raise SchemaError("schema has no primary key")
        return self._index[self._key]

    # ------------------------------------------------------------------
    def validate_row(self, values: Sequence[object]) -> tuple[object, ...]:
        """Type-check and coerce a full row."""
        if len(values) != self.arity:
            raise SchemaError(
                f"row arity {len(values)} != schema arity {self.arity}"
            )
        return tuple(
            c.type.validate(v) for c, v in zip(self._columns, values)
        )

    def row_from_mapping(self, mapping: dict[str, object]) -> tuple[object, ...]:
        """Build a row from a name→value mapping (missing columns → NULL)."""
        unknown = set(mapping) - set(self._index)
        if unknown:
            raise SchemaError(f"unknown columns {sorted(unknown)}")
        return self.validate_row(
            [mapping.get(c.name) for c in self._columns]
        )

    def project(self, names: Iterable[str]) -> "Schema":
        """Sub-schema of the named columns, in the given order."""
        return Schema([self.column(n) for n in names])

    def concat(self, other: "Schema", prefix_self: str = "", prefix_other: str = "") -> "Schema":
        """Schema of a join result; optional prefixes disambiguate."""
        cols = [
            Column(prefix_self + c.name, c.type) for c in self._columns
        ] + [Column(prefix_other + c.name, c.type) for c in other._columns]
        return Schema(cols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns and self._key == other._key

    def __hash__(self) -> int:
        return hash((self._columns, self._key))

    def __repr__(self) -> str:
        cols = ", ".join(str(c) for c in self._columns)
        key = f", key={self._key!r}" if self._key else ""
        return f"Schema({cols}{key})"
