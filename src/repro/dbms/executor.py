"""Physical operators: the iterator (Volcano-style) executor.

Every operator yields *environments* — dicts mapping qualified column names
(``binding.column``) to values — so expression evaluation and join
composition stay uniform.  :class:`ExecutionStats` counts the work done,
which the benchmark harness (experiment E5, the 2^k decomposition cost)
reads directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.dbms.expressions import Expr
from repro.dbms.relation import Relation
from repro.dbms.schema import Column, Schema
from repro.dbms.table import Table
from repro.dbms.types import BOOL, FLOAT, INT, STRING
from repro.errors import SqlError

Env = dict[str, object]


@dataclass
class ExecutionStats:
    """Counters accumulated across statements (reset explicitly)."""

    rows_scanned: int = 0
    index_lookups: int = 0
    rows_output: int = 0
    statements: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.rows_scanned = 0
        self.index_lookups = 0
        self.rows_output = 0
        self.statements = 0


class PlanNode:
    """Base class of physical plan operators."""

    def rows(self) -> Iterator[Env]:
        """Yield result environments."""
        raise NotImplementedError

    def bindings(self) -> list[tuple[str, Table]]:
        """``(binding, table)`` pairs visible in this subtree."""
        raise NotImplementedError


def _env_for(table: Table, binding: str, row: tuple[object, ...]) -> Env:
    return {
        f"{binding}.{name}": value
        for name, value in zip(table.schema.names, row)
    }


@dataclass
class SeqScan(PlanNode):
    """Full scan of one table."""

    table: Table
    binding: str
    stats: ExecutionStats

    def rows(self) -> Iterator[Env]:
        for _rowid, row in self.table.scan():
            self.stats.rows_scanned += 1
            yield _env_for(self.table, self.binding, row)

    def bindings(self) -> list[tuple[str, Table]]:
        return [(self.binding, self.table)]


@dataclass
class IndexEqScan(PlanNode):
    """Exact-match index access on one column."""

    table: Table
    binding: str
    column: str
    value: object
    stats: ExecutionStats

    def rows(self) -> Iterator[Env]:
        self.stats.index_lookups += 1
        for rowid in self.table.index_lookup(self.column, self.value):
            self.stats.rows_scanned += 1
            yield _env_for(self.table, self.binding, self.table.get(rowid))

    def bindings(self) -> list[tuple[str, Table]]:
        return [(self.binding, self.table)]


@dataclass
class IndexRangeScan(PlanNode):
    """B+-tree range access on one column (closed bounds, None = open)."""

    table: Table
    binding: str
    column: str
    lo: object | None
    hi: object | None
    stats: ExecutionStats

    def rows(self) -> Iterator[Env]:
        self.stats.index_lookups += 1
        for rowid in self.table.index_range(self.column, self.lo, self.hi):
            self.stats.rows_scanned += 1
            yield _env_for(self.table, self.binding, self.table.get(rowid))

    def bindings(self) -> list[tuple[str, Table]]:
        return [(self.binding, self.table)]


@dataclass
class Filter(PlanNode):
    """Keep environments on which the predicate evaluates to TRUE
    (SQL semantics: NULL and FALSE both drop the row)."""

    child: PlanNode
    predicate: Expr

    def rows(self) -> Iterator[Env]:
        for env in self.child.rows():
            if self.predicate.eval(env) is True:
                yield env

    def bindings(self) -> list[tuple[str, Table]]:
        return self.child.bindings()


@dataclass
class NestedLoopJoin(PlanNode):
    """Cross product of two subtrees (predicates applied by Filter above)."""

    left: PlanNode
    right: PlanNode

    def rows(self) -> Iterator[Env]:
        right_rows = list(self.right.rows())
        for lenv in self.left.rows():
            for renv in right_rows:
                merged = dict(lenv)
                merged.update(renv)
                yield merged

    def bindings(self) -> list[tuple[str, Table]]:
        return self.left.bindings() + self.right.bindings()


@dataclass
class HashJoin(PlanNode):
    """Equi-join: build a hash table on the right key, probe with the left."""

    left: PlanNode
    right: PlanNode
    left_key: Expr
    right_key: Expr

    def rows(self) -> Iterator[Env]:
        buckets: dict[object, list[Env]] = {}
        for renv in self.right.rows():
            key = self.right_key.eval(renv)
            buckets.setdefault(key, []).append(renv)
        for lenv in self.left.rows():
            key = self.left_key.eval(lenv)
            if key is None:
                continue
            for renv in buckets.get(key, ()):
                merged = dict(lenv)
                merged.update(renv)
                yield merged

    def bindings(self) -> list[tuple[str, Table]]:
        return self.left.bindings() + self.right.bindings()


def _infer_type(values: list[object]):
    for v in values:
        if isinstance(v, bool):
            return BOOL
        if isinstance(v, int):
            return INT
        if isinstance(v, float):
            return FLOAT
        if isinstance(v, str):
            return STRING
    return FLOAT


def project(
    plan: PlanNode,
    targets: "list[tuple[Expr, str]] | None",
    stats: ExecutionStats,
) -> Relation:
    """Materialise a plan into a :class:`Relation`.

    ``targets`` maps output column names to expressions; ``None`` selects
    every column of every bound table (``SELECT *``), qualified when more
    than one table is in scope.
    """
    envs = list(plan.rows())
    stats.rows_output += len(envs)

    if targets is None:
        bindings = plan.bindings()
        multi = len(bindings) > 1
        columns: list[Column] = []
        keys: list[str] = []
        for binding, table in bindings:
            for col in table.schema.columns:
                name = f"{binding}.{col.name}" if multi else col.name
                columns.append(Column(name, col.type))
                keys.append(f"{binding}.{col.name}")
        schema = Schema(columns)
        rows = [tuple(env[k] for k in keys) for env in envs]
        return Relation(schema, rows)

    names = [name for _expr, name in targets]
    if len(set(names)) != len(names):
        raise SqlError(f"duplicate output column names: {names}")
    value_rows = [
        tuple(expr.eval(env) for expr, _name in targets) for env in envs
    ]
    columns = []
    for i, name in enumerate(names):
        columns.append(Column(name, _infer_type([r[i] for r in value_rows])))
    return Relation(Schema(columns), value_rows)
