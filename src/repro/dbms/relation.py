"""Query results: immutable relations (schema + rows).

Every SELECT returns a :class:`Relation`; the FTL evaluator's ``R_g``
relations (appendix) reuse the same shape with an interval-typed last
column handled at the FTL layer.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.dbms.schema import Schema
from repro.errors import SchemaError


class Relation:
    """An immutable bag of typed rows under a schema."""

    __slots__ = ("_schema", "_rows")

    def __init__(
        self, schema: Schema, rows: Iterable[Sequence[object]] = ()
    ) -> None:
        self._schema = schema
        self._rows = tuple(schema.validate_row(r) for r in rows)

    @property
    def schema(self) -> Schema:
        """The result schema."""
        return self._schema

    @property
    def rows(self) -> tuple[tuple[object, ...], ...]:
        """All rows, in result order."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[object, ...]]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def column(self, name: str) -> list[object]:
        """All values of one column."""
        idx = self._schema.index_of(name)
        return [r[idx] for r in self._rows]

    def scalar(self) -> object:
        """The single value of a 1×1 result (the paper's atomic queries
        "retrieve single values", section 3.2)."""
        if len(self._rows) != 1 or self._schema.arity != 1:
            raise SchemaError(
                f"expected a 1x1 result, got {len(self._rows)} rows x "
                f"{self._schema.arity} columns"
            )
        return self._rows[0][0]

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as name→value mappings (presentation convenience)."""
        names = self._schema.names
        return [dict(zip(names, r)) for r in self._rows]

    def to_set(self) -> set[tuple[object, ...]]:
        """Rows as a set (order-insensitive comparison in tests)."""
        return set(self._rows)

    def __repr__(self) -> str:
        return f"Relation({self._schema.names}, {len(self._rows)} rows)"
