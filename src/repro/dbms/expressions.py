"""Expression trees for WHERE clauses and projections.

Besides evaluation, expressions support the structural surgery the MOST
bridge needs for section 5.1's decomposition: enumerate the *atoms*
(comparisons) of a boolean combination, test which reference dynamic
attributes, and substitute an atom by TRUE/FALSE
(``F = (F' ∧ p) ∨ (F'' ∧ ¬p)`` with ``F'``/``F''`` the two substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import SqlError


class Expr:
    """Base class for expression nodes."""

    def eval(self, env: dict[str, object]) -> object:
        """Evaluate against a column-name → value environment."""
        raise NotImplementedError

    def references(self) -> set[str]:
        """All column names mentioned in the subtree."""
        return set()

    def atoms(self) -> Iterator["Expr"]:
        """The boolean atoms (non-AND/OR/NOT subtrees) of this tree."""
        yield self

    def substitute(self, target: "Expr", replacement: "Expr") -> "Expr":
        """Structurally replace every occurrence of ``target``."""
        if self == target:
            return replacement
        return self

    # Python operator sugar for building trees in code.
    def __and__(self, other: "Expr") -> "And":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value."""

    value: object

    def eval(self, env: dict[str, object]) -> object:
        return self.value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


TRUE = Literal(True)
FALSE = Literal(False)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to a column (possibly ``table.column`` qualified)."""

    name: str

    def eval(self, env: dict[str, object]) -> object:
        if self.name in env:
            return env[self.name]
        # Allow unqualified references to qualified environments.
        matches = [k for k in env if k.endswith("." + self.name)]
        if len(matches) == 1:
            return env[matches[0]]
        if len(matches) > 1:
            raise SqlError(f"ambiguous column reference {self.name!r}")
        raise SqlError(f"unknown column {self.name!r}")

    def references(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


_ARITH: dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}

_COMPARE: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic: ``left op right`` with op in ``+ - * / %``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITH:
            raise SqlError(f"unknown arithmetic operator {self.op!r}")

    def eval(self, env: dict[str, object]) -> object:
        lhs = self.left.eval(env)
        rhs = self.right.eval(env)
        if lhs is None or rhs is None:
            return None
        try:
            return _ARITH[self.op](lhs, rhs)
        except ZeroDivisionError:
            raise SqlError("division by zero") from None

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def substitute(self, target: Expr, replacement: Expr) -> Expr:
        if self == target:
            return replacement
        return BinOp(
            self.op,
            self.left.substitute(target, replacement),
            self.right.substitute(target, replacement),
        )

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Comparison(Expr):
    """A boolean atom: ``left op right`` with op in ``= != < <= > >=``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARE:
            raise SqlError(f"unknown comparison operator {self.op!r}")

    def eval(self, env: dict[str, object]) -> object:
        lhs = self.left.eval(env)
        rhs = self.right.eval(env)
        if lhs is None or rhs is None:
            return None  # SQL three-valued logic: NULL comparisons are NULL.
        try:
            return _COMPARE[self.op](lhs, rhs)
        except TypeError as exc:
            raise SqlError(
                f"cannot compare {lhs!r} and {rhs!r} with {self.op}"
            ) from exc

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def substitute(self, target: Expr, replacement: Expr) -> Expr:
        if self == target:
            return replacement
        return Comparison(
            self.op,
            self.left.substitute(target, replacement),
            self.right.substitute(target, replacement),
        )

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Expr):
    """Boolean conjunction (NULL-aware)."""

    left: Expr
    right: Expr

    def eval(self, env: dict[str, object]) -> object:
        lhs = self.left.eval(env)
        if lhs is False:
            return False
        rhs = self.right.eval(env)
        if rhs is False:
            return False
        if lhs is None or rhs is None:
            return None
        return True

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def atoms(self) -> Iterator[Expr]:
        yield from self.left.atoms()
        yield from self.right.atoms()

    def substitute(self, target: Expr, replacement: Expr) -> Expr:
        if self == target:
            return replacement
        return And(
            self.left.substitute(target, replacement),
            self.right.substitute(target, replacement),
        )

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Expr):
    """Boolean disjunction (NULL-aware)."""

    left: Expr
    right: Expr

    def eval(self, env: dict[str, object]) -> object:
        lhs = self.left.eval(env)
        if lhs is True:
            return True
        rhs = self.right.eval(env)
        if rhs is True:
            return True
        if lhs is None or rhs is None:
            return None
        return False

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def atoms(self) -> Iterator[Expr]:
        yield from self.left.atoms()
        yield from self.right.atoms()

    def substitute(self, target: Expr, replacement: Expr) -> Expr:
        if self == target:
            return replacement
        return Or(
            self.left.substitute(target, replacement),
            self.right.substitute(target, replacement),
        )

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Expr):
    """Boolean negation (NULL-aware)."""

    operand: Expr

    def eval(self, env: dict[str, object]) -> object:
        val = self.operand.eval(env)
        if val is None:
            return None
        return not val

    def references(self) -> set[str]:
        return self.operand.references()

    def atoms(self) -> Iterator[Expr]:
        yield from self.operand.atoms()

    def substitute(self, target: Expr, replacement: Expr) -> Expr:
        if self == target:
            return replacement
        return Not(self.operand.substitute(target, replacement))

    def __str__(self) -> str:
        return f"(NOT {self.operand})"
