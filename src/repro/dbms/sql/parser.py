"""Recursive-descent parser for the mini-SQL dialect.

Operator precedence, loosest to tightest:
``OR`` < ``AND`` < ``NOT`` < comparison < additive < multiplicative <
unary minus < primary.
"""

from __future__ import annotations

from repro.dbms.expressions import (
    And,
    BinOp,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Not,
    Or,
)
from repro.dbms.schema import Column
from repro.dbms.sql.ast import (
    CreateTable,
    Delete,
    Insert,
    Select,
    SelectTarget,
    Statement,
    TableRef,
    Update,
)
from repro.dbms.sql.lexer import Token, tokenize
from repro.dbms.types import TYPES_BY_NAME
from repro.errors import SqlError


def parse_statement(text: str) -> Statement:
    """Parse one SQL statement."""
    parser = _Parser(tokenize(text))
    stmt = parser.statement()
    parser.expect_eof()
    return stmt


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (used in tests and by the bridge)."""
    parser = _Parser(tokenize(text))
    expr = parser.expression()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _match_keyword(self, *words: str) -> bool:
        tok = self._peek()
        if tok.kind == "KEYWORD" and tok.value in words:
            self._advance()
            return True
        return False

    def _match_symbol(self, *symbols: str) -> str | None:
        tok = self._peek()
        if tok.kind == "SYMBOL" and tok.value in symbols:
            self._advance()
            return tok.value
        return None

    def _expect_keyword(self, word: str) -> None:
        tok = self._advance()
        if tok.kind != "KEYWORD" or tok.value != word:
            raise SqlError(f"expected {word}, got {tok.value!r} at {tok.pos}")

    def _expect_symbol(self, symbol: str) -> None:
        tok = self._advance()
        if tok.kind != "SYMBOL" or tok.value != symbol:
            raise SqlError(
                f"expected {symbol!r}, got {tok.value!r} at {tok.pos}"
            )

    def _expect_ident(self) -> str:
        tok = self._advance()
        if tok.kind != "IDENT":
            raise SqlError(f"expected identifier, got {tok.value!r} at {tok.pos}")
        return tok.value

    def expect_eof(self) -> None:
        tok = self._peek()
        if tok.kind != "EOF":
            raise SqlError(f"unexpected trailing input {tok.value!r} at {tok.pos}")

    def _dotted_name(self) -> str:
        """IDENT (DOT IDENT)* joined with dots — covers both ``t.col``
        qualification and dynamic sub-attribute names like
        ``pos_x.value``."""
        parts = [self._expect_ident()]
        while self._match_symbol("."):
            parts.append(self._expect_ident())
        return ".".join(parts)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def statement(self) -> Statement:
        tok = self._peek()
        if tok.kind != "KEYWORD":
            raise SqlError(f"expected a statement, got {tok.value!r}")
        if tok.value == "CREATE":
            return self._create_table()
        if tok.value == "INSERT":
            return self._insert()
        if tok.value == "SELECT":
            return self._select()
        if tok.value == "UPDATE":
            return self._update()
        if tok.value == "DELETE":
            return self._delete()
        raise SqlError(f"unsupported statement {tok.value}")

    def _create_table(self) -> CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_ident()
        self._expect_symbol("(")
        columns: list[Column] = []
        key: str | None = None
        while True:
            col_name = self._dotted_name()
            type_tok = self._advance()
            if type_tok.kind != "IDENT" or type_tok.value.upper() not in TYPES_BY_NAME:
                raise SqlError(
                    f"unknown column type {type_tok.value!r} at {type_tok.pos}"
                )
            columns.append(Column(col_name, TYPES_BY_NAME[type_tok.value.upper()]))
            if self._match_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                if key is not None:
                    raise SqlError("multiple PRIMARY KEY columns")
                key = col_name
            if not self._match_symbol(","):
                break
        self._expect_symbol(")")
        return CreateTable(name, tuple(columns), key)

    def _insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns: tuple[str, ...] | None = None
        if self._match_symbol("("):
            cols = [self._dotted_name()]
            while self._match_symbol(","):
                cols.append(self._dotted_name())
            self._expect_symbol(")")
            columns = tuple(cols)
        self._expect_keyword("VALUES")
        rows: list[tuple[object, ...]] = []
        while True:
            self._expect_symbol("(")
            values = [self._literal_value()]
            while self._match_symbol(","):
                values.append(self._literal_value())
            self._expect_symbol(")")
            rows.append(tuple(values))
            if not self._match_symbol(","):
                break
        return Insert(table, columns, tuple(rows))

    def _literal_value(self) -> object:
        expr = self.expression()
        try:
            return expr.eval({})
        except SqlError:
            raise SqlError("INSERT values must be constants") from None

    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        targets: tuple[SelectTarget, ...] | None
        if self._match_symbol("*"):
            targets = None
        else:
            items = [self._select_target()]
            while self._match_symbol(","):
                items.append(self._select_target())
            targets = tuple(items)
        self._expect_keyword("FROM")
        tables = [self._table_ref()]
        while self._match_symbol(","):
            tables.append(self._table_ref())
        where = None
        if self._match_keyword("WHERE"):
            where = self.expression()
        return Select(targets, tuple(tables), where)

    def _select_target(self) -> SelectTarget:
        expr = self.expression()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        return SelectTarget(expr, alias)

    def _table_ref(self) -> TableRef:
        name = self._expect_ident()
        alias = None
        tok = self._peek()
        if tok.kind == "IDENT":
            alias = self._advance().value
        return TableRef(name, alias)

    def _update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._match_symbol(","):
            assignments.append(self._assignment())
        where = None
        if self._match_keyword("WHERE"):
            where = self.expression()
        return Update(table, tuple(assignments), where)

    def _assignment(self) -> tuple[str, Expr]:
        column = self._dotted_name()
        self._expect_symbol("=")
        return column, self.expression()

    def _delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = None
        if self._match_keyword("WHERE"):
            where = self.expression()
        return Delete(table, where)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._match_keyword("OR"):
            left = Or(left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._match_keyword("AND"):
            left = And(left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._match_keyword("NOT"):
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        op = self._match_symbol("=", "!=", "<", "<=", ">", ">=")
        if op is None:
            return left
        right = self._additive()
        return Comparison(op, left, right)

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            op = self._match_symbol("+", "-")
            if op is None:
                return left
            left = BinOp(op, left, self._multiplicative())

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            op = self._match_symbol("*", "/", "%")
            if op is None:
                return left
            left = BinOp(op, left, self._unary())

    def _unary(self) -> Expr:
        if self._match_symbol("-"):
            operand = self._unary()
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ):
                return Literal(-operand.value)
            return BinOp("-", Literal(0), operand)
        return self._primary()

    def _primary(self) -> Expr:
        tok = self._peek()
        if tok.kind == "NUMBER":
            self._advance()
            text = tok.value
            return Literal(float(text) if "." in text else int(text))
        if tok.kind == "STRING":
            self._advance()
            return Literal(tok.value)
        if tok.kind == "KEYWORD" and tok.value in ("TRUE", "FALSE", "NULL"):
            self._advance()
            return Literal(
                {"TRUE": True, "FALSE": False, "NULL": None}[tok.value]
            )
        if tok.kind == "IDENT":
            return ColumnRef(self._dotted_name())
        if tok.kind == "SYMBOL" and tok.value == "(":
            self._advance()
            inner = self.expression()
            self._expect_symbol(")")
            return inner
        raise SqlError(f"unexpected token {tok.value!r} at {tok.pos}")
