"""Statement AST of the mini-SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbms.expressions import Expr
from repro.dbms.schema import Column


class Statement:
    """Base class of all parsed statements."""


@dataclass(frozen=True)
class CreateTable(Statement):
    """``CREATE TABLE name (col TYPE [PRIMARY KEY], ...)``."""

    name: str
    columns: tuple[Column, ...]
    key: str | None = None


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO name [(cols)] VALUES (v, ...), (v, ...)``."""

    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[object, ...], ...]


@dataclass(frozen=True)
class SelectTarget:
    """One SELECT-list entry: an expression with an optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause entry: table name with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name rows of this table are qualified with."""
        return self.alias or self.name


@dataclass(frozen=True)
class Select(Statement):
    """``SELECT targets FROM tables [WHERE expr]``.

    ``targets`` is ``None`` for ``SELECT *``.
    """

    targets: tuple[SelectTarget, ...] | None
    tables: tuple[TableRef, ...]
    where: Expr | None = None


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE table SET col = expr, ... [WHERE expr]``."""

    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM table [WHERE expr]``."""

    table: str
    where: Expr | None = None
