"""Mini-SQL front end: lexer, AST, and recursive-descent parser.

The dialect covers what the paper's section 5.1 exposition needs from "the
underlying nontemporal query language": CREATE TABLE, INSERT, SELECT with
multi-table FROM + WHERE (joins), UPDATE, and DELETE.
"""

from repro.dbms.sql.ast import (
    CreateTable,
    Delete,
    Insert,
    Select,
    SelectTarget,
    Statement,
    TableRef,
    Update,
)
from repro.dbms.sql.lexer import Token, tokenize
from repro.dbms.sql.parser import parse_expression, parse_statement

__all__ = [
    "Statement",
    "CreateTable",
    "Insert",
    "Select",
    "SelectTarget",
    "TableRef",
    "Update",
    "Delete",
    "Token",
    "tokenize",
    "parse_statement",
    "parse_expression",
]
