"""The query planner: SELECT AST → physical plan.

Planning is deliberately classical and small:

1. split the WHERE clause into AND-conjuncts;
2. per table, pick an access path — index equality, index range, or
   sequential scan — from any sargable conjunct (``col op literal`` on an
   indexed column);
3. join left-deep, upgrading to a hash join whenever a conjunct equates a
   column of the accumulated left side with one of the next table;
4. apply the remaining conjuncts in a final filter, then project.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbms.expressions import And, ColumnRef, Comparison, Expr, Literal
from repro.dbms.executor import (
    ExecutionStats,
    Filter,
    HashJoin,
    IndexEqScan,
    IndexRangeScan,
    NestedLoopJoin,
    PlanNode,
    SeqScan,
)
from repro.dbms.sql.ast import Select, TableRef
from repro.dbms.table import Table
from repro.errors import SqlError


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a WHERE clause into its top-level AND-conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[Expr]) -> Expr | None:
    """Rebuild an expression from conjuncts (``None`` when empty)."""
    if not conjuncts:
        return None
    out = conjuncts[0]
    for c in conjuncts[1:]:
        out = And(out, c)
    return out


@dataclass
class _BoundTable:
    ref: TableRef
    table: Table


class Planner:
    """Plans SELECT statements against a catalog of tables."""

    def __init__(
        self, tables: dict[str, Table], stats: ExecutionStats
    ) -> None:
        self._tables = tables
        self._stats = stats

    def plan(self, select: Select) -> tuple[PlanNode, list[tuple[Expr, str]] | None]:
        """Return ``(root plan, projection targets)``."""
        bound = [self._bind(ref) for ref in select.tables]
        bindings = [b.ref.binding for b in bound]
        if len(set(bindings)) != len(bindings):
            raise SqlError(f"duplicate table bindings {bindings}")

        conjuncts = split_conjuncts(select.where)
        remaining: list[Expr] = []
        scans: dict[str, PlanNode] = {}

        # Access-path selection per table.
        for b in bound:
            choice = None
            for c in conjuncts:
                info = self._sargable(c, b, bound)
                if info is not None:
                    choice = (c, info)
                    break
            if choice is not None:
                used_conjunct, (column, op, value) = choice
                scans[b.ref.binding] = self._index_scan(b, column, op, value)
                conjuncts = [c for c in conjuncts if c is not used_conjunct]
            else:
                scans[b.ref.binding] = SeqScan(
                    b.table, b.ref.binding, self._stats
                )

        # Left-deep joins with hash-join upgrades.
        plan: PlanNode = scans[bound[0].ref.binding]
        joined = {bound[0].ref.binding}
        for b in bound[1:]:
            right = scans[b.ref.binding]
            equi = self._find_equi_conjunct(conjuncts, joined, b, plan)
            if equi is not None:
                conjunct, left_key, right_key = equi
                plan = HashJoin(plan, right, left_key, right_key)
                conjuncts = [c for c in conjuncts if c is not conjunct]
            else:
                plan = NestedLoopJoin(plan, right)
            joined.add(b.ref.binding)

        residual = conjoin(conjuncts)
        if residual is not None:
            plan = Filter(plan, residual)

        if select.targets is None:
            return plan, None
        targets: list[tuple[Expr, str]] = []
        for i, t in enumerate(select.targets):
            name = t.alias
            if name is None:
                name = str(t.expr) if not isinstance(t.expr, ColumnRef) else t.expr.name
            targets.append((t.expr, name))
        return plan, targets

    # ------------------------------------------------------------------
    def _bind(self, ref: TableRef) -> _BoundTable:
        table = self._tables.get(ref.name)
        if table is None:
            raise SqlError(f"unknown table {ref.name!r}")
        return _BoundTable(ref, table)

    def _resolve_column(self, name: str, b: _BoundTable) -> str | None:
        """Map a reference to a column of ``b``'s table, or ``None``."""
        prefix = b.ref.binding + "."
        if name.startswith(prefix) and name[len(prefix):] in b.table.schema:
            return name[len(prefix):]
        if name in b.table.schema:
            return name
        return None

    def _sargable(
        self, conjunct: Expr, b: _BoundTable, bound: list[_BoundTable]
    ) -> tuple[str, str, object] | None:
        """``(column, op, literal)`` when the conjunct can drive an index
        scan on ``b``'s table."""
        if not isinstance(conjunct, Comparison):
            return None
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
            return None
        column = self._resolve_column(left.name, b)
        if column is None:
            return None
        # An unqualified name resolving in more than one bound table is
        # ambiguous — leave it to the residual filter (which raises).
        if "." not in left.name or not left.name.startswith(b.ref.binding + "."):
            owners = sum(
                1 for other in bound if self._resolve_column(left.name, other)
            )
            if owners > 1:
                return None
        entry = b.table.index_on(column)
        if entry is None:
            return None
        kind, _index = entry
        if op == "=":
            return column, op, right.value
        if kind == "btree" and op in ("<", "<=", ">", ">="):
            return column, op, right.value
        return None

    def _index_scan(
        self, b: _BoundTable, column: str, op: str, value: object
    ) -> PlanNode:
        binding = b.ref.binding
        if op == "=":
            return IndexEqScan(b.table, binding, column, value, self._stats)
        lo = value if op in (">", ">=") else None
        hi = value if op in ("<", "<=") else None
        scan = IndexRangeScan(b.table, binding, column, lo, hi, self._stats)
        if op in ("<", ">"):
            # Closed-bound index ranges need a strictness filter on top.
            return Filter(
                scan,
                Comparison(op, ColumnRef(f"{binding}.{column}"), Literal(value)),
            )
        return scan

    def _find_equi_conjunct(
        self,
        conjuncts: list[Expr],
        joined: set[str],
        b: _BoundTable,
        left_plan: PlanNode,
    ) -> tuple[Expr, Expr, Expr] | None:
        """A conjunct ``left_col = right_col`` bridging the joined set and
        the incoming table ``b``."""
        left_tables = dict(left_plan.bindings())
        for c in conjuncts:
            if not (isinstance(c, Comparison) and c.op == "="):
                continue
            if not (
                isinstance(c.left, ColumnRef) and isinstance(c.right, ColumnRef)
            ):
                continue
            sides = {}
            for expr in (c.left, c.right):
                if self._resolve_column(expr.name, b) is not None:
                    sides.setdefault("right", expr)
                else:
                    for binding, table in left_tables.items():
                        fake = _BoundTable(TableRef(table.name, binding), table)
                        if self._resolve_column(expr.name, fake) is not None:
                            sides.setdefault("left", expr)
                            break
            if "left" in sides and "right" in sides:
                return c, sides["left"], sides["right"]
        return None
