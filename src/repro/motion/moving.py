"""Moving points: vector-valued positions as functions of time.

A moving point bundles an *anchor* position, the *anchor time* at which it
was observed (the paper's ``A.updatetime``), and one displacement
:class:`~repro.motion.functions.TimeFunction` per axis.  The position at
absolute time ``t`` is ``anchor + (f_x(t - t0), f_y(t - t0), ...)`` —
exactly the dynamic-attribute evaluation rule of section 2.1 applied
coordinate-wise.

The kinetic predicate solvers (:mod:`repro.spatial.kinetic`) ask a moving
point for its :meth:`~MovingPoint.linear_pieces` over a window: when every
axis is piecewise linear this yields exact closed-form satisfaction
intervals; otherwise the solvers fall back to numeric root isolation using
:meth:`~MovingPoint.position_at`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import MotionError
from repro.motion.functions import (
    LinearFunction,
    TimeFunction,
    ZERO_FUNCTION,
    constant_slope,
)
from repro.geometry import Point, Vector


@dataclass(frozen=True)
class LinearPiece:
    """One linear leg of a trajectory over absolute times
    ``[start, end]``: position is ``origin + velocity * (t - start)``."""

    start: float
    end: float
    origin: Point
    velocity: Vector

    def position_at(self, t: float) -> Point:
        """Position at absolute time ``t`` (extrapolates beyond the leg)."""
        return self.origin + self.velocity * (t - self.start)


class MovingPoint:
    """A point whose coordinates are dynamic attributes.

    Args:
        anchor: position at ``anchor_time``.
        functions: one displacement function per axis (defaults to all
            zero — a stationary object, which the paper models the same
            way: "the positions of the stationary objects are assumed to
            be fixed", appendix).
        anchor_time: absolute time of the last update.
    """

    __slots__ = ("_anchor", "_functions", "_anchor_time")

    def __init__(
        self,
        anchor: Point,
        functions: Sequence[TimeFunction] | None = None,
        anchor_time: float = 0.0,
    ) -> None:
        if functions is None:
            functions = [ZERO_FUNCTION] * anchor.dim
        if len(functions) != anchor.dim:
            raise MotionError(
                f"need {anchor.dim} axis functions, got {len(functions)}"
            )
        self._anchor = anchor
        self._functions = tuple(functions)
        self._anchor_time = float(anchor_time)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def anchor(self) -> Point:
        """Position at the anchor (last update) time."""
        return self._anchor

    @property
    def anchor_time(self) -> float:
        """Absolute time of the last update (``A.updatetime``)."""
        return self._anchor_time

    @property
    def functions(self) -> tuple[TimeFunction, ...]:
        """Per-axis displacement functions (``A.function``)."""
        return self._functions

    @property
    def dim(self) -> int:
        """Spatial dimensionality."""
        return self._anchor.dim

    @property
    def is_linear(self) -> bool:
        """Whether every axis moves with a constant slope."""
        return all(f.is_linear for f in self._functions)

    @property
    def is_static(self) -> bool:
        """Whether the point does not move at all."""
        return self.is_linear and all(
            f.value(1.0) == 0.0 for f in self._functions
        )

    @property
    def velocity(self) -> Vector:
        """Constant velocity vector; only defined for linear motion."""
        if not self.is_linear:
            raise MotionError("velocity undefined for nonlinear motion")
        return Vector(*(f.value(1.0) for f in self._functions))

    @property
    def speed(self) -> float:
        """Magnitude of the constant velocity (linear motion only)."""
        return self.velocity.norm

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def position_at(self, t: float) -> Point:
        """Position at absolute time ``t``."""
        dt = t - self._anchor_time
        return Point(
            *(
                a + f.value(dt)
                for a, f in zip(self._anchor.coords, self._functions)
            )
        )

    def linear_pieces(self, start: float, end: float) -> list[LinearPiece] | None:
        """Decompose the trajectory over ``[start, end]`` into linear legs.

        Returns ``None`` when any axis is not piecewise linear, signalling
        the kinetic solvers to use the numeric path.
        """
        if end < start:
            raise MotionError(f"window end {end} precedes start {start}")
        duration = end - self._anchor_time
        per_axis: list[list[tuple[float, float]]] = []
        for f in self._functions:
            bps = f.linear_breakpoints(duration)
            if bps is None:
                return None
            per_axis.append(bps)

        # Union of all axis breakpoints, in absolute time, clipped to the
        # window (the anchor-relative breakpoints shift by anchor_time).
        cuts = {start, end}
        for bps in per_axis:
            for rel_t, _slope in bps:
                abs_t = rel_t + self._anchor_time
                if start < abs_t < end:
                    cuts.add(abs_t)
        ordered = sorted(cuts)

        pieces: list[LinearPiece] = []
        for lo, hi in zip(ordered, ordered[1:]):
            origin = self.position_at(lo)
            slope = Vector(
                *(
                    self._slope_at(axis_bps, lo)
                    for axis_bps in per_axis
                )
            )
            pieces.append(LinearPiece(lo, hi, origin, slope))
        if not pieces:  # zero-length window
            origin = self.position_at(start)
            pieces.append(
                LinearPiece(start, end, origin, Vector.zero(self.dim))
            )
        return pieces

    def single_leg(self, start: float, end: float) -> LinearPiece | None:
        """The trajectory over ``[start, end]`` as one linear leg, or
        ``None`` when it is nonlinear or changes slope inside the window.

        Equivalent to :meth:`linear_pieces` returning exactly one piece,
        with a fast path that skips the breakpoint-union bookkeeping when
        every axis has a single constant slope — the common case the batch
        kinetic backend (:mod:`repro.motion.batch`) turns into one row of
        its coefficient arrays.
        """
        if end < start:
            raise MotionError(f"window end {end} precedes start {start}")
        if end > start:  # a zero-length window degenerates to a static leg
            duration = end - self._anchor_time
            slopes: list[float] = []
            for f in self._functions:
                k = constant_slope(f, duration)
                if k is None:
                    break
                slopes.append(k)
            else:
                return LinearPiece(
                    start, end, self.position_at(start), Vector(*slopes)
                )
        pieces = self.linear_pieces(start, end)
        if pieces is None or len(pieces) != 1:
            return None
        return pieces[0]

    def _slope_at(
        self, breakpoints: list[tuple[float, float]], abs_t: float
    ) -> float:
        """Slope of one axis at absolute time ``abs_t`` (taking the piece
        active just after ``abs_t``)."""
        rel_t = abs_t - self._anchor_time
        slope = breakpoints[0][1]
        for bp_start, bp_slope in breakpoints:
            if bp_start <= rel_t + 1e-12:
                slope = bp_slope
            else:
                break
        return slope

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def updated(
        self,
        at_time: float,
        functions: Sequence[TimeFunction] | None = None,
        position: Point | None = None,
    ) -> "MovingPoint":
        """A new moving point reflecting an explicit update at ``at_time``.

        An update "may change its value sub-attribute, or its function
        sub-attribute, or both" (section 2.1): omit ``position`` to keep
        the position implied by the old motion, omit ``functions`` to keep
        the old motion law.
        """
        anchor = position if position is not None else self.position_at(at_time)
        funcs = functions if functions is not None else self._functions
        return MovingPoint(anchor, funcs, anchor_time=at_time)

    def __repr__(self) -> str:
        funcs = ", ".join(str(f) for f in self._functions)
        return (
            f"MovingPoint(anchor={self._anchor!r}, t0={self._anchor_time:g},"
            f" functions=[{funcs}])"
        )


def linear_moving_point(
    anchor: Point, velocity: Vector, anchor_time: float = 0.0
) -> MovingPoint:
    """A point moving with a constant motion vector — the paper's canonical
    case ("north, at 60 miles/hour")."""
    if velocity.dim != anchor.dim:
        raise MotionError("velocity dimension must match anchor dimension")
    return MovingPoint(
        anchor,
        [LinearFunction(v) for v in velocity.coords],
        anchor_time=anchor_time,
    )


def static_point(position: Point) -> MovingPoint:
    """A stationary object (motels, airports, polygon reference points)."""
    return MovingPoint(position)
