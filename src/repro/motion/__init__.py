"""Motion functions: how dynamic attributes change between updates.

Section 2.1 of the paper represents a dynamic attribute ``A`` by the
sub-attributes ``A.value``, ``A.updatetime`` and ``A.function``, where
``A.function`` "is a function of a single variable t that has value 0 at
t = 0".  This package provides that function vocabulary:

* scalar :class:`TimeFunction` implementations (linear — the motion-vector
  case the paper centres on — plus piecewise-linear and smooth nonlinear
  forms, since section 4 notes "the ideas can be extended to nonlinear
  functions");
* moving points — vector-valued positions built from per-axis functions,
  with a ``linear_pieces`` decomposition that the kinetic solvers use for
  exact analytic satisfaction intervals, falling back to numeric root
  isolation when the motion is not piecewise linear.
"""

from repro.motion.functions import (
    LinearFunction,
    PiecewiseLinearFunction,
    PolynomialFunction,
    ShiftedFunction,
    SinusoidFunction,
    TimeFunction,
    ZERO_FUNCTION,
)
from repro.motion.moving import (
    LinearPiece,
    MovingPoint,
    linear_moving_point,
    static_point,
)

__all__ = [
    "TimeFunction",
    "LinearFunction",
    "PiecewiseLinearFunction",
    "PolynomialFunction",
    "ShiftedFunction",
    "SinusoidFunction",
    "ZERO_FUNCTION",
    "MovingPoint",
    "LinearPiece",
    "linear_moving_point",
    "static_point",
]
