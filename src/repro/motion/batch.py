"""Vectorized batch kinetic solving.

The scalar solvers in :mod:`repro.spatial.kinetic` answer one candidate
instantiation at a time; dense worlds submit thousands of near-identical
quadratic solves per atom.  This module answers *all* surviving rows of an
atom in one numpy pass:

* linear-motion ``DIST`` / ball / ``WITHIN_SPHERE`` rows reduce to
  vectorized quadratic root-finding over coefficient arrays, one entry per
  linear breakpoint piece (:class:`DistanceBatch`);
* polygon ``INSIDE`` / ``OUTSIDE`` rows run as a batched edge-crossing
  sweep plus a vectorized containment classifier (:class:`PolygonBatch`);
* everything else (nonlinear motion, ``SinusoidFunction``, unknown motion,
  degenerate windows) stays on the scalar root-isolation fallback — the
  caller simply does not enqueue those rows.

Every vectorized kernel replicates the scalar solver's floating-point
arithmetic operation-for-operation (same association, same tolerances,
including the PR 4 grazing-contact recovery), so the interval sets it
returns are equal — via ``IntervalSet.__eq__`` — to the scalar answers,
not merely close.  The differential wall in
``tests/ftl/test_batch_solver.py`` and the hypothesis properties in
``tests/motion/test_batch_primitives.py`` enforce this.

numpy is optional: when it is missing :func:`available` returns ``False``
and the evaluators silently keep the scalar path.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.motion.moving import LinearPiece
from repro.spatial.geometry import Point
from repro.spatial.polygon import Polygon
from repro.temporal import DISCRETE, IntervalSet

try:  # pragma: no cover - import guard
    import numpy as np
except ImportError:  # pragma: no cover - the backend degrades to scalar
    np = None  # type: ignore[assignment]

__all__ = [
    "available",
    "quadratic_at_most_zero_batch",
    "segment_crossings_batch",
    "LinearTable",
    "DistanceBatch",
    "PolygonBatch",
]

#: Degeneracy threshold shared with ``kinetic._quadratic_at_most_zero``.
_EPS = 1e-12


def available() -> bool:
    """Whether the vectorized backend can run (numpy is importable)."""
    return np is not None


# ---------------------------------------------------------------------------
# Vectorized quadratic kernel
# ---------------------------------------------------------------------------
def _quadratic_slots(a, b, c, hi):
    """Solve ``a s^2 + b s + c <= 0`` for ``s`` in ``[0, hi]``, elementwise.

    Returns ``(lo0, hi0, ok0, lo1, hi1, ok1)`` — up to two solution
    intervals per lane, in increasing order.  Each branch mirrors the
    corresponding branch of ``kinetic._quadratic_at_most_zero`` with
    ``lo = 0.0`` exactly (same operations, same tolerances), so selected
    lanes reproduce the scalar answers bit-for-bit up to the sign of zero.
    """
    shape = a.shape
    lo0 = np.zeros(shape)
    hi0 = np.zeros(shape)
    ok0 = np.zeros(shape, dtype=bool)
    lo1 = np.zeros(shape)
    hi1 = np.zeros(shape)
    ok1 = np.zeros(shape, dtype=bool)

    with np.errstate(all="ignore"):
        lin = np.abs(a) < _EPS
        const = lin & (np.abs(b) < _EPS)

        # Constant: satisfied everywhere or nowhere.
        sel = const & (c <= _EPS)
        hi0 = np.where(sel, hi, hi0)
        ok0 = ok0 | sel

        # Linear: a single root splits the window.
        linear = lin & ~const
        root = -c / b
        s0_lin = np.where(b > 0, 0.0, np.maximum(root, 0.0))
        s1_lin = np.where(b > 0, np.minimum(root, hi), hi)
        sel = linear & (s0_lin <= s1_lin)
        lo0 = np.where(sel, s0_lin, lo0)
        hi0 = np.where(sel, s1_lin, hi0)
        ok0 = ok0 | sel

        # True quadratic.
        quad = ~lin
        disc = b * b - 4 * a * c
        sel = quad & (disc < 0) & (a < 0)  # no real roots, negative leading
        hi0 = np.where(sel, hi, hi0)
        ok0 = ok0 | sel

        roots = quad & (disc >= 0)
        sq = np.sqrt(np.where(disc >= 0, disc, 0.0))
        r0 = (-b - sq) / (2 * a)
        r1 = (-b + sq) / (2 * a)
        rlo = np.minimum(r0, r1)
        rhi = np.maximum(r0, r1)

        # Opens upward: satisfied between the roots.
        opens_up = roots & (a > 0)
        s0 = np.maximum(rlo, 0.0)
        s1 = np.minimum(rhi, hi)
        sel = opens_up & (s0 <= s1)
        lo0 = np.where(sel, s0, lo0)
        hi0 = np.where(sel, s1, hi0)
        ok0 = ok0 | sel
        # Grazing contact lost to discriminant underflow: recover the
        # touch point when the overshoot is within floating-point noise.
        tol = 1e-9 * np.maximum(1.0, np.abs(hi))
        graze = opens_up & (s0 > s1) & (s0 - s1 <= tol)
        touch = np.minimum(np.maximum((s0 + s1) / 2, 0.0), hi)
        lo0 = np.where(graze, touch, lo0)
        hi0 = np.where(graze, touch, hi0)
        ok0 = ok0 | graze

        # Opens downward: satisfied outside the roots (up to two pieces).
        opens_down = roots & (a < 0)
        first_hi = np.minimum(rlo, hi)
        sel = opens_down & (0.0 <= first_hi)
        hi0 = np.where(sel, first_hi, hi0)  # lo0 stays 0.0
        ok0 = ok0 | sel
        second_lo = np.maximum(rhi, 0.0)
        sel = opens_down & (second_lo <= hi)
        lo1 = np.where(sel, second_lo, lo1)
        hi1 = np.where(sel, hi, hi1)
        ok1 = ok1 | sel

    return lo0, hi0, ok0, lo1, hi1, ok1


def quadratic_at_most_zero_batch(
    a: Sequence[float],
    b: Sequence[float],
    c: Sequence[float],
    hi: Sequence[float],
) -> list[list[tuple[float, float]]]:
    """Batched ``kinetic._quadratic_at_most_zero(a, b, c, 0.0, hi)``.

    Returns, per input lane, the solution intervals as ``(start, end)``
    pairs in the same order the scalar helper emits them.
    """
    arrays = [np.asarray(v, dtype=float) for v in (a, b, c, hi)]
    lo0, hi0, ok0, lo1, hi1, ok1 = _quadratic_slots(*arrays)
    out: list[list[tuple[float, float]]] = []
    for i in range(arrays[0].shape[0]):
        lanes: list[tuple[float, float]] = []
        if ok0[i]:
            lanes.append((float(lo0[i]), float(hi0[i])))
        if ok1[i]:
            lanes.append((float(lo1[i]), float(hi1[i])))
        out.append(lanes)
    return out


# ---------------------------------------------------------------------------
# Discrete assembly: dense solution pieces -> cached DISCRETE answer
# ---------------------------------------------------------------------------
def _discrete_set(pairs: list[tuple[float, float]]) -> IntervalSet:
    """A normalized DISCRETE set from already discretized+clipped pairs."""
    return IntervalSet.from_pairs(pairs, DISCRETE)


def _discretize_pairs(
    pairs: list[tuple[float, float]], start: float, end: float
) -> IntervalSet:
    """Scalar discretize+clip of dense ``(s, e)`` pieces.

    Mirrors ``IntervalSet.discretized().clip(start, end)``: the tick set
    is invariant under dense-side normalization, so per-piece ceil/floor
    followed by one DISCRETE normalization yields the identical canonical
    form the scalar pipeline produces.
    """
    out: list[tuple[float, float]] = []
    for s, e in pairs:
        dl: float = math.ceil(s)
        dh: float = math.floor(e)
        if dl > dh:
            continue
        if dl < start:
            dl = start
        if dh > end:
            dh = end
        if dl <= dh:
            out.append((dl, dh))
    return _discrete_set(out)


def _scatter_discrete(
    rows,
    n_rows: int,
    base,
    slots,
    start: float,
    end: float,
) -> list[IntervalSet]:
    """Fan per-leg quadratic solutions back into per-row DISCRETE sets."""
    pairs: list[list[tuple[float, float]]] = [[] for _ in range(n_rows)]
    lo0, hi0, ok0, lo1, hi1, ok1 = slots
    for lo_s, hi_s, ok in ((lo0, hi0, ok0), (lo1, hi1, ok1)):
        if not ok.any():
            continue
        dense_lo = base + lo_s
        dense_hi = base + hi_s
        dl = np.ceil(dense_lo)
        dh = np.floor(dense_hi)
        keep = ok & (dl <= dh)
        dl = np.maximum(dl, start)
        dh = np.minimum(dh, end)
        keep = keep & (dl <= dh)
        idx = np.nonzero(keep)[0]
        for row, s, e in zip(
            rows[idx].tolist(), dl[idx].tolist(), dh[idx].tolist()
        ):
            pairs[row].append((s, e))
    return [_discrete_set(p) for p in pairs]


# ---------------------------------------------------------------------------
# Single-leg coefficient table
# ---------------------------------------------------------------------------
class LinearTable:
    """Per-object single-leg ``(origin, velocity)`` columns.

    The batch orchestrator registers each distinct mover once; the solvers
    then gather coefficient rows by slot index instead of re-deriving the
    linear pieces per candidate pair.
    """

    def __init__(self, start: float, end: float) -> None:
        self.start = start
        self.end = end
        self._slots: dict[object, int] = {}
        self._origins: list[tuple[float, ...]] = []
        self._velocities: list[tuple[float, ...]] = []
        self._dims: list[int] = []
        self._cols: tuple | None = None

    def add(self, key: object, piece: LinearPiece) -> int:
        """Register (or look up) the single-leg mover under ``key``."""
        slot = self._slots.get(key)
        if slot is not None:
            return slot
        slot = len(self._origins)
        self._slots[key] = slot
        o = piece.origin.coords
        v = piece.velocity.coords
        pad = (0.0,) * (3 - len(o))
        self._origins.append(o + pad)
        self._velocities.append(v + pad)
        self._dims.append(len(o))
        self._cols = None
        return slot

    def dim(self, slot: int) -> int:
        """Spatial dimensionality of the mover in ``slot``."""
        return self._dims[slot]

    def columns(self):
        """``(origins, velocities)`` as ``(n, 3)`` float arrays."""
        if self._cols is None:
            self._cols = (
                np.asarray(self._origins, dtype=float).reshape(-1, 3),
                np.asarray(self._velocities, dtype=float).reshape(-1, 3),
            )
        return self._cols


# ---------------------------------------------------------------------------
# Distance batch (DIST compare, balls, two-mover spheres)
# ---------------------------------------------------------------------------
class DistanceBatch:
    """Queued ``DIST(m1, m2) <= r`` (or ``>= r``) rows, solved in one pass.

    Single-leg pairs are stored as slot indices into a
    :class:`LinearTable`; multi-leg pairs contribute their pre-paired
    relative-motion legs (from ``kinetic.paired_legs``) directly.
    """

    def __init__(self, table: LinearTable) -> None:
        self._table = table
        self._n = 0
        self._pair_rows: list[int] = []
        self._pair_i: list[int] = []
        self._pair_j: list[int] = []
        self._pair_rr: list[float] = []
        self._pair_neg: list[bool] = []
        self._leg_rows: list[int] = []
        self._leg_lo: list[float] = []
        self._leg_hi: list[float] = []
        self._leg_d0: list[tuple[float, ...]] = []
        self._leg_dv: list[tuple[float, ...]] = []
        self._leg_rr: list[float] = []
        self._leg_neg: list[bool] = []

    def __len__(self) -> int:
        return self._n

    def add_pair(self, slot1: int, slot2: int, r: float, at_least: bool) -> int:
        """Queue a single-leg pair over the whole window."""
        row = self._n
        self._n += 1
        self._pair_rows.append(row)
        self._pair_i.append(slot1)
        self._pair_j.append(slot2)
        self._pair_rr.append(r * r)
        self._pair_neg.append(at_least)
        return row

    def add_legs(
        self,
        legs: Sequence[tuple[float, float, Point, Point]],
        r: float,
        at_least: bool,
    ) -> int:
        """Queue a multi-leg pair as explicit relative-motion legs."""
        row = self._n
        self._n += 1
        rr = r * r
        for lo, hi, d0, dv in legs:
            o = d0.coords
            v = dv.coords
            pad = (0.0,) * (3 - len(o))
            self._leg_rows.append(row)
            self._leg_lo.append(lo)
            self._leg_hi.append(hi - lo)
            self._leg_d0.append(o + pad)
            self._leg_dv.append(v + pad)
            self._leg_rr.append(rr)
            self._leg_neg.append(at_least)
        return row

    def solve(self) -> list[IntervalSet]:
        """Answer every queued row as a clipped DISCRETE interval set."""
        start, end = self._table.start, self._table.end
        d0_parts = []
        dv_parts = []
        lo_parts = []
        hi_parts = []
        rr_parts = []
        neg_parts = []
        row_parts = []
        if self._pair_rows:
            origins, velocities = self._table.columns()
            i = np.asarray(self._pair_i, dtype=int)
            j = np.asarray(self._pair_j, dtype=int)
            o1, v1 = origins[i], velocities[i]
            o2, v2 = origins[j], velocities[j]
            # The scalar leg evaluates each piece at the window start:
            # position_at(start) = origin + velocity * 0.
            p1 = o1 + v1 * 0.0
            p2 = o2 + v2 * 0.0
            d0_parts.append(p1 - p2)
            dv_parts.append(v1 - v2)
            n = len(self._pair_rows)
            lo_parts.append(np.full(n, float(start)))
            hi_parts.append(np.full(n, float(end - start)))
            rr_parts.append(np.asarray(self._pair_rr, dtype=float))
            neg_parts.append(np.asarray(self._pair_neg, dtype=bool))
            row_parts.append(np.asarray(self._pair_rows, dtype=int))
        if self._leg_rows:
            d0_parts.append(
                np.asarray(self._leg_d0, dtype=float).reshape(-1, 3)
            )
            dv_parts.append(
                np.asarray(self._leg_dv, dtype=float).reshape(-1, 3)
            )
            lo_parts.append(np.asarray(self._leg_lo, dtype=float))
            hi_parts.append(np.asarray(self._leg_hi, dtype=float))
            rr_parts.append(np.asarray(self._leg_rr, dtype=float))
            neg_parts.append(np.asarray(self._leg_neg, dtype=bool))
            row_parts.append(np.asarray(self._leg_rows, dtype=int))
        if not d0_parts:
            return []

        d0 = np.concatenate(d0_parts)
        dv = np.concatenate(dv_parts)
        lo = np.concatenate(lo_parts)
        hi = np.concatenate(hi_parts)
        rr = np.concatenate(rr_parts)
        neg = np.concatenate(neg_parts)
        rows = np.concatenate(row_parts)

        # a = |dv|^2, b = 2 d0.dv, c = |d0|^2 - r^2, accumulated in the
        # same left-to-right order as Point.norm_squared / Point.dot.
        a = dv[:, 0] * dv[:, 0]
        a = a + dv[:, 1] * dv[:, 1]
        a = a + dv[:, 2] * dv[:, 2]
        dot = 0.0 + d0[:, 0] * dv[:, 0]
        dot = dot + d0[:, 1] * dv[:, 1]
        dot = dot + d0[:, 2] * dv[:, 2]
        b = 2 * dot
        c = d0[:, 0] * d0[:, 0]
        c = c + d0[:, 1] * d0[:, 1]
        c = c + d0[:, 2] * d0[:, 2]
        c = c - rr
        # DIST >= r solves the negated quadratic.
        a = np.where(neg, -a, a)
        b = np.where(neg, -b, b)
        c = np.where(neg, -c, c)

        slots = _quadratic_slots(a, b, c, hi)
        return _scatter_discrete(rows, self._n, lo, slots, start, end)


# ---------------------------------------------------------------------------
# Polygon batch (INSIDE / OUTSIDE against a fixed polygon)
# ---------------------------------------------------------------------------
class PolygonBatch:
    """Queued polygon containment rows against one static polygon.

    Runs the scalar sweep's three stages vectorized: edge-crossing event
    detection over a (leg x edge) grid, then one containment classification
    pass over every midpoint / event probe, then per-row assembly.  Returns
    *inside* sets; the caller complements for OUTSIDE.
    """

    def __init__(self, polygon: Polygon, table: LinearTable) -> None:
        self._polygon = polygon
        self._table = table
        self._n = 0
        # One entry per (row, leg).
        self._ent_row: list[int] = []
        self._ent_lo: list[float] = []
        self._ent_smax: list[float] = []
        self._ent_o: list[tuple[float, float]] = []
        self._ent_v: list[tuple[float, float]] = []
        self._pair_entries: list[int] = []  # entries still needing o/v gather
        self._pair_slots: list[int] = []

    def __len__(self) -> int:
        return self._n

    def add_slot(self, slot: int) -> int:
        """Queue a single-leg 2-D mover registered in the table."""
        row = self._n
        self._n += 1
        entry = len(self._ent_row)
        self._ent_row.append(row)
        self._ent_lo.append(self._table.start)
        self._ent_smax.append(self._table.end - self._table.start)
        self._ent_o.append((0.0, 0.0))  # patched from the table at solve()
        self._ent_v.append((0.0, 0.0))
        self._pair_entries.append(entry)
        self._pair_slots.append(slot)
        return row

    def add_legs(
        self, legs: Sequence[tuple[float, float, Point, Point]]
    ) -> int:
        """Queue a multi-leg mover as explicit relative-motion legs."""
        row = self._n
        self._n += 1
        for lo, hi, d0, dv in legs:
            self._ent_row.append(row)
            self._ent_lo.append(lo)
            self._ent_smax.append(hi - lo)
            self._ent_o.append((d0.x, d0.y))
            self._ent_v.append((dv.x, dv.y))
        return row

    def solve(self) -> list[IntervalSet]:
        """Answer every queued row as a clipped DISCRETE *inside* set."""
        start, end = self._table.start, self._table.end
        n_ent = len(self._ent_row)
        if not n_ent:
            return []
        o = np.asarray(self._ent_o, dtype=float).reshape(-1, 2)
        v = np.asarray(self._ent_v, dtype=float).reshape(-1, 2)
        if self._pair_entries:
            origins, velocities = self._table.columns()
            ent = np.asarray(self._pair_entries, dtype=int)
            slots = np.asarray(self._pair_slots, dtype=int)
            go = origins[slots][:, :2]
            gv = velocities[slots][:, :2]
            # Scalar leg: d0 = m.position_at(start) - reference(0, 0),
            # dv = velocity - 0; position_at(start) = origin + velocity*0.
            o[ent] = (go + gv * 0.0) - 0.0
            v[ent] = gv - 0.0
        smax = np.asarray(self._ent_smax, dtype=float)

        events: list[set[float]] = [
            {0.0, s} for s in self._ent_smax
        ]
        self._collect_crossings(o, v, smax, events)

        # Flatten midpoint and event-instant probes for one classification.
        ordered_per_ent = [sorted(ev) for ev in events]
        probe_ent: list[int] = []
        probe_s: list[float] = []
        for i, ordered in enumerate(ordered_per_ent):
            for s0, s1 in zip(ordered, ordered[1:]):
                probe_ent.append(i)
                probe_s.append((s0 + s1) / 2)
            for s in ordered:
                probe_ent.append(i)
                probe_s.append(s)
        contained = self._contains(
            o, v, np.asarray(probe_ent, dtype=int),
            np.asarray(probe_s, dtype=float),
        ).tolist()

        pairs: list[list[tuple[float, float]]] = [[] for _ in range(self._n)]
        pos = 0
        for i, ordered in enumerate(ordered_per_ent):
            row = self._ent_row[i]
            lo = self._ent_lo[i]
            row_pairs = pairs[row]
            for s0, s1 in zip(ordered, ordered[1:]):
                if contained[pos]:
                    row_pairs.append((lo + s0, lo + s1))
                pos += 1
            for s in ordered:
                if contained[pos]:
                    row_pairs.append((lo + s, lo + s))
                pos += 1
        return [_discretize_pairs(p, start, end) for p in pairs]

    # ------------------------------------------------------------------
    def _collect_crossings(self, o, v, smax, events) -> None:
        """Vectorized ``kinetic._segment_crossings`` over (entry x edge)."""
        ox, oy = o[:, 0:1], o[:, 1:2]
        vx, vy = v[:, 0:1], v[:, 1:2]
        sm = smax[:, None]
        edges = self._polygon.edges
        ax = np.asarray([e.a.x for e in edges])
        ay = np.asarray([e.a.y for e in edges])
        abx = np.asarray([e.vector.x for e in edges])
        aby = np.asarray([e.vector.y for e in edges])
        bx = np.asarray([e.b.x for e in edges])
        by = np.asarray([e.b.y for e in edges])

        with np.errstate(all="ignore"):
            denom = vx * aby - vy * abx
            nonpar = np.abs(denom) > 1e-12
            # Non-parallel: single candidate crossing.
            s = ((ax - ox) * aby - (ay - oy) * abx) / denom
            in_range = (-1e-12 <= s) & (s <= sm + 1e-12)
            ux = np.where(
                abx != 0.0, ((ox + vx * s) - ax) / abx, 0.0
            )
            uy = np.where(
                aby != 0.0, ((oy + vy * s) - ay) / aby, 0.0
            )
            u = np.where(np.abs(abx) >= np.abs(aby), ux, uy)
            hit = nonpar & in_range & (-1e-9 <= u) & (u <= 1 + 1e-9)
            s_val = np.minimum(np.maximum(s, 0.0), sm)
            for i, j in zip(*np.nonzero(hit)):
                events[i].add(float(s_val[i, j]))

            # Parallel: only collinear overlap produces crossings, at the
            # projections of the edge endpoints onto the path.
            collinear = ~nonpar & (
                np.abs((ax - ox) * vy - (ay - oy) * vx) <= 1e-9
            )
            v2 = vx * vx + vy * vy
            moving = v2 >= 1e-18
            for ex, ey in ((ax, ay), (bx, by)):
                s_e = ((ex - ox) * vx + (ey - oy) * vy) / v2
                ok = (
                    collinear
                    & moving
                    & (-1e-12 <= s_e)
                    & (s_e <= sm + 1e-12)
                )
                val = np.minimum(np.maximum(s_e, 0.0), sm)
                for i, j in zip(*np.nonzero(ok)):
                    events[i].add(float(val[i, j]))

    def _contains(self, o, v, probe_ent, probe_s):
        """Vectorized ``Polygon.contains`` for probe points on the paths."""
        if probe_ent.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        px = (o[:, 0][probe_ent] + v[:, 0][probe_ent] * probe_s)[:, None]
        py = (o[:, 1][probe_ent] + v[:, 1][probe_ent] * probe_s)[:, None]
        edges = self._polygon.edges
        ax = np.asarray([e.a.x for e in edges])
        ay = np.asarray([e.a.y for e in edges])
        bx = np.asarray([e.b.x for e in edges])
        by = np.asarray([e.b.y for e in edges])
        vectors = [e.vector for e in edges]
        abx = np.asarray([w.x for w in vectors])
        aby = np.asarray([w.y for w in vectors])
        ns = np.asarray([w.norm_squared for w in vectors])

        with np.errstate(all="ignore"):
            apx = px - ax
            apy = py - ay
            # Boundary pre-check (tol = 1e-12, per-edge scale guard).
            cross = abx * apy - aby * apx
            near = np.abs(cross) <= 1e-12 * np.maximum(1.0, ns)
            dot = 0.0 + abx * apx
            dot = dot + aby * apy
            on_edge = near & (-1e-12 <= dot) & (dot <= ns + 1e-12)
            boundary = on_edge.any(axis=1)
            # Ray cast: count upward/downward edge crossings left of p.
            straddles = (ay > py) != (by > py)
            x_cross = ax + (py - ay) * (bx - ax) / (by - ay)
            toggles = straddles & (px < x_cross)
            inside = (toggles.sum(axis=1) % 2) == 1
        return boundary | inside


# ---------------------------------------------------------------------------
# Coefficient/breakpoint array export (sharded evaluation transport)
# ---------------------------------------------------------------------------
class MotionRows:
    """Flattened dynamic-attribute triples as coefficient arrays.

    One row per ``(object, attribute)`` triple, in caller order:
    ``value`` / ``updatetime`` / ``slope`` float64 columns plus a ``kind``
    code (0 = linear, 1 = piecewise-linear with breakpoints in the ragged
    ``pw_*`` pool, 2 = exact per-row fallback in :attr:`fallback`) and an
    ``intflags`` bitmask recording which fields were ``int``-typed so the
    consumer can restore exact value types.  This is the wire format the
    sharded evaluator ships through shared memory
    (:mod:`repro.parallel.motion`), and the same single-leg coefficients
    the :class:`LinearTable` gathers — built once per epoch instead of
    once per candidate row.
    """

    def __init__(
        self,
        value,
        updatetime,
        slope,
        kind,
        intflags,
        pw_offsets,
        pw_starts,
        pw_slopes,
        fallback: dict,
    ) -> None:
        self.value = value
        self.updatetime = updatetime
        self.slope = slope
        self.kind = kind
        self.intflags = intflags
        self.pw_offsets = pw_offsets
        self.pw_starts = pw_starts
        self.pw_slopes = pw_slopes
        #: Row index → original triple, for rows the arrays cannot carry
        #: exactly (nonlinear functions, non-numeric or non-float64-exact
        #: values).
        self.fallback = fallback


def _exact_numeric(x: object) -> bool:
    """Whether ``x`` is an int/float that round-trips through float64."""
    if type(x) is float:
        return True
    if type(x) is int:
        try:
            return int(float(x)) == x
        except (OverflowError, ValueError):
            return False
    return False


def export_motion_rows(triples) -> MotionRows:
    """Flatten dynamic-attribute triples into :class:`MotionRows`.

    Requires numpy (the sharded backend is unavailable without it, unlike
    the batch solvers which silently degrade to scalar).
    """
    from repro.motion.functions import (
        LinearFunction,
        PiecewiseLinearFunction,
    )

    if np is None:  # pragma: no cover - numpy is a hard dep of sharding
        raise RuntimeError("export_motion_rows requires numpy")
    n = len(triples)
    value = np.zeros(n)
    updatetime = np.zeros(n)
    slope = np.zeros(n)
    kind = np.zeros(n, dtype=np.int8)
    intflags = np.zeros(n, dtype=np.int8)
    pw_offsets: list[int] = [0]
    pw_starts: list[float] = []
    pw_slopes: list[float] = []
    fallback: dict[int, object] = {}

    for row, triple in enumerate(triples):
        fn = triple.function
        fn_type = type(fn)
        if not (
            _exact_numeric(triple.value)
            and _exact_numeric(triple.updatetime)
            and fn_type in (LinearFunction, PiecewiseLinearFunction)
        ):
            kind[row] = 2
            fallback[row] = triple
            continue
        flags = 0
        if type(triple.value) is int:
            flags |= 1
        if type(triple.updatetime) is int:
            flags |= 2
        value[row] = float(triple.value)
        updatetime[row] = float(triple.updatetime)
        if fn_type is LinearFunction:
            if not _exact_numeric(fn.slope):
                kind[row] = 2
                fallback[row] = triple
                continue
            if type(fn.slope) is int:
                flags |= 4
            slope[row] = float(fn.slope)
            kind[row] = 0
        else:  # PiecewiseLinearFunction: pieces are floats by construction
            kind[row] = 1
            for s, k in fn.pieces:
                pw_starts.append(s)
                pw_slopes.append(k)
            pw_offsets.append(len(pw_starts))
        intflags[row] = flags

    return MotionRows(
        value=value,
        updatetime=updatetime,
        slope=slope,
        kind=kind,
        intflags=intflags,
        pw_offsets=np.asarray(pw_offsets, dtype=np.int64),
        pw_starts=np.asarray(pw_starts, dtype=np.float64),
        pw_slopes=np.asarray(pw_slopes, dtype=np.float64),
        fallback=fallback,
    )


# ---------------------------------------------------------------------------
# Scalar-oracle shims for the property tests
# ---------------------------------------------------------------------------
def segment_crossings_batch(
    p0s: Sequence[Point],
    vs: Sequence[Point],
    s_maxes: Sequence[float],
    a: Point,
    b: Point,
) -> list[list[float]]:
    """Batched ``kinetic._segment_crossings`` against one segment.

    Returns, per path, the crossing times in the scalar helper's emission
    order (the single non-parallel candidate, or the ``a`` then ``b``
    endpoint projections when collinear).
    """
    n = len(p0s)
    ox = np.asarray([p.x for p in p0s])
    oy = np.asarray([p.y for p in p0s])
    vx = np.asarray([w.x for w in vs])
    vy = np.asarray([w.y for w in vs])
    sm = np.asarray(s_maxes, dtype=float)
    abx = (b - a).x
    aby = (b - a).y

    out: list[list[float]] = [[] for _ in range(n)]
    with np.errstate(all="ignore"):
        denom = vx * aby - vy * abx
        nonpar = np.abs(denom) > 1e-12
        s = ((a.x - ox) * aby - (a.y - oy) * abx) / denom
        in_range = (-1e-12 <= s) & (s <= sm + 1e-12)
        if abs(abx) >= abs(aby):
            u = np.where(abx != 0.0, ((ox + vx * s) - a.x) / abx, 0.0)
        else:
            u = np.where(aby != 0.0, ((oy + vy * s) - a.y) / aby, 0.0)
        hit = nonpar & in_range & (-1e-9 <= u) & (u <= 1 + 1e-9)
        s_val = np.minimum(np.maximum(s, 0.0), sm)
        for i in np.nonzero(hit)[0]:
            out[i].append(float(s_val[i]))

        collinear = ~nonpar & (
            np.abs((a.x - ox) * vy - (a.y - oy) * vx) <= 1e-9
        )
        v2 = vx * vx + vy * vy
        moving = v2 >= 1e-18
        for endpoint in (a, b):
            s_e = ((endpoint.x - ox) * vx + (endpoint.y - oy) * vy) / v2
            ok = collinear & moving & (-1e-12 <= s_e) & (s_e <= sm + 1e-12)
            val = np.minimum(np.maximum(s_e, 0.0), sm)
            for i in np.nonzero(ok)[0]:
                out[i].append(float(val[i]))
    return out
