"""Scalar time functions for dynamic attributes.

Every function here satisfies the paper's constraint ``f(0) == 0``
(section 2.1): a dynamic attribute's value at ``updatetime + t0`` is
``value + function(t0)``, so the function describes *displacement since the
last update*, not an absolute value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.errors import MotionError


@runtime_checkable
class TimeFunction(Protocol):
    """A displacement function of elapsed time with ``value(0) == 0``."""

    def value(self, t: float) -> float:
        """Displacement after ``t`` time units."""
        ...

    @property
    def is_linear(self) -> bool:
        """Whether the function is globally linear (constant slope)."""
        ...

    def linear_breakpoints(self, duration: float) -> "list[tuple[float, float]] | None":
        """Piecewise-linear decomposition over ``[0, duration]``.

        Returns ``[(t_i, slope_i)]`` — from elapsed time ``t_i`` (until the
        next breakpoint) the function moves with ``slope_i`` — or ``None``
        when the function is not piecewise linear.  The first breakpoint is
        always at ``t = 0``.
        """
        ...


@dataclass(frozen=True)
class LinearFunction:
    """``f(t) = slope * t`` — the paper's motion-vector component.

    A query can address this sub-attribute directly, e.g. "the objects for
    which ``X.POSITION.function = 5 * t``" retrieves objects whose speed in
    the X direction is 5 (section 2.1).
    """

    slope: float

    def value(self, t: float) -> float:
        """Displacement after ``t`` time units."""
        return self.slope * t

    @property
    def is_linear(self) -> bool:
        return True

    def linear_breakpoints(self, duration: float) -> list[tuple[float, float]]:
        """A single piece: constant slope from t = 0."""
        return [(0.0, self.slope)]

    def __str__(self) -> str:
        return f"{self.slope:g}*t"


#: The constant-zero displacement: a static value until the next update.
ZERO_FUNCTION = LinearFunction(0.0)


def constant_slope(f: TimeFunction, duration: float) -> float | None:
    """The single slope of ``f`` over ``[0, duration]``, or ``None``.

    Coefficient extraction for the batch kinetic backend
    (:mod:`repro.motion.batch`): a function that decomposes into exactly
    one linear piece over the window contributes one velocity coefficient
    per axis, so the whole trajectory becomes a single row in the
    vectorized quadratic solve.  Functions that are nonlinear or change
    slope mid-window return ``None`` and take the piecewise or scalar
    fallback path instead.
    """
    bps = f.linear_breakpoints(duration)
    if bps is None or len(bps) != 1:
        return None
    return bps[0][1]


@dataclass(frozen=True)
class PiecewiseLinearFunction:
    """Continuous piecewise-linear displacement.

    Args:
        pieces: ``[(start, slope)]`` sorted by start, first start must be 0.
            The function follows ``slope_i`` from ``start_i`` until the next
            piece begins (the last piece extends forever).
    """

    pieces: tuple[tuple[float, float], ...]

    def __init__(self, pieces: Sequence[tuple[float, float]]) -> None:
        items = tuple((float(s), float(k)) for s, k in pieces)
        if not items:
            raise MotionError("piecewise function needs at least one piece")
        if items[0][0] != 0.0:
            raise MotionError("first piece must start at t = 0")
        starts = [s for s, _ in items]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise MotionError("piece starts must be strictly increasing")
        object.__setattr__(self, "pieces", items)

    def value(self, t: float) -> float:
        """Displacement after ``t`` time units."""
        if t < 0:
            # Extrapolate backwards with the first slope.
            return self.pieces[0][1] * t
        acc = 0.0
        for idx, (start, slope) in enumerate(self.pieces):
            end = (
                self.pieces[idx + 1][0]
                if idx + 1 < len(self.pieces)
                else math.inf
            )
            if t <= end:
                return acc + slope * (t - start)
            acc += slope * (end - start)
        return acc  # pragma: no cover - unreachable

    @property
    def is_linear(self) -> bool:
        return len(self.pieces) == 1

    def linear_breakpoints(self, duration: float) -> list[tuple[float, float]]:
        """The pieces starting within ``[0, duration]``."""
        return [(s, k) for s, k in self.pieces if s <= duration]

    def __str__(self) -> str:
        body = ", ".join(f"(t>={s:g}: {k:g}*t)" for s, k in self.pieces)
        return f"piecewise[{body}]"


@dataclass(frozen=True)
class PolynomialFunction:
    """``f(t) = c1*t + c2*t^2 + ...`` — a smooth nonlinear displacement.

    The constant term is forced to zero to honour ``f(0) == 0``; pass the
    coefficients starting from the *linear* term.
    """

    coefficients: tuple[float, ...] = field(default=())

    def __init__(self, coefficients: Sequence[float]) -> None:
        object.__setattr__(
            self, "coefficients", tuple(float(c) for c in coefficients)
        )

    def value(self, t: float) -> float:
        """Displacement after ``t`` time units."""
        acc = 0.0
        power = t
        for c in self.coefficients:
            acc += c * power
            power *= t
        return acc

    @property
    def is_linear(self) -> bool:
        return all(c == 0 for c in self.coefficients[1:])

    def linear_breakpoints(self, duration: float) -> list[tuple[float, float]] | None:
        """One piece when degree <= 1, otherwise not piecewise linear."""
        if self.is_linear:
            slope = self.coefficients[0] if self.coefficients else 0.0
            return [(0.0, slope)]
        return None

    def __str__(self) -> str:
        terms = [
            f"{c:g}*t^{i + 1}" for i, c in enumerate(self.coefficients) if c
        ]
        return " + ".join(terms) if terms else "0"


@dataclass(frozen=True)
class ShiftedFunction:
    """``f(t) = base(t + offset) - base(offset)`` — the base function
    re-anchored ``offset`` time units into its life.

    Used when the axes of a moving point were updated at different times
    and must be expressed from a common anchor; satisfies ``f(0) == 0`` by
    construction.
    """

    base: TimeFunction
    offset: float

    def value(self, t: float) -> float:
        """Displacement after ``t`` time units."""
        return self.base.value(t + self.offset) - self.base.value(self.offset)

    @property
    def is_linear(self) -> bool:
        return self.base.is_linear

    def linear_breakpoints(self, duration: float) -> list[tuple[float, float]] | None:
        """The base function's pieces, re-anchored at the offset."""
        bps = self.base.linear_breakpoints(duration + self.offset)
        if bps is None:
            return None
        current = bps[0][1]
        shifted: list[tuple[float, float]] = []
        for start, slope in bps:
            rel = start - self.offset
            if rel <= 0:
                current = slope  # piece already active at the new anchor
            else:
                shifted.append((rel, slope))
        return [(0.0, current)] + shifted

    def __str__(self) -> str:
        return f"shift({self.base}, {self.offset:g})"


@dataclass(frozen=True)
class SinusoidFunction:
    """``f(t) = amplitude * sin(omega * t)`` — an oscillating displacement.

    Useful as a genuinely nonlinear motion to exercise the numeric solver
    path (circling aircraft, patrolling vehicles).
    """

    amplitude: float
    omega: float

    def value(self, t: float) -> float:
        """Displacement after ``t`` time units."""
        return self.amplitude * math.sin(self.omega * t)

    @property
    def is_linear(self) -> bool:
        return self.amplitude == 0 or self.omega == 0

    def linear_breakpoints(self, duration: float) -> list[tuple[float, float]] | None:
        """Only the degenerate (flat) sinusoid is piecewise linear."""
        if self.is_linear:
            return [(0.0, 0.0)]
        return None

    def __str__(self) -> str:
        return f"{self.amplitude:g}*sin({self.omega:g}*t)"
