"""The durable subscription registry and per-query answer states.

The registry is the server's *durable* core: query texts and subscriber
records survive an epoch-loop crash (think: a subscription table in
stable storage), while the :class:`~repro.core.queries.ContinuousQuery`
instances and their incremental caches are volatile and rebuilt by
:meth:`SubscriptionRegistry.rebuild` on restart — a restarted server
re-evaluates from the database and resynchronises clients by snapshot.

Identical subscriptions (same text, horizon, method) share one
registered query: a thousand clients watching the same fleet cost one
refresh per epoch, not a thousand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.database import MostDatabase
from repro.core.queries import ContinuousQuery
from repro.errors import ReproError
from repro.ftl import parse_query
from repro.server.metrics import ServerMetrics
from repro.server.protocol import SubscribeMsg, WireTuple


@dataclass
class AnswerState:
    """The fanned-out answer of one query as of its last refresh.

    ``max_age`` annotations inside ``tuples`` are relative to
    ``computed_at``; consumers age them by ``now - computed_at`` — this
    is what lets a load-shedding server keep serving the *last* answer
    with honest staleness flags instead of blocking on a refresh.
    """

    computed_at: int
    tuples: tuple[WireTuple, ...]
    keys: frozenset[tuple[Any, ...]] = field(default_factory=frozenset)

    @staticmethod
    def capture(cq: ContinuousQuery, now: int) -> "AnswerState":
        """Snapshot the query's stamped answer at the current tick."""
        tuples = tuple(
            WireTuple(
                values=s.values,
                begin=s.begin,
                end=s.end,
                support=s.support,
                max_age=s.max_age,
            )
            for s in cq.stamped_tuples()
        )
        return AnswerState(
            computed_at=now,
            tuples=tuples,
            keys=frozenset(t.key() for t in tuples),
        )


@dataclass
class RegisteredQuery:
    """One registered continuous query plus its refresh bookkeeping."""

    query_id: str
    text: str
    horizon: int
    method: str
    cq: ContinuousQuery
    state: AnswerState
    #: Client ids subscribed to this query.
    subscribers: set[str] = field(default_factory=set)
    _last_evaluations: int = 0
    #: ``cq.horizon_skipped`` as of the last refresh round — lets the
    #: round attribute a clean query to the temporal-validity gate
    #: rather than the plain dependency gate.
    _last_horizon_skipped: int = 0


@dataclass(frozen=True)
class SubscriberRecord:
    """The durable per-subscriber row (policy + window + bound)."""

    client_id: str
    query_id: str
    policy: str
    period: int
    window: int | None
    staleness_bound: float | None


class SubscriptionRegistry:
    """Registered queries, their answers, and the subscriber table."""

    def __init__(
        self,
        db: MostDatabase,
        metrics: ServerMetrics,
        parallel: object = None,
    ) -> None:
        self.db = db
        self.metrics = metrics
        #: Forwarded to every registered :class:`ContinuousQuery` — the
        #: ``parallel=`` knob of sharded evaluation (DESIGN.md §12).
        #: All queries share one worker pool, so refresh rounds ship the
        #: motion snapshot once per database epoch.
        self.parallel = parallel
        self.queries: dict[str, RegisteredQuery] = {}
        self.records: dict[tuple[str, str], SubscriberRecord] = {}
        self._by_spec: dict[tuple[str, int, str], str] = {}
        self._next_id = 0
        self._rr: list[str] = []  # round-robin refresh order under shedding
        self._rr_pos = 0

    # ------------------------------------------------------------------
    def register(self, msg: SubscribeMsg) -> RegisteredQuery:
        """Register (or join) the query a subscription names.

        Raises the :class:`~repro.errors.SchemaError`-family diagnostic
        of :class:`ContinuousQuery` registration when the query is
        malformed or ranges over unknown classes — callers turn that
        into a refused-subscription reply, and no evaluator ever sees
        the bad query.
        """
        spec = (msg.text, msg.horizon, msg.method)
        query_id = self._by_spec.get(spec)
        if query_id is None:
            query_id = f"q{self._next_id}"
            self._next_id += 1
            cq = self._build_cq(msg.text, msg.horizon, msg.method)
            rq = RegisteredQuery(
                query_id=query_id,
                text=msg.text,
                horizon=msg.horizon,
                method=msg.method,
                cq=cq,
                state=AnswerState.capture(cq, self.db.clock.now),
            )
            rq._last_evaluations = cq.evaluations
            self.queries[query_id] = rq
            self._by_spec[spec] = query_id
            self._rr.append(query_id)
        rq = self.queries[query_id]
        rq.subscribers.add(msg.client_id)
        self.records[(msg.client_id, query_id)] = SubscriberRecord(
            client_id=msg.client_id,
            query_id=query_id,
            policy=msg.policy,
            period=msg.period,
            window=msg.window,
            staleness_bound=msg.staleness_bound,
        )
        return rq

    def _build_cq(
        self, text: str, horizon: int, method: str
    ) -> ContinuousQuery:
        query = parse_query(text)
        return ContinuousQuery(
            self.db,
            query,
            horizon=horizon,
            method=method,
            parallel=self.parallel,
        )

    def drop_subscriber(self, client_id: str, query_id: str) -> None:
        """Remove one subscriber; cancel the query when none remain."""
        self.records.pop((client_id, query_id), None)
        rq = self.queries.get(query_id)
        if rq is None:
            return
        rq.subscribers.discard(client_id)
        if not rq.subscribers:
            rq.cq.cancel()
            del self.queries[query_id]
            self._by_spec.pop((rq.text, rq.horizon, rq.method), None)
            self._rr = [q for q in self._rr if q != query_id]

    # ------------------------------------------------------------------
    def refresh(self, rq: RegisteredQuery, now: int) -> bool:
        """Bring one query's answer state up to date.

        Returns whether the answer state was rebuilt (i.e. the refresh
        actually re-evaluated something).  Records latency either way —
        the steady-state goal is that a refresh with no pending updates
        is nearly free, and the bench watches exactly this number.
        """
        t0 = time.perf_counter()
        rq.cq.refresh()
        rebuilt = rq.cq.evaluations != rq._last_evaluations
        if rebuilt:
            rq._last_evaluations = rq.cq.evaluations
            rq.state = AnswerState.capture(rq.cq, now)
        self.metrics.refreshes += 1
        self.metrics.refresh_latency.record(time.perf_counter() - t0)
        return rebuilt

    def refresh_round(self, now: int, budget: int | None = None) -> int:
        """Refresh queries for this epoch.

        Queries no relevant update has dirtied since their last read are
        skipped outright (``ContinuousQuery.needs_refresh`` — the
        dependency analysis already filtered irrelevant updates at the
        listener, so a clean query provably has an unchanged answer);
        skips are counted in ``metrics.deps_skipped_refreshes`` and do
        not consume refresh budget.  A clean query that dropped covered
        updates through its temporal-validity gate since the previous
        round is credited to ``metrics.horizon_skipped_refreshes``
        instead (DESIGN.md §11).

        With ``budget=None`` every dirty query refreshes.  Under load
        shedding a bounded number refresh per epoch, round-robin so no
        query starves; the rest keep serving their last answer state,
        whose staleness flags age honestly (degradation ladder,
        DESIGN.md §9).  Returns the number refreshed.
        """
        if budget is None or budget >= len(self._rr):
            refreshed = 0
            for rq in list(self.queries.values()):
                if not rq.cq.needs_refresh:
                    self._count_skip(rq)
                    continue
                self.refresh(rq, now)
                refreshed += 1
            return refreshed
        refreshed = 0
        skipped = 0
        n = len(self._rr)
        for _ in range(n):
            query_id = self._rr[self._rr_pos % n]
            self._rr_pos += 1
            rq = self.queries.get(query_id)
            if rq is None:
                continue
            if not rq.cq.needs_refresh:
                self._count_skip(rq)
                continue
            if refreshed < budget:
                self.refresh(rq, now)
                refreshed += 1
            else:
                skipped += 1
        self.metrics.shed_refreshes += skipped
        return refreshed

    def _count_skip(self, rq: RegisteredQuery) -> None:
        """Attribute one clean-query skip to the gate that earned it."""
        if rq.cq.horizon_skipped > rq._last_horizon_skipped:
            self.metrics.horizon_skipped_refreshes += 1
        else:
            self.metrics.deps_skipped_refreshes += 1
        rq._last_horizon_skipped = rq.cq.horizon_skipped

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Drop the volatile side: cancel every live continuous query.

        The texts and subscriber records (the durable table) survive.
        """
        for rq in self.queries.values():
            rq.cq.cancel()

    def rebuild(self) -> None:
        """Recreate every registered query after a crash-restart.

        Full re-evaluation from the (surviving) database; answer states
        are recaptured so restarted sessions can snapshot clients.
        Queries whose class universe disappeared mid-flight would raise
        here — the registry drops them rather than wedging the restart.
        """
        now = self.db.clock.now
        for query_id, rq in list(self.queries.items()):
            try:
                cq = self._build_cq(rq.text, rq.horizon, rq.method)
            except ReproError:
                del self.queries[query_id]
                self._by_spec.pop((rq.text, rq.horizon, rq.method), None)
                self._rr = [q for q in self._rr if q != query_id]
                continue
            rq.cq = cq
            rq._last_evaluations = cq.evaluations
            rq._last_horizon_skipped = cq.horizon_skipped
            rq.state = AnswerState.capture(cq, now)

    def cached_relations(self) -> int:
        """Total incremental-cache entries across registered queries."""
        return sum(rq.cq.cached_relations for rq in self.queries.values())
