"""Transports binding the server to its reporters and subscribers.

Two implementations share one server:

* :class:`SimTransport` — rides the deterministic, fault-injectable
  :class:`~repro.distributed.network.SimNetwork` of PR 2.  Every chaos
  schedule (drop/delay/duplicate/reorder/crash) the update pipeline is
  tested under applies unchanged to the serving path; the epoch loop
  pumps in-flight messages by ticking the shared simulation clock.
* :class:`TcpTransport` (:mod:`repro.server.tcp`) — real asyncio stream
  sockets speaking the newline-JSON codec of
  :mod:`repro.server.protocol`, used by ``python -m repro.server``.

Both deliver inbound messages to the server through the same dispatch
callback, so the epoch loop is transport-agnostic.
"""

from __future__ import annotations

from typing import Callable

from repro.distributed.network import Message, SimNetwork
from repro.errors import DistributedError

Dispatch = Callable[[str, str, object], None]  # (src, kind, payload)


class Transport:
    """What the epoch loop needs from a transport: outbound sends."""

    #: A crashed server's transport is down: sends fail, inbound drops.
    down = False

    def send(
        self, dst: str, kind: str, payload: object, size: int = 1
    ) -> bool:
        """Attempt delivery to endpoint ``dst``; best-effort boolean."""
        raise NotImplementedError

    def is_connected(self, node_id: str) -> bool:
        """Whether the endpoint is currently reachable (best effort)."""
        return True


class SimTransport(Transport):
    """The server's endpoint on a :class:`SimNetwork`.

    Inbound messages are handed to ``dispatch`` (the server's router)
    unless the server is crashed, in which case they are counted and
    dropped — a crashed process neither receives nor replies, and the
    senders' retry machinery is what recovers.
    """

    def __init__(
        self, network: SimNetwork, server_id: str, dispatch: Dispatch
    ) -> None:
        self.network = network
        self.server_id = server_id
        self._dispatch = dispatch
        #: Messages that arrived while the server was crashed.
        self.dropped_while_down = 0
        self.down = False
        network.register(server_id, self._on_message)

    def _on_message(self, message: Message) -> None:
        if self.down:
            self.dropped_while_down += 1
            return
        self._dispatch(message.src, message.kind, message.payload)

    def send(
        self, dst: str, kind: str, payload: object, size: int = 1
    ) -> bool:
        if self.down:
            return False
        try:
            return self.network.send(
                self.server_id, dst, kind, payload, size=size
            )
        except DistributedError:
            # Unknown destination: the endpoint never registered (or a
            # TCP client of another transport) — not a server fault.
            return False

    def is_connected(self, node_id: str) -> bool:
        try:
            return self.network.is_connected(node_id)
        except DistributedError:
            return False


class ProtocolNode:
    """A lightweight client endpoint on the simulated network.

    Unlike :class:`~repro.distributed.node.MobileNode` it hosts no
    moving object — just per-kind handlers.  Messages without a handler
    are counted and dropped (bounded memory: nothing queues unread).
    """

    def __init__(self, node_id: str, network: SimNetwork) -> None:
        self.node_id = node_id
        self.network = network
        self.unhandled = 0
        self._handlers: dict[str, Callable[[Message], None]] = {}
        network.register(node_id, self._on_message)

    def _on_message(self, message: Message) -> None:
        handler = self._handlers.get(message.kind)
        if handler is None:
            self.unhandled += 1
            return
        handler(message)

    def on_kind(
        self, kind: str, handler: Callable[[Message], None]
    ) -> None:
        """Register the handler for one message kind."""
        self._handlers[kind] = handler

    def send(
        self, dst: str, kind: str, payload: object, size: int = 1
    ) -> bool:
        """Send one message from this endpoint."""
        return self.network.send(self.node_id, dst, kind, payload, size=size)

    @property
    def connected(self) -> bool:
        """Whether this endpoint is currently reachable."""
        return self.network.is_connected(self.node_id)
