"""``python -m repro.server`` — a self-contained quickstart demo.

Starts the continuous-query server on a real TCP socket, connects one
motion reporter and one subscriber over that socket, drives a few dozen
epochs of a small tracked fleet, and prints the subscriber's display as
it evolves plus the server's metrics at the end.

    $ python -m repro.server --epochs 40 --port 0

Everything runs inside one asyncio loop; the same protocol works for
out-of-process endpoints (`repro.server.protocol.encode_line` /
`decode_line` is the whole wire format).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
from typing import Any

from repro.core.database import MostDatabase
from repro.core.objects import ObjectClass
from repro.geometry import Point
from repro.server.epoch import CQServer
from repro.server.protocol import (
    DELTA,
    DELTA_ACK,
    HEARTBEAT,
    INGEST_BATCH,
    SUBSCRIBED,
    DeltaAck,
    DeltaMsg,
    HeartbeatMsg,
    IngestBatch,
    SubscribeMsg,
    SubscribedMsg,
    WireTuple,
    decode_line,
    encode_line,
)
from repro.server.protocol import SUBSCRIBE as SUBSCRIBE_KIND
from repro.server.tcp import TcpTransport
from repro.distributed.updates import MotionUpdate

QUERY = "RETRIEVE v FROM trackers v, beacons b WHERE DIST(v, b) <= 60"


async def _reporter(host: str, port: int, db_epochs: int, seed: int) -> None:
    """Feed seeded integer-grid motion over the socket, one small batch
    per epoch-ish interval."""
    rng = random.Random(seed)
    reader, writer = await asyncio.open_connection(host, port)
    seqs = {f"tracker-{i}": 0 for i in range(3)}
    batch_seq = 0
    for epoch in range(db_epochs):
        updates = []
        for object_id in seqs:
            if rng.random() < 0.3:
                updates.append(
                    MotionUpdate(
                        object_id=object_id,
                        seq=seqs[object_id],
                        measured_at=epoch,
                        position=Point(
                            float(rng.randint(-50, 50)),
                            float(rng.randint(-50, 50)),
                        ),
                        velocity=Point(
                            float(rng.randint(-3, 3)),
                            float(rng.randint(-3, 3)),
                        ),
                    )
                )
                seqs[object_id] += 1
        if updates:
            writer.write(
                encode_line(
                    INGEST_BATCH,
                    IngestBatch("demo-reporter", batch_seq, tuple(updates)),
                )
            )
            batch_seq += 1
            await writer.drain()
        await asyncio.sleep(0.01)
    writer.close()


async def _subscriber(host: str, port: int, stop: asyncio.Event) -> None:
    """A minimal display client: subscribe, apply deltas, ack, print."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        encode_line(
            SUBSCRIBE_KIND,
            SubscribeMsg(
                client_id="demo-sub", text=QUERY, horizon=200,
                staleness_bound=10.0,
            ),
        )
    )
    await writer.drain()
    query_id, incarnation, last_seq = "", 0, 0
    display: dict[tuple[Any, ...], WireTuple] = {}
    shown: set[str] = set()
    while not stop.is_set():
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=0.5)
        except asyncio.TimeoutError:
            continue
        if not line:
            break
        kind, payload = decode_line(line)
        if kind == SUBSCRIBED:
            assert isinstance(payload, SubscribedMsg)
            query_id = payload.query_id
            incarnation = payload.incarnation
            if payload.error:
                print("subscription refused:", payload.error)
                return
            continue
        if kind != DELTA:
            continue
        assert isinstance(payload, DeltaMsg)
        msg = payload
        if msg.snapshot:
            display = {t.key(): t for t in msg.adds}
            incarnation, last_seq = msg.incarnation, msg.seq
        elif msg.incarnation == incarnation and msg.seq == last_seq + 1:
            for t in msg.retracts:
                display.pop(t.key(), None)
            for t in msg.adds:
                display[t.key()] = t
            last_seq = msg.seq
        else:
            continue  # the demo skips gap recovery; see SubscriberClient
        writer.write(
            encode_line(
                DELTA_ACK,
                DeltaAck("demo-sub", query_id, incarnation, last_seq),
            )
        )
        writer.write(
            encode_line(HEARTBEAT, HeartbeatMsg("demo-sub", last_seq))
        )
        await writer.drain()
        now_shown = {t.values[0] for t in display.values()}
        if now_shown != shown:
            shown = now_shown
            print(f"display -> {sorted(shown)}")
    writer.close()


async def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server", description=__doc__
    )
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    db = MostDatabase()
    db.create_class(ObjectClass("trackers", spatial_dimensions=2))
    db.create_class(ObjectClass("beacons", spatial_dimensions=2))
    db.add_moving_object("beacons", "beacon", Point(0.0, 0.0))
    rng = random.Random(args.seed)
    for i in range(3):
        db.add_moving_object(
            "trackers",
            f"tracker-{i}",
            Point(float(rng.randint(-50, 50)), float(rng.randint(-50, 50))),
            Point(float(rng.randint(-3, 3)), float(rng.randint(-3, 3))),
        )
        db.track(f"tracker-{i}")

    server = CQServer(db)
    transport = TcpTransport(server, port=args.port)
    await transport.start()
    print(f"continuous-query server on 127.0.0.1:{transport.port}")

    stop = asyncio.Event()
    tasks = [
        asyncio.create_task(
            _reporter("127.0.0.1", transport.port, args.epochs, args.seed)
        ),
        asyncio.create_task(
            _subscriber("127.0.0.1", transport.port, stop)
        ),
    ]
    await server.serve(epochs=args.epochs, interval=0.02)
    stop.set()
    await asyncio.gather(*tasks, return_exceptions=True)
    await transport.stop()
    print(json.dumps(server.metrics.to_dict(), indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(asyncio.run(main()))
