"""Differential soak harness for the continuous-query server.

One seeded world — trackers reporting motion through batching reporters,
display clients subscribed under all three §5.2 transmission policies —
is driven twice through the *identical* update schedule:

* the **faulty** run injects a :class:`~repro.distributed.FaultPlan`
  (drop / delay / duplicate / reorder, a tracker crash window), forces a
  client disconnection window, and crash-restarts the server itself
  mid-run; faults heal at ``run_epochs`` and the run drains until
  quiescent;
* the **clean** twin uses a zero-fault plan (same asynchronous delivery
  semantics) with no crashes or disconnections, driven to the same
  final tick.

Checked properties (the PR's acceptance criteria):

1. **Convergence** — after drain, every client's display is
   tuple-for-tuple identical to its clean twin's, and the clean
   unwindowed immediate client matches the server's own answer, both
   clipped to the common comparison window ``[final, final + K]``
   (clipping cancels the runs' differing refresh/registration ticks,
   which shift interval *bounds* but not answers).
2. **Bounded staleness** — at every faulty-run epoch, no client ever
   displays an *unflagged* tuple whose supporting objects are staler
   than its ``staleness_bound`` on the server (the conservative
   client-side aging rule makes flagging early, never late).

Positions and velocities are drawn on an integer grid so a late update
extrapolated to its apply tick reconstructs the trajectory exactly,
making tuple-for-tuple convergence a fair assertion (see
:mod:`repro.workloads.chaos`).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.database import MostDatabase
from repro.core.objects import ObjectClass
from repro.distributed.network import FaultPlan, LinkFaults, SimNetwork
from repro.distributed.node import MobileNode
from repro.errors import SchemaError
from repro.geometry import Point
from repro.motion import linear_moving_point
from repro.server.client import BatchingReporter, SubscriberClient
from repro.server.epoch import CQServer
from repro.temporal import SimulationClock

QUERY = "RETRIEVE v FROM trackers v, beacons b WHERE DIST(v, b) <= {r}"

#: Width of the convergence comparison window past the final tick.
COMPARE_WINDOW = 10


@dataclass(frozen=True)
class SoakConfig:
    """One soak experiment: world size, fault mix, chaos timeline."""

    seed: int = 0
    n_trackers: int = 4
    n_subscribers: int = 3
    radius: float = 60.0
    horizon: int = 400
    run_epochs: int = 40
    max_drain: int = 120
    #: Consecutive quiescent epochs required before the drain ends
    #: (covers periodic-policy cadence and retransmission backoff caps).
    settle: int = 12
    drop: float = 0.25
    delay: tuple[int, int] = (0, 3)
    duplicate: float = 0.1
    reorder: float = 0.2
    #: Crash one tracker node for a seeded window.
    tracker_crash: bool = True
    #: Crash-restart the epoch loop itself at these epochs.
    server_crash_at: int | None = 14
    server_restart_at: int | None = 18
    #: Force-disconnect one subscriber over this closed window.
    client_disconnect: tuple[int, int] | None = (22, 27)
    staleness_bound: float = 6.0
    inbox_capacity: int = 256
    batch_limit: int = 128
    window: int = 64
    period: int = 3


#: Subscriber profiles cycled across ``n_subscribers``: (policy, period,
#: windowed?).  The first is the unwindowed immediate client the
#: truth-comparison uses.
_PROFILES = (
    ("immediate", 1, False),
    ("delayed", 1, True),
    ("periodic", None, True),
)


@dataclass
class ClientOutcome:
    """Per-client soak outcome."""

    client_id: str
    policy: str
    converged: bool
    display: frozenset[tuple[Any, ...]]
    deltas: int
    snapshots: int
    duplicates: int
    gaps: int
    resumes_sent: int


@dataclass
class SoakResult:
    """Outcome of one differential soak."""

    config: SoakConfig
    final_tick: int
    drained: bool
    clean_drained: bool
    #: Unflagged-but-stale display observations across the faulty run.
    staleness_violations: int
    #: Clean immediate client vs the server's own answer.
    truth_match: bool
    clients: list[ClientOutcome] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    clean_metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def converged(self) -> bool:
        return all(c.converged for c in self.clients)

    @property
    def ok(self) -> bool:
        """Drained, converged, truth-matched, and never displayed
        unflagged data beyond the staleness bound."""
        return (
            self.drained
            and self.clean_drained
            and self.converged
            and self.truth_match
            and self.staleness_violations == 0
        )

    def summary(self) -> str:
        """One line for logs and assertion messages."""
        per_client = " ".join(
            f"{c.client_id}:{'ok' if c.converged else 'DIVERGED'}"
            for c in self.clients
        )
        return (
            f"seed={self.config.seed} ok={self.ok} drained={self.drained}/"
            f"{self.clean_drained} truth={self.truth_match} "
            f"violations={self.staleness_violations} [{per_client}]"
        )


def fault_plan(config: SoakConfig) -> FaultPlan:
    """The seeded fault plan of the faulty run (heals at ``run_epochs``)."""
    rng = random.Random(config.seed * 7919 + 11)
    crashes: dict[str, list[tuple[float, float]]] = {}
    if config.tracker_crash and config.n_trackers > 0:
        victim = rng.randrange(config.n_trackers)
        start = rng.randint(2, max(2, config.run_epochs // 3))
        end = start + rng.randint(2, max(2, config.run_epochs // 4))
        crashes[f"tracker-{victim}"] = [(start, min(end, config.run_epochs - 1))]
    return FaultPlan(
        seed=config.seed,
        default=LinkFaults(
            drop=config.drop,
            duplicate=config.duplicate,
            delay=config.delay,
            reorder=config.reorder,
        ),
        crashes=crashes,
        heal_at=config.run_epochs,
    )


def clean_plan(config: SoakConfig) -> FaultPlan:
    """The zero-fault twin: asynchronous delivery, nothing injected."""
    return FaultPlan(seed=config.seed)


def update_schedule(config: SoakConfig) -> list[tuple[int, int, Point]]:
    """Seeded ``(epoch, tracker index, velocity)`` motion changes on the
    exactness-preserving integer grid."""
    rng = random.Random(config.seed * 104729 + 12)
    out: list[tuple[int, int, Point]] = []
    for tick in range(1, config.run_epochs):
        for idx in range(config.n_trackers):
            if rng.random() < 0.25:
                out.append(
                    (
                        tick,
                        idx,
                        Point(
                            float(rng.randint(-3, 3)),
                            float(rng.randint(-3, 3)),
                        ),
                    )
                )
    return out


@dataclass
class _World:
    clock: SimulationClock
    db: MostDatabase
    network: SimNetwork
    server: CQServer
    reporters: list[BatchingReporter]
    clients: list[SubscriberClient]
    violations: int = 0


def _build(config: SoakConfig, plan: FaultPlan) -> _World:
    rng = random.Random(config.seed * 15485863 + 13)
    clock = SimulationClock()
    db = MostDatabase(clock)
    network = SimNetwork(clock, faults=plan)
    db.create_class(ObjectClass("trackers", spatial_dimensions=2))
    db.create_class(ObjectClass("beacons", spatial_dimensions=2))
    # The beacon is server-local (untracked): it never goes stale.
    db.add_moving_object("beacons", "beacon", Point(0.0, 0.0))
    server = CQServer(
        db,
        network,
        inbox_capacity=config.inbox_capacity,
        batch_limit=config.batch_limit,
        seed=config.seed,
    )
    reporters: list[BatchingReporter] = []
    for i in range(config.n_trackers):
        object_id = f"tracker-{i}"
        position = Point(
            float(rng.randint(-50, 50)), float(rng.randint(-50, 50))
        )
        velocity = Point(
            float(rng.randint(-3, 3)), float(rng.randint(-3, 3))
        )
        db.add_moving_object("trackers", object_id, position, velocity)
        db.track(object_id)
        node = MobileNode(
            object_id, network, linear_moving_point(position, velocity)
        )
        reporters.append(BatchingReporter(node, object_id=object_id))
    clients: list[SubscriberClient] = []
    text = QUERY.format(r=config.radius)
    for i in range(config.n_subscribers):
        policy, period, windowed = _PROFILES[i % len(_PROFILES)]
        clients.append(
            SubscriberClient(
                network,
                f"sub-{i}",
                text,
                horizon=config.horizon,
                policy=policy,
                period=period if period is not None else config.period,
                window=config.window if windowed else None,
                staleness_bound=config.staleness_bound,
            )
        )
    return _World(clock, db, network, server, reporters, clients)


def _staleness(db: MostDatabase, object_id: object) -> float:
    try:
        return db.staleness(object_id)
    except SchemaError:
        return float("inf")


def _check_epoch(world: _World, config: SoakConfig) -> None:
    """No client displays an unflagged tuple staler than its bound."""
    now = world.clock.now
    for client in world.clients:
        bound = client.staleness_bound
        if bound is None:
            continue
        for key, (tup, _) in client.display.items():
            if not tup.active_at(now) or client.flagged(key, now):
                continue
            if any(_staleness(world.db, v) > bound for v in tup.support):
                world.violations += 1


def _meaningful_in_flight(world: _World) -> int:
    """In-flight messages that still carry recovery state.

    Heartbeats (and the window refreshes they carry) are perpetual
    background traffic — a live client never stops sending them, so
    quiescence must not wait for an empty wire.
    """
    from repro.server.protocol import HEARTBEAT

    return sum(
        1
        for entry in world.network._queue
        if entry.message.kind != HEARTBEAT
    )


def _quiescent(world: _World) -> bool:
    return (
        _meaningful_in_flight(world) == 0
        and world.server.drained()
        and all(r.drained() for r in world.reporters)
        and all(c.subscribed for c in world.clients)
    )


async def _drive(
    world: _World,
    config: SoakConfig,
    schedule: list[tuple[int, int, Point]],
    chaos: bool,
    until: int | None,
) -> tuple[int, bool]:
    """Drive the world one epoch at a time; ``(final tick, drained)``.

    With ``until=None`` the run lasts ``run_epochs`` plus drain (capped
    at ``max_drain``), requiring ``settle`` consecutive quiescent epochs
    so periodic policies and capped backoffs get their turn; with a tick
    given, the clean twin mirrors the faulty run's exact length.
    """
    by_tick: dict[int, list[tuple[int, Point]]] = {}
    for tick, idx, velocity in schedule:
        by_tick.setdefault(tick, []).append((idx, velocity))
    end = until if until is not None else config.run_epochs + config.max_drain
    quiet = 0
    while world.clock.now < end:
        now = world.clock.now
        for idx, velocity in by_tick.get(now, ()):
            world.reporters[idx].report(velocity)
        if chaos:
            if config.server_crash_at is not None and now == config.server_crash_at:
                world.server.crash()
            if (
                config.server_restart_at is not None
                and now == config.server_restart_at
            ):
                world.server.restart()
        await world.server.run_epoch()
        if chaos:
            _check_epoch(world, config)
        if until is None and world.clock.now >= config.run_epochs:
            quiet = quiet + 1 if _quiescent(world) else 0
            if quiet >= config.settle:
                break
    return world.clock.now, _quiescent(world)


def _clip(
    tuples: Iterable[tuple[Any, float, float]], lo: float, hi: float
) -> frozenset[tuple[Any, float, float]]:
    """``(values, begin, end)`` triples clipped to the comparison window."""
    out: set[tuple[Any, float, float]] = set()
    for values, begin, end in tuples:
        b, e = max(begin, lo), min(end, hi)
        if b <= e:
            out.add((values, b, e))
    return frozenset(out)


def _client_tuples(client: SubscriberClient) -> list[tuple[Any, float, float]]:
    return [
        (tup.values, tup.begin, tup.end) for tup, _ in client.display.values()
    ]


def _server_tuples(world: _World) -> list[tuple[Any, float, float]]:
    """The server's own converged answer (degraded tuples included —
    after drain nothing is stale, so the flag distinction is moot)."""
    out: list[tuple[Any, float, float]] = []
    for rq in world.server.registry.queries.values():
        for s in rq.cq.stamped_tuples():
            out.append((s.values, s.begin, s.end))
    return out


async def _run(config: SoakConfig) -> SoakResult:
    schedule = update_schedule(config)

    faulty = _build(config, fault_plan(config))
    if config.client_disconnect is not None and faulty.clients:
        faulty.network.set_disconnections(
            faulty.clients[0].client_id, [config.client_disconnect]
        )
    final_tick, drained = await _drive(
        faulty, config, schedule, chaos=True, until=None
    )

    clean = _build(config, clean_plan(config))
    _, clean_drained = await _drive(
        clean, config, schedule, chaos=False, until=final_tick
    )

    lo, hi = float(final_tick), float(final_tick + COMPARE_WINDOW)
    clients: list[ClientOutcome] = []
    for fc, cc in zip(faulty.clients, clean.clients):
        f_disp = _clip(_client_tuples(fc), lo, hi)
        c_disp = _clip(_client_tuples(cc), lo, hi)
        clients.append(
            ClientOutcome(
                client_id=fc.client_id,
                policy=fc.policy,
                converged=f_disp == c_disp,
                display=f_disp,
                deltas=fc.deltas_received,
                snapshots=fc.snapshots_received,
                duplicates=fc.duplicates,
                gaps=fc.gaps,
                resumes_sent=fc.resumes_sent,
            )
        )
    truth = _clip(_server_tuples(clean), lo, hi)
    truth_match = bool(clean.clients) and (
        _clip(_client_tuples(clean.clients[0]), lo, hi) == truth
    )
    return SoakResult(
        config=config,
        final_tick=final_tick,
        drained=drained,
        clean_drained=clean_drained,
        staleness_violations=faulty.violations,
        truth_match=truth_match,
        clients=clients,
        metrics=faulty.server.metrics.to_dict(),
        clean_metrics=clean.server.metrics.to_dict(),
    )


def run_soak(config: SoakConfig | None = None) -> SoakResult:
    """One differential soak experiment (synchronous entry point)."""
    return asyncio.run(_run(config if config is not None else SoakConfig()))


def soak_sweep(seeds: Iterable[int], **overrides: Any) -> list[SoakResult]:
    """One soak per seed, varying the fault mix with the seed."""
    results: list[SoakResult] = []
    for seed in seeds:
        rng = random.Random(seed * 31337 + 14)
        config = SoakConfig(
            seed=seed,
            drop=rng.choice([0.1, 0.2, 0.3, 0.4]),
            delay=(0, rng.randint(0, 4)),
            duplicate=rng.choice([0.0, 0.1, 0.2]),
            reorder=rng.choice([0.0, 0.2, 0.4]),
            tracker_crash=rng.random() < 0.6,
            **overrides,  # type: ignore[arg-type]
        )
        results.append(run_soak(config))
    return results
