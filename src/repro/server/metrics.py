"""Counters and latency percentiles for the continuous-query server.

Everything the soak harness asserts on and the E14 bench reports comes
through here: ingest throughput, backpressure engagements, fan-out
volume, degradation-ladder residency, and per-epoch / per-refresh
latency distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

# Degradation-ladder levels (DESIGN.md §9).
NORMAL = "normal"
BACKPRESSURE = "backpressure"
SHEDDING = "shedding"


class LatencyWindow:
    """A bounded sample window with percentile readout.

    Keeps the most recent ``cap`` samples (enough for a p99 over a soak
    or bench run without unbounded growth — this is a robustness PR).
    """

    def __init__(self, cap: int = 8192) -> None:
        self.cap = cap
        self._samples: list[float] = []
        self.count = 0
        self.total = 0.0

    def record(self, value: float) -> None:
        """Add one sample (seconds)."""
        self.count += 1
        self.total += value
        self._samples.append(value)
        if len(self._samples) > self.cap:
            del self._samples[: len(self._samples) - self.cap]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the retained window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(
            0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1)))
        )
        return ordered[rank]

    @property
    def mean(self) -> float:
        """Mean over *all* recorded samples (not just the window)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """p50/p95/p99/mean/count as a JSON-ready dict."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


@dataclass
class ServerMetrics:
    """Aggregate counters of one server lifetime (crashes included)."""

    epochs: int = 0
    #: Updates accepted into the epoch inbox.
    updates_enqueued: int = 0
    #: Updates applied to the database (idempotent-ingest accepted).
    updates_applied: int = 0
    #: Updates the database refused as stale/duplicate.
    updates_rejected: int = 0
    #: Batches refused with an explicit busy/back-off signal.
    busy_signals: int = 0
    #: Single legacy updates refused with a busy signal.
    busy_singles: int = 0
    #: High-water mark of the epoch inbox depth.
    inbox_high_water: int = 0
    #: Epochs spent at each degradation-ladder level.
    epochs_at_level: dict[str, int] = field(
        default_factory=lambda: {NORMAL: 0, BACKPRESSURE: 0, SHEDDING: 0}
    )
    #: Query refreshes actually executed / skipped by shedding.
    refreshes: int = 0
    shed_refreshes: int = 0
    #: Refreshes skipped because no relevant update dirtied the query
    #: since its last read (static update-impact analysis, DESIGN.md §10).
    deps_skipped_refreshes: int = 0
    #: Refreshes skipped because every covered update's consequences
    #: provably lie beyond the query's validity horizon (DESIGN.md §11).
    horizon_skipped_refreshes: int = 0
    #: Delta messages (and tuples) fanned out to subscribers.
    deltas_sent: int = 0
    tuples_sent: int = 0
    retract_tuples_sent: int = 0
    snapshots_sent: int = 0
    #: Delta retransmissions after an ack timeout.
    delta_retransmissions: int = 0
    #: Client lifecycle events.
    subscriptions: int = 0
    resumes: int = 0
    disconnects: int = 0
    reconnects: int = 0
    #: Server crash/restart cycles.
    crashes: int = 0
    restarts: int = 0
    refresh_latency: LatencyWindow = field(default_factory=LatencyWindow)
    epoch_latency: LatencyWindow = field(default_factory=LatencyWindow)

    def observe_inbox(self, depth: int) -> None:
        """Track the inbox high-water mark."""
        if depth > self.inbox_high_water:
            self.inbox_high_water = depth

    def to_dict(self) -> dict[str, Any]:
        """Everything, JSON-ready (the bench artifact embeds this)."""
        return {
            "epochs": self.epochs,
            "updates_enqueued": self.updates_enqueued,
            "updates_applied": self.updates_applied,
            "updates_rejected": self.updates_rejected,
            "busy_signals": self.busy_signals,
            "busy_singles": self.busy_singles,
            "inbox_high_water": self.inbox_high_water,
            "epochs_at_level": dict(self.epochs_at_level),
            "refreshes": self.refreshes,
            "shed_refreshes": self.shed_refreshes,
            "deps_skipped_refreshes": self.deps_skipped_refreshes,
            "horizon_skipped_refreshes": self.horizon_skipped_refreshes,
            "deltas_sent": self.deltas_sent,
            "tuples_sent": self.tuples_sent,
            "retract_tuples_sent": self.retract_tuples_sent,
            "snapshots_sent": self.snapshots_sent,
            "delta_retransmissions": self.delta_retransmissions,
            "subscriptions": self.subscriptions,
            "resumes": self.resumes,
            "disconnects": self.disconnects,
            "reconnects": self.reconnects,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "refresh_latency": self.refresh_latency.summary(),
            "epoch_latency": self.epoch_latency.summary(),
        }
