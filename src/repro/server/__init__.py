"""The always-on continuous-query server (DESIGN.md §9).

An asyncio epoch loop that ingests batched motion updates with explicit
backpressure, maintains registered continuous queries incrementally, and
fans out sequence-numbered answer deltas to subscribers through the
§5.2 transmission policies — robust to message loss, client
disconnection, and crash-restart of the epoch loop itself.
"""

from repro.server.client import BatchingReporter, SubscriberClient
from repro.server.epoch import CQServer
from repro.server.metrics import (
    BACKPRESSURE,
    NORMAL,
    SHEDDING,
    LatencyWindow,
    ServerMetrics,
)
from repro.server.protocol import (
    DeltaAck,
    DeltaMsg,
    HeartbeatMsg,
    IngestAck,
    IngestBatch,
    IngestBusy,
    ResumeMsg,
    SubscribedMsg,
    SubscribeMsg,
    WireTuple,
    decode_line,
    encode_line,
)
from repro.server.registry import (
    AnswerState,
    RegisteredQuery,
    SubscriberRecord,
    SubscriptionRegistry,
)
from repro.server.session import ClientSession, make_policy
from repro.server.soak import (
    SoakConfig,
    SoakResult,
    run_soak,
    soak_sweep,
)
from repro.server.transport import ProtocolNode, SimTransport, Transport

__all__ = [
    "BACKPRESSURE",
    "NORMAL",
    "SHEDDING",
    "AnswerState",
    "BatchingReporter",
    "CQServer",
    "ClientSession",
    "DeltaAck",
    "DeltaMsg",
    "HeartbeatMsg",
    "IngestAck",
    "IngestBatch",
    "IngestBusy",
    "LatencyWindow",
    "ProtocolNode",
    "RegisteredQuery",
    "ResumeMsg",
    "ServerMetrics",
    "SimTransport",
    "SoakConfig",
    "SoakResult",
    "SubscribeMsg",
    "SubscribedMsg",
    "SubscriberClient",
    "SubscriberRecord",
    "SubscriptionRegistry",
    "Transport",
    "WireTuple",
    "decode_line",
    "encode_line",
    "make_policy",
    "run_soak",
    "soak_sweep",
]
