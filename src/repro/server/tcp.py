"""Real-socket transport: the epoch loop over asyncio streams.

Endpoints connect over TCP and speak the newline-delimited JSON codec of
:mod:`repro.server.protocol`.  The transport learns each endpoint's id
from its first message (``client_id`` / ``reporter_id`` / ``object_id``)
and routes the server's outbound sends back down the matching stream; a
vanished stream makes ``send`` return ``False``, which to the epoch loop
looks exactly like a lossy SimNetwork link — all recovery (retries,
resumes, snapshots) is protocol-level and transport-agnostic.

``python -m repro.server`` (:mod:`repro.server.__main__`) runs a
self-contained demo over this transport.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from repro.distributed.updates import UPDATE_KIND, MotionUpdate
from repro.errors import DistributedError
from repro.server.protocol import (
    DELTA_ACK,
    HEARTBEAT,
    INGEST_BATCH,
    RESUME,
    SUBSCRIBE,
    IngestBatch,
    decode_line,
    encode_line,
)
from repro.server.transport import Transport

if TYPE_CHECKING:
    from repro.server.epoch import CQServer


def source_of(kind: str, payload: object) -> str | None:
    """The sender's endpoint id, as carried inside the message itself."""
    if kind == INGEST_BATCH and isinstance(payload, IngestBatch):
        return payload.reporter_id
    if kind == UPDATE_KIND and isinstance(payload, MotionUpdate):
        return str(payload.object_id)
    if kind in (SUBSCRIBE, DELTA_ACK, RESUME, HEARTBEAT):
        client_id = getattr(payload, "client_id", None)
        return client_id if isinstance(client_id, str) else None
    return None


class TcpTransport(Transport):
    """Newline-JSON stream endpoints for a :class:`CQServer`.

    Attach with ``server.transport = TcpTransport(server)`` then
    ``await transport.start()``; run the epoch loop with
    ``await server.serve(interval=...)`` concurrently.
    """

    def __init__(
        self, server: "CQServer", host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._writers: dict[str, asyncio.StreamWriter] = {}
        self._tcp_server: asyncio.Server | None = None
        #: Lines that failed to decode (malformed input never crashes
        #: the loop; the offending connection is dropped).
        self.bad_lines = 0
        server.transport = self

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._tcp_server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._tcp_server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener and every live stream."""
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        ids: set[str] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    ConnectionError,
                    asyncio.IncompleteReadError,
                    asyncio.CancelledError,
                ):
                    break
                if not line:
                    break
                try:
                    kind, payload = decode_line(line)
                except DistributedError:
                    self.bad_lines += 1
                    break
                src = source_of(kind, payload)
                if src is not None:
                    ids.add(src)
                    self._writers[src] = writer
                if not self.down:
                    self.server._dispatch(src or "?", kind, payload)
        finally:
            for src in ids:
                if self._writers.get(src) is writer:
                    del self._writers[src]
            writer.close()

    def send(
        self, dst: str, kind: str, payload: object, size: int = 1
    ) -> bool:
        if self.down:
            return False
        writer = self._writers.get(dst)
        if writer is None or writer.is_closing():
            return False
        try:
            writer.write(encode_line(kind, payload))
        except (ConnectionError, RuntimeError):
            return False
        return True

    def is_connected(self, node_id: str) -> bool:
        writer = self._writers.get(node_id)
        return writer is not None and not writer.is_closing()
