"""Wire protocol of the continuous-query server.

Message payloads are frozen dataclasses; over the in-process
:class:`~repro.distributed.network.SimNetwork` transport they travel as
objects, over TCP as newline-delimited JSON (:func:`encode_line` /
:func:`decode_line`).

Identity vs annotation: a :class:`WireTuple` is identified by its
``(values, begin, end, support)`` — ``max_age`` is a staleness
*annotation* as of the answer's refresh tick and is excluded from
equality/hashing, so a tuple whose age changed but whose answer did not
never churns the delta stream.  Clients age delivered tuples locally
(``max_age + (now - aged_from)``), which over-approximates the true
staleness — a tuple is flagged degraded no later than it actually
exceeds the bound, so a client never *displays unflagged* data older
than its ``staleness_bound`` regardless of in-flight delays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.distributed.updates import MotionUpdate
from repro.errors import DistributedError
from repro.geometry import Point

#: Conventional node id of the continuous-query server.
SERVER_ID = "cq-server"

# Message kinds (SimNetwork ``kind`` strings / JSON ``"kind"`` field).
INGEST_BATCH = "cq-ingest"
INGEST_ACK = "cq-ingest-ack"
INGEST_BUSY = "cq-ingest-busy"
SUBSCRIBE = "cq-subscribe"
SUBSCRIBED = "cq-subscribed"
DELTA = "cq-delta"
DELTA_ACK = "cq-delta-ack"
RESUME = "cq-resume"
HEARTBEAT = "cq-heartbeat"

#: Relative message sizes for the network cost accounting.
TUPLE_SIZE = 4
UPDATE_SIZE = 6
CONTROL_SIZE = 1


@dataclass(frozen=True)
class WireTuple:
    """One ``Answer(CQ)`` tuple as it travels to a subscriber.

    ``support`` is the full (unprojected) instantiation the tuple's
    intervals were computed from — what staleness accounting reads.
    ``max_age`` is the age of the oldest supporting object *as of*
    the answer refresh that produced this tuple.
    """

    values: tuple[Any, ...]
    begin: float
    end: float
    support: tuple[Any, ...]
    max_age: float = field(default=0.0, compare=False)

    def active_at(self, t: float) -> bool:
        """Whether this tuple is displayed at clock tick ``t``."""
        return self.begin <= t <= self.end

    def key(self) -> tuple[Any, ...]:
        """The identity the delta stream deduplicates on."""
        return (self.values, self.begin, self.end, self.support)


@dataclass(frozen=True)
class IngestBatch:
    """A batch of motion updates from one reporter (one message)."""

    reporter_id: str
    batch_seq: int
    updates: tuple[MotionUpdate, ...]


@dataclass(frozen=True)
class IngestAck:
    """Per-batch acknowledgement: per-object cumulative applied seqs plus
    the reporter's refreshed ingest-credit allowance."""

    batch_seq: int
    acked: tuple[tuple[object, int], ...]
    credits: int


@dataclass(frozen=True)
class IngestBusy:
    """Explicit backpressure: the epoch inbox cannot take the batch.

    The reporter must hold the batch and come back after
    ``retry_after`` epochs (with its own jitter) — nothing was enqueued
    and nothing will be acked.
    """

    batch_seq: int
    retry_after: int


@dataclass(frozen=True)
class SubscribeMsg:
    """Register (or re-attach to) a continuous query subscription."""

    client_id: str
    text: str
    horizon: int
    method: str = "incremental"
    policy: str = "immediate"  # immediate | delayed | periodic
    period: int = 1
    window: int | None = None
    staleness_bound: float | None = None
    #: Highest contiguous delta seq the client already holds (reconnect
    #: with a resumable cursor); -1 means a fresh subscription.
    have_seq: int = -1
    incarnation: int = 0


@dataclass(frozen=True)
class SubscribedMsg:
    """Subscription confirmed (or refused with ``error``)."""

    client_id: str
    query_id: str
    incarnation: int
    error: str | None = None


@dataclass(frozen=True)
class DeltaMsg:
    """One sequence-numbered answer delta (or full snapshot).

    ``aged_from`` is the refresh tick the contained ``max_age``
    annotations are relative to; the client ages tuples from there.
    With ``snapshot=True`` the client replaces its whole display with
    ``adds`` and resets its cursor to ``seq`` (crash-restart resync and
    replay-miss recovery).
    """

    query_id: str
    incarnation: int
    seq: int
    aged_from: int
    adds: tuple[WireTuple, ...]
    retracts: tuple[WireTuple, ...]
    snapshot: bool = False


@dataclass(frozen=True)
class DeltaAck:
    """Cumulative client ack for deltas through ``seq``; carries the
    client's current free display slots (its send window)."""

    client_id: str
    query_id: str
    incarnation: int
    seq: int
    free_slots: int | None = None


@dataclass(frozen=True)
class ResumeMsg:
    """Client detected a gap (or reconnected): replay after ``have_seq``."""

    client_id: str
    query_id: str
    incarnation: int
    have_seq: int


@dataclass(frozen=True)
class HeartbeatMsg:
    """Client liveness beacon; doubles as the send-window refresh."""

    client_id: str
    sent_at: int
    free_slots: int | None = None


# ----------------------------------------------------------------------
# JSON codec (TCP transport).  Object ids and values are stringified —
# the socket path serves display clients, not the differential harness.
# ----------------------------------------------------------------------

def _point_to_list(p: Point) -> list[float]:
    return list(p.coords)


def _tuple_to_obj(t: WireTuple) -> dict[str, Any]:
    return {
        "values": [str(v) for v in t.values],
        "begin": t.begin,
        "end": t.end,
        "support": [str(v) for v in t.support],
        "max_age": t.max_age,
    }


def _tuple_from_obj(o: dict[str, Any]) -> WireTuple:
    return WireTuple(
        values=tuple(o["values"]),
        begin=float(o["begin"]),
        end=float(o["end"]),
        support=tuple(o["support"]),
        max_age=float(o.get("max_age", 0.0)),
    )


def _update_to_obj(u: MotionUpdate) -> dict[str, Any]:
    return {
        "object_id": str(u.object_id),
        "seq": u.seq,
        "measured_at": u.measured_at,
        "position": _point_to_list(u.position),
        "velocity": _point_to_list(u.velocity),
    }


def _update_from_obj(o: dict[str, Any]) -> MotionUpdate:
    return MotionUpdate(
        object_id=o["object_id"],
        seq=int(o["seq"]),
        measured_at=int(o["measured_at"]),
        position=Point(*(float(c) for c in o["position"])),
        velocity=Point(*(float(c) for c in o["velocity"])),
    )


def to_wire(kind: str, payload: object) -> dict[str, Any]:
    """Flatten one (kind, payload) pair into a JSON-ready dict."""
    obj: dict[str, Any] = {"kind": kind}
    if kind == INGEST_BATCH:
        assert isinstance(payload, IngestBatch)
        obj.update(
            reporter_id=payload.reporter_id,
            batch_seq=payload.batch_seq,
            updates=[_update_to_obj(u) for u in payload.updates],
        )
    elif kind == INGEST_ACK:
        assert isinstance(payload, IngestAck)
        obj.update(
            batch_seq=payload.batch_seq,
            acked=[[str(o), s] for o, s in payload.acked],
            credits=payload.credits,
        )
    elif kind == INGEST_BUSY:
        assert isinstance(payload, IngestBusy)
        obj.update(
            batch_seq=payload.batch_seq, retry_after=payload.retry_after
        )
    elif kind == SUBSCRIBE:
        assert isinstance(payload, SubscribeMsg)
        obj.update(
            client_id=payload.client_id,
            text=payload.text,
            horizon=payload.horizon,
            method=payload.method,
            policy=payload.policy,
            period=payload.period,
            window=payload.window,
            staleness_bound=payload.staleness_bound,
            have_seq=payload.have_seq,
            incarnation=payload.incarnation,
        )
    elif kind == SUBSCRIBED:
        assert isinstance(payload, SubscribedMsg)
        obj.update(
            client_id=payload.client_id,
            query_id=payload.query_id,
            incarnation=payload.incarnation,
            error=payload.error,
        )
    elif kind == DELTA:
        assert isinstance(payload, DeltaMsg)
        obj.update(
            query_id=payload.query_id,
            incarnation=payload.incarnation,
            seq=payload.seq,
            aged_from=payload.aged_from,
            adds=[_tuple_to_obj(t) for t in payload.adds],
            retracts=[_tuple_to_obj(t) for t in payload.retracts],
            snapshot=payload.snapshot,
        )
    elif kind == DELTA_ACK:
        assert isinstance(payload, DeltaAck)
        obj.update(
            client_id=payload.client_id,
            query_id=payload.query_id,
            incarnation=payload.incarnation,
            seq=payload.seq,
            free_slots=payload.free_slots,
        )
    elif kind == RESUME:
        assert isinstance(payload, ResumeMsg)
        obj.update(
            client_id=payload.client_id,
            query_id=payload.query_id,
            incarnation=payload.incarnation,
            have_seq=payload.have_seq,
        )
    elif kind == HEARTBEAT:
        assert isinstance(payload, HeartbeatMsg)
        obj.update(
            client_id=payload.client_id,
            sent_at=payload.sent_at,
            free_slots=payload.free_slots,
        )
    else:
        raise DistributedError(f"unknown message kind {kind!r}")
    return obj


def from_wire(obj: dict[str, Any]) -> tuple[str, object]:
    """Rebuild the (kind, payload) pair from a decoded JSON dict."""
    kind = obj.get("kind")
    if kind == INGEST_BATCH:
        return kind, IngestBatch(
            reporter_id=obj["reporter_id"],
            batch_seq=int(obj["batch_seq"]),
            updates=tuple(_update_from_obj(u) for u in obj["updates"]),
        )
    if kind == INGEST_ACK:
        return kind, IngestAck(
            batch_seq=int(obj["batch_seq"]),
            acked=tuple((o, int(s)) for o, s in obj["acked"]),
            credits=int(obj["credits"]),
        )
    if kind == INGEST_BUSY:
        return kind, IngestBusy(
            batch_seq=int(obj["batch_seq"]),
            retry_after=int(obj["retry_after"]),
        )
    if kind == SUBSCRIBE:
        return kind, SubscribeMsg(
            client_id=obj["client_id"],
            text=obj["text"],
            horizon=int(obj["horizon"]),
            method=obj.get("method", "incremental"),
            policy=obj.get("policy", "immediate"),
            period=int(obj.get("period", 1)),
            window=obj.get("window"),
            staleness_bound=obj.get("staleness_bound"),
            have_seq=int(obj.get("have_seq", -1)),
            incarnation=int(obj.get("incarnation", 0)),
        )
    if kind == SUBSCRIBED:
        return kind, SubscribedMsg(
            client_id=obj["client_id"],
            query_id=obj["query_id"],
            incarnation=int(obj["incarnation"]),
            error=obj.get("error"),
        )
    if kind == DELTA:
        return kind, DeltaMsg(
            query_id=obj["query_id"],
            incarnation=int(obj["incarnation"]),
            seq=int(obj["seq"]),
            aged_from=int(obj["aged_from"]),
            adds=tuple(_tuple_from_obj(t) for t in obj["adds"]),
            retracts=tuple(_tuple_from_obj(t) for t in obj["retracts"]),
            snapshot=bool(obj.get("snapshot", False)),
        )
    if kind == DELTA_ACK:
        return kind, DeltaAck(
            client_id=obj["client_id"],
            query_id=obj["query_id"],
            incarnation=int(obj["incarnation"]),
            seq=int(obj["seq"]),
            free_slots=obj.get("free_slots"),
        )
    if kind == RESUME:
        return kind, ResumeMsg(
            client_id=obj["client_id"],
            query_id=obj["query_id"],
            incarnation=int(obj["incarnation"]),
            have_seq=int(obj["have_seq"]),
        )
    if kind == HEARTBEAT:
        return kind, HeartbeatMsg(
            client_id=obj["client_id"],
            sent_at=int(obj["sent_at"]),
            free_slots=obj.get("free_slots"),
        )
    raise DistributedError(f"unknown message kind {kind!r}")


def encode_line(kind: str, payload: object) -> bytes:
    """One message as a newline-terminated JSON line."""
    return (json.dumps(to_wire(kind, payload)) + "\n").encode()


def decode_line(line: bytes) -> tuple[str, object]:
    """Parse one newline-delimited JSON message."""
    try:
        obj = json.loads(line.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise DistributedError(f"undecodable message line: {exc}") from exc
    if not isinstance(obj, dict):
        raise DistributedError("message line is not a JSON object")
    return from_wire(obj)
