"""Client-side endpoints of the continuous-query server.

:class:`SubscriberClient` maintains a continuous query's answer as a
local *display* (the paper's "display the result of Q continuously"):
it subscribes (with retry), applies sequence-numbered deltas in order,
detects gaps and asks for replay, survives disconnections with a
resumable cursor, and adopts snapshot resyncs after a server
crash-restart.  Staleness is aged **conservatively** on the client:
``max_age + (now - aged_from)`` can only over-estimate the true age
(later server updates only make objects fresher), so a tuple the client
shows *unflagged* is guaranteed within its ``staleness_bound`` no matter
how long the delta sat in flight.

:class:`BatchingReporter` is the batched counterpart of PR 2's
:class:`~repro.distributed.updates.MotionReporter`: motion changes
accumulate locally and travel as one :class:`IngestBatch` per flush,
gated by the server-granted credit allowance, retried with jittered
backoff, and held back when the server says busy.
"""

from __future__ import annotations

import random
import zlib
from typing import Any

from repro.distributed.backoff import RetrySchedule
from repro.distributed.network import Message, SimNetwork
from repro.distributed.node import MobileNode
from repro.distributed.updates import MotionUpdate
from repro.errors import DistributedError
from repro.geometry import Point
from repro.motion.moving import linear_moving_point
from repro.server.protocol import (
    CONTROL_SIZE,
    DELTA,
    DELTA_ACK,
    HEARTBEAT,
    INGEST_ACK,
    INGEST_BATCH,
    INGEST_BUSY,
    RESUME,
    SERVER_ID,
    SUBSCRIBE,
    SUBSCRIBED,
    UPDATE_SIZE,
    DeltaAck,
    DeltaMsg,
    HeartbeatMsg,
    IngestAck,
    IngestBatch,
    IngestBusy,
    ResumeMsg,
    SubscribeMsg,
    SubscribedMsg,
    WireTuple,
)
from repro.server.transport import ProtocolNode


class SubscriberClient:
    """One display client of the continuous-query server."""

    def __init__(
        self,
        network: SimNetwork,
        client_id: str,
        text: str,
        horizon: int,
        server_id: str = SERVER_ID,
        method: str = "incremental",
        policy: str = "immediate",
        period: int = 1,
        window: int | None = None,
        staleness_bound: float | None = None,
        heartbeat_every: int = 2,
        resubscribe_after: int = 4,
    ) -> None:
        if heartbeat_every < 1 or resubscribe_after < 1:
            raise DistributedError("client timers must be at least one tick")
        self.node = ProtocolNode(client_id, network)
        self.network = network
        self.clock = network.clock
        self.client_id = client_id
        self.server_id = server_id
        self.text = text
        self.horizon = horizon
        self.method = method
        self.policy = policy
        self.period = period
        self.window = window
        self.staleness_bound = staleness_bound
        self.heartbeat_every = heartbeat_every
        self.resubscribe_after = resubscribe_after
        self.query_id: str | None = None
        self.incarnation = 0
        #: Highest contiguous delta seq applied (the resumable cursor).
        self.last_seq = 0
        #: key -> (WireTuple, aged_from): what the display holds.
        self.display: dict[tuple[Any, ...], tuple[WireTuple, int]] = {}
        self.subscribed = False
        #: Refusal diagnostic from the server (subscription given up).
        self.error: str | None = None
        self.deltas_received = 0
        self.snapshots_received = 0
        self.duplicates = 0
        self.gaps = 0
        self.resumes_sent = 0
        self._next_subscribe = self.clock.now
        self._was_connected = network.is_connected(client_id)
        self.node.on_kind(SUBSCRIBED, self._on_subscribed)
        self.node.on_kind(DELTA, self._on_delta)
        self.clock.on_tick(self._on_tick)

    # ------------------------------------------------------------------
    def free_slots(self) -> int | None:
        """Open display slots (``None`` = unwindowed client)."""
        if self.window is None:
            return None
        return max(0, self.window - len(self.display))

    def _send(self, kind: str, payload: object, size: int = CONTROL_SIZE) -> bool:
        return self.node.send(self.server_id, kind, payload, size=size)

    def _send_resume(self) -> None:
        if self.query_id is None:
            return
        self.resumes_sent += 1
        self._send(
            RESUME,
            ResumeMsg(
                client_id=self.client_id,
                query_id=self.query_id,
                incarnation=self.incarnation,
                have_seq=self.last_seq,
            ),
        )

    def _ack(self) -> None:
        if self.query_id is None:
            return
        self._send(
            DELTA_ACK,
            DeltaAck(
                client_id=self.client_id,
                query_id=self.query_id,
                incarnation=self.incarnation,
                seq=self.last_seq,
                free_slots=self.free_slots(),
            ),
        )

    # ------------------------------------------------------------------
    def _on_subscribed(self, message: Message) -> None:
        msg = message.payload
        assert isinstance(msg, SubscribedMsg)
        if msg.error is not None:
            # Fail-fast refusal (e.g. SchemaError for an unknown class):
            # record the diagnostic and stop retrying a hopeless query.
            self.error = msg.error
            self.subscribed = False
            return
        self.query_id = msg.query_id
        self.incarnation = max(self.incarnation, msg.incarnation)
        self.subscribed = True

    def _on_delta(self, message: Message) -> None:
        msg = message.payload
        assert isinstance(msg, DeltaMsg)
        if self.query_id is not None and msg.query_id != self.query_id:
            return
        if msg.incarnation < self.incarnation:
            return  # pre-restart straggler
        if msg.snapshot:
            if msg.incarnation == self.incarnation and msg.seq <= self.last_seq:
                # A duplicated/delayed snapshot copy must not rewind the
                # display to stale contents — same seq gate as deltas.
                self.duplicates += 1
                self._ack()
                return
            # Full resync: replace the display, jump the cursor, adopt
            # the (possibly bumped) incarnation.
            self.display = {t.key(): (t, msg.aged_from) for t in msg.adds}
            self.incarnation = msg.incarnation
            self.last_seq = msg.seq
            self.query_id = msg.query_id
            self.snapshots_received += 1
            self.deltas_received += 1
            self._ack()
            return
        if msg.incarnation > self.incarnation:
            # A post-restart delta overtook its snapshot: ask the new
            # incarnation's session to resync us.
            self.gaps += 1
            self._send_resume()
            return
        if msg.seq <= self.last_seq:
            self.duplicates += 1
            self._ack()  # the previous ack was evidently lost
            return
        if msg.seq > self.last_seq + 1:
            self.gaps += 1
            self._send_resume()
            return
        for t in msg.retracts:
            self.display.pop(t.key(), None)
        for t in msg.adds:
            self.display[t.key()] = (t, msg.aged_from)
        self.last_seq = msg.seq
        self.deltas_received += 1
        self._ack()

    # ------------------------------------------------------------------
    def _on_tick(self, now: int) -> None:
        connected = self.network.is_connected(self.client_id)
        if not connected:
            self._was_connected = False
            return
        reconnected = not self._was_connected
        self._was_connected = True
        # Evict expired tuples locally — the server's diff assumes the
        # display drops a tuple the moment its interval ends.
        for key in [k for k in self.display if k[2] < now]:
            del self.display[key]
        if self.error is not None:
            return
        if not self.subscribed:
            if now >= self._next_subscribe:
                self._send(
                    SUBSCRIBE,
                    SubscribeMsg(
                        client_id=self.client_id,
                        text=self.text,
                        horizon=self.horizon,
                        method=self.method,
                        policy=self.policy,
                        period=self.period,
                        window=self.window,
                        staleness_bound=self.staleness_bound,
                        have_seq=self.last_seq if self.query_id else -1,
                        incarnation=self.incarnation,
                    ),
                )
                self._next_subscribe = now + self.resubscribe_after
            return
        if reconnected:
            # Back online with a live subscription: resume from the
            # cursor instead of resubscribing from scratch.
            self._send_resume()
        if now % self.heartbeat_every == 0:
            self._send(
                HEARTBEAT,
                HeartbeatMsg(
                    client_id=self.client_id,
                    sent_at=now,
                    free_slots=self.free_slots(),
                ),
            )

    # ------------------------------------------------------------------
    def flagged(self, key: tuple[Any, ...], now: int | None = None) -> bool:
        """Whether a held tuple is displayed with the *degraded* flag."""
        if self.staleness_bound is None:
            return False
        t = self.clock.now if now is None else now
        tup, aged_from = self.display[key]
        return tup.max_age + (t - aged_from) > self.staleness_bound

    def display_at(self, now: int | None = None) -> set[tuple[Any, ...]]:
        """Values displayed unflagged at ``now`` (default: current tick)."""
        t = self.clock.now if now is None else now
        return {
            tup.values
            for key, (tup, _) in self.display.items()
            if tup.active_at(t) and not self.flagged(key, t)
        }

    def displayable(self, now: int | None = None) -> set[tuple[Any, ...]]:
        """Every held ``(values, begin, end)`` still meaningful at ``now``
        (convergence comparisons ignore the flag and pending expiry)."""
        t = self.clock.now if now is None else now
        return {
            (tup.values, tup.begin, tup.end)
            for tup, _ in self.display.values()
            if tup.end >= t
        }


class BatchingReporter:
    """Batched, credit-gated motion reporting from one mobile node.

    Motion changes are recorded locally first (section 5.3) and queued;
    each flush sends the oldest unacked updates as one
    :class:`IngestBatch`, capped by the credit allowance the server's
    last ack granted.  An unacked batch is retransmitted with jittered
    backoff (duplicates are harmless: ingest is idempotent); a busy
    signal holds the batch without dropping anything.  After an outage
    the reporter re-announces its current motion, because it cannot know
    which pre-outage updates survived.
    """

    def __init__(
        self,
        node: MobileNode,
        server_id: str = SERVER_ID,
        object_id: object | None = None,
        schedule: RetrySchedule | None = None,
        seed: int | None = None,
    ) -> None:
        self.node = node
        self.network = node.network
        self.server_id = server_id
        self.object_id = object_id if object_id is not None else node.node_id
        self.schedule = schedule if schedule is not None else RetrySchedule(
            base=2.0, factor=2.0, cap=8.0, jitter=0.3
        )
        if seed is None:
            seed = zlib.crc32(repr(self.object_id).encode())
        self._rng = random.Random(seed)
        self.sent = 0
        self.batches_sent = 0
        self.retransmissions = 0
        self.busy_signals = 0
        self.acked_through = -1
        #: Server-granted allowance; ``None`` until the first ack.
        self.credits: int | None = None
        self._next_seq = 0
        self._next_batch_seq = 0
        self._last_velocity: Point | None = None
        # seq -> MotionUpdate, insertion-ordered (dict preserves it).
        self._unacked: dict[int, MotionUpdate] = {}
        # [batch_seq, updates, next retry tick, attempts] or None.
        self._outstanding: list[Any] | None = None
        self._was_connected = self.network.is_connected(node.node_id)
        node.on_kind(INGEST_ACK, self._on_ack)
        node.on_kind(INGEST_BUSY, self._on_busy)
        self.network.clock.on_tick(self._on_tick)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Updates recorded but not yet acked."""
        return len(self._unacked)

    def drained(self) -> bool:
        """Everything recorded has been acked."""
        return not self._unacked

    def report(
        self, velocity: Point, position: Point | None = None
    ) -> MotionUpdate:
        """Record a motion change locally; it travels with the next flush."""
        now = self.network.clock.now
        fix = position if position is not None else self.node.position_now()
        self.node.update_motion(
            linear_moving_point(fix, velocity, anchor_time=now)
        )
        self._last_velocity = velocity
        update = MotionUpdate(
            object_id=self.object_id,
            seq=self._next_seq,
            measured_at=now,
            position=fix,
            velocity=velocity,
        )
        self._next_seq += 1
        self._unacked[update.seq] = update
        self.sent += 1
        return update

    # ------------------------------------------------------------------
    def _flush(self, now: int) -> None:
        cap = len(self._unacked) if self.credits is None else self.credits
        if cap <= 0:
            return
        updates = tuple(
            self._unacked[seq] for seq in sorted(self._unacked)[:cap]
        )
        if not updates:
            return
        batch = IngestBatch(
            reporter_id=str(self.node.node_id),
            batch_seq=self._next_batch_seq,
            updates=updates,
        )
        self._next_batch_seq += 1
        self._outstanding = [
            batch,
            now + self.schedule.interval(0, self._rng),
            0,
        ]
        self._transmit(batch)
        self.batches_sent += 1

    def _transmit(self, batch: IngestBatch) -> None:
        self.network.send(
            self.node.node_id,
            self.server_id,
            INGEST_BATCH,
            batch,
            size=UPDATE_SIZE * len(batch.updates),
        )

    def _on_ack(self, message: Message) -> None:
        msg = message.payload
        assert isinstance(msg, IngestAck)
        self.credits = msg.credits
        for _object_id, seq in msg.acked:
            # Cumulative per object (this reporter carries one object).
            for settled in [s for s in self._unacked if s <= seq]:
                del self._unacked[settled]
            self.acked_through = max(self.acked_through, seq)
        if (
            self._outstanding is not None
            and msg.batch_seq >= self._outstanding[0].batch_seq
        ):
            self._outstanding = None

    def _on_busy(self, message: Message) -> None:
        """The server refused the batch: hold it and come back later,
        jittered so a herd of refused reporters does not return at once."""
        msg = message.payload
        assert isinstance(msg, IngestBusy)
        if (
            self._outstanding is None
            or msg.batch_seq != self._outstanding[0].batch_seq
        ):
            return
        self.busy_signals += 1
        now = self.network.clock.now
        attempts = self._outstanding[2] + 1
        hold = max(
            int(msg.retry_after), self.schedule.interval(attempts, self._rng)
        )
        self._outstanding[1] = now + max(1, hold)
        self._outstanding[2] = attempts

    def _on_tick(self, now: int) -> None:
        connected = self.network.is_connected(self.node.node_id)
        if not connected:
            self._was_connected = False
            return
        if not self._was_connected:
            self._was_connected = True
            self._outstanding = None  # the outage likely ate it anyway
            if self._last_velocity is not None:
                self.report(self._last_velocity)
        if self._outstanding is None:
            self._flush(now)
            return
        batch, next_retry, attempts = self._outstanding
        # Drop updates from the in-flight batch that a (duplicated or
        # overlapping) ack already settled; retransmit the rest.
        live = tuple(u for u in batch.updates if u.seq in self._unacked)
        if not live:
            self._outstanding = None
            self._flush(now)
            return
        if next_retry > now:
            return
        if len(live) < len(batch.updates):
            batch = IngestBatch(batch.reporter_id, batch.batch_seq, live)
            self._outstanding[0] = batch
        self._transmit(batch)
        self.retransmissions += 1
        attempts += 1
        self._outstanding[1] = now + self.schedule.interval(
            attempts, self._rng
        )
        self._outstanding[2] = attempts
