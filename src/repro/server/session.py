"""Per-subscriber sessions: policy-paced, reliable delta fan-out.

A session layers PR 2's reliability idioms over the paper's §5.2
transmission policies:

* **what** travels is decided by the answer-state diff (adds/retracts
  against what the client will hold once the log drains);
* **when** it travels is decided by the client's
  :class:`~repro.distributed.transmission.TransmissionPolicy`
  (immediate / delayed / periodic) under its advertised send window;
* **that** it arrives is the job of sequence-numbered
  :class:`~repro.server.protocol.DeltaMsg` entries retried with
  jittered backoff until cumulatively acked, with replay-after-resume
  and snapshot resync when the log cannot answer a cursor (pruned,
  overflowed, or lost to a server crash).

Sessions are volatile: a server crash loses them, and the rebuilt
session resynchronises its client with a snapshot under a bumped
incarnation number.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.distributed.backoff import RetrySchedule
from repro.distributed.transmission import (
    DelayedPolicy,
    ImmediatePolicy,
    PeriodicPolicy,
    TransmissionPolicy,
)
from repro.errors import DistributedError
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    CONTROL_SIZE,
    DELTA,
    TUPLE_SIZE,
    DeltaAck,
    DeltaMsg,
    HeartbeatMsg,
    ResumeMsg,
    WireTuple,
)
from repro.server.registry import AnswerState, SubscriberRecord

Send = Callable[[str, str, object, int], bool]  # (dst, kind, payload, size)


def make_policy(name: str, period: int = 1) -> TransmissionPolicy:
    """Instantiate one of the §5.2 policies by wire name."""
    if name == "immediate":
        return ImmediatePolicy()
    if name == "delayed":
        return DelayedPolicy()
    if name == "periodic":
        return PeriodicPolicy(period)
    raise DistributedError(f"unknown transmission policy {name!r}")


def _key_tuple(key: tuple[Any, ...]) -> WireTuple:
    """Rebuild the identity-only tuple a retraction names."""
    values, begin, end, support = key
    return WireTuple(values=values, begin=begin, end=end, support=support)


class ClientSession:
    """One (client, query) delivery pipeline on the server."""

    def __init__(
        self,
        record: SubscriberRecord,
        send: Send,
        metrics: ServerMetrics,
        incarnation: int,
        now: int,
        schedule: RetrySchedule | None = None,
        seed: int = 0,
        heartbeat_timeout: int = 8,
        max_log: int = 256,
    ) -> None:
        self.client_id = record.client_id
        self.query_id = record.query_id
        self.record = record
        self.policy = make_policy(record.policy, record.period)
        self.window = record.window
        self.staleness_bound = record.staleness_bound
        self._send_fn = send
        self.metrics = metrics
        self.incarnation = incarnation
        self.schedule = schedule if schedule is not None else RetrySchedule(
            base=2.0, factor=2.0, cap=8.0, jitter=0.3
        )
        self._rng = random.Random(seed)
        self.heartbeat_timeout = heartbeat_timeout
        self.max_log = max_log
        #: Keys the client will hold once the log drains.
        self.delivered: set[tuple[Any, ...]] = set()
        # seq -> [DeltaMsg, next retry tick, attempts]
        self.log: dict[int, list[Any]] = {}
        self.next_seq = 1
        self.acked_through = 0
        self.free_slots: int | None = record.window
        self.connected = True
        self.last_heard = now
        #: A fresh (or resynchronising) session starts with a snapshot.
        self.needs_snapshot = True

    # ------------------------------------------------------------------
    @property
    def unacked(self) -> int:
        """Deltas sent but not yet cumulatively acked."""
        return len(self.log)

    @property
    def pending(self) -> int:
        """Tuples staged by the policy but not yet sent."""
        return len(self.policy.pending)

    def _touch(self, now: int) -> None:
        """Any inbound message proves the client alive."""
        self.last_heard = now
        if not self.connected:
            self.connected = True
            self.metrics.reconnects += 1

    def check_liveness(self, now: int) -> None:
        """Heartbeat timeout: mark the client disconnected.

        Sends pause (the log is kept for replay) — a session never
        burns bandwidth on a client known to be unreachable.
        """
        if self.connected and now - self.last_heard > self.heartbeat_timeout:
            self.connected = False
            self.metrics.disconnects += 1

    # ------------------------------------------------------------------
    def on_ack(self, ack: DeltaAck, now: int) -> None:
        self._touch(now)
        if ack.incarnation != self.incarnation:
            return
        for seq in [s for s in self.log if s <= ack.seq]:
            del self.log[seq]
        self.acked_through = max(self.acked_through, ack.seq)
        self.free_slots = ack.free_slots

    def on_resume(self, msg: ResumeMsg, now: int) -> None:
        """Client asks for replay after ``have_seq`` (gap or reconnect)."""
        self._touch(now)
        self.metrics.resumes += 1
        if msg.incarnation != self.incarnation:
            self.needs_snapshot = True
            return
        have = msg.have_seq
        # Everything at or below the cursor is implicitly acked.
        for seq in [s for s in self.log if s <= have]:
            del self.log[seq]
        self.acked_through = max(self.acked_through, have)
        missing = [s for s in range(have + 1, self.next_seq) if s not in self.log]
        if missing:
            # The log cannot reconstruct the client's stream (pruned or
            # lost) — fall back to a snapshot resync.
            self.needs_snapshot = True
            return
        for seq in self.log:
            if seq > have:
                self.log[seq][1] = now  # replay on the next step

    def on_heartbeat(self, msg: HeartbeatMsg, now: int) -> None:
        self._touch(now)
        if msg.free_slots is not None or self.window is None:
            self.free_slots = msg.free_slots

    # ------------------------------------------------------------------
    def _transmit(self, msg: DeltaMsg) -> bool:
        size = TUPLE_SIZE * (len(msg.adds) + len(msg.retracts)) + CONTROL_SIZE
        return self._send_fn(self.client_id, DELTA, msg, size)

    def _append_log(self, msg: DeltaMsg, now: int) -> None:
        self.log[msg.seq] = [msg, now + self.schedule.interval(0, self._rng), 0]
        if len(self.log) > self.max_log:
            # Bounded memory: a client so far behind that the log
            # overflows gets a snapshot instead of an unbounded queue.
            self.log.clear()
            self.needs_snapshot = True

    def _send_snapshot(self, state: AnswerState, now: int) -> None:
        # A snapshot reconstructs what the client *would* hold had deltas
        # flowed normally, so its contents are paced by the same policy:
        # a delayed client's resync carries only tuples already begun;
        # the rest follow as ordinary deltas at their proper times.  The
        # client still replaces its whole display (stale entries from
        # before the resync vanish either way).
        self.policy.on_answer(list(state.tuples), now)
        due = self.policy.due(now, self._slots())
        msg = DeltaMsg(
            query_id=self.query_id,
            incarnation=self.incarnation,
            seq=self.next_seq,
            aged_from=state.computed_at,
            adds=tuple(due),
            retracts=(),
            snapshot=True,
        )
        self.next_seq += 1
        self.log.clear()
        self._append_log(msg, now)
        self.delivered = {t.key() for t in due}
        self.policy.mark_sent(due)
        if self.free_slots is not None:
            self.free_slots = max(0, self.free_slots - len(due))
        self._transmit(msg)
        self.needs_snapshot = False
        self.metrics.snapshots_sent += 1
        self.metrics.deltas_sent += 1
        self.metrics.tuples_sent += len(msg.adds)

    def step(self, now: int, state: AnswerState) -> None:
        """One epoch of fan-out work for this client."""
        if not self.connected:
            return
        if self.needs_snapshot:
            self._send_snapshot(state, now)
            return
        # Retransmit overdue unacked deltas (jittered backoff).
        for seq in sorted(self.log):
            msg, next_retry, attempts = self.log[seq]
            if next_retry > now:
                continue
            self._transmit(msg)
            attempts += 1
            self.log[seq][1] = now + self.schedule.interval(
                attempts, self._rng
            )
            self.log[seq][2] = attempts
            self.metrics.delta_retransmissions += 1
        # Diff the current answer against what the client will hold.
        current = state.keys
        expired = {
            k for k in self.delivered if k not in current and k[2] < now
        }
        self.delivered -= expired  # client evicts these itself
        retract_keys = sorted(
            (k for k in self.delivered if k not in current),
            key=lambda k: (k[1], k[2], str(k[0])),
        )
        undelivered = [
            t for t in state.tuples if t.key() not in self.delivered
        ]
        self.policy.on_answer(undelivered, now)
        due = self.policy.due(now, self._slots())
        if not due and not retract_keys:
            return
        msg = DeltaMsg(
            query_id=self.query_id,
            incarnation=self.incarnation,
            seq=self.next_seq,
            aged_from=state.computed_at,
            adds=tuple(due),
            retracts=tuple(_key_tuple(k) for k in retract_keys),
        )
        self.next_seq += 1
        self._append_log(msg, now)
        self.policy.mark_sent(due)
        self.delivered |= {t.key() for t in due}
        self.delivered -= set(retract_keys)
        if self.free_slots is not None:
            self.free_slots = max(
                0, self.free_slots - len(due) + len(retract_keys)
            )
        self._transmit(msg)
        self.metrics.deltas_sent += 1
        self.metrics.tuples_sent += len(due)
        self.metrics.retract_tuples_sent += len(retract_keys)

    def _slots(self) -> int | None:
        """The send window the policy sees this epoch."""
        if self.window is None:
            return None
        return self.free_slots if self.free_slots is not None else self.window

    # ------------------------------------------------------------------
    def drained(self) -> bool:
        """No unacked deltas and nothing staged (quiescence probe)."""
        return not self.log and not self.needs_snapshot
