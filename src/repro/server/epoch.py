"""The always-on continuous-query server: asyncio epoch loop.

One **epoch** = one tick of the shared simulation clock plus one pass of
server work:

1. **pump** — tick the clock; the network delivers in-flight messages
   (ingest batches land in the bounded inbox, client acks/resumes/
   heartbeats are routed to their sessions);
2. **ingest** — drain up to ``batch_limit`` queued motion updates into
   :meth:`~repro.core.database.MostDatabase.ingest_motion` (idempotent,
   sequence-checked) and ack them, amortising structural cache
   invalidation across the whole batch;
3. **refresh** — bring registered continuous queries up to date off
   their dirty frontiers (incremental maintenance; a clean query is a
   near-free no-op);
4. **fan-out** — diff each query's answer state and push deltas to
   subscriber sessions through their §5.2 transmission policies.

Backpressure is explicit end-to-end: a full inbox refuses the batch
with an :class:`~repro.server.protocol.IngestBusy` telling the reporter
when to come back (never a silent drop), and every ingest ack carries a
refreshed credit allowance that shrinks to zero as the queue climbs
past the high watermark.

The degradation ladder (DESIGN.md §9): ``normal`` → ``backpressure``
(credits withheld) → ``shedding`` (bounded refreshes per epoch,
round-robin; unrefreshed queries keep serving their last answer with
honestly aged staleness flags instead of blocking the loop).

Crash-restart: :meth:`CQServer.crash` drops every volatile structure
(inbox, sessions, live query instances); :meth:`CQServer.restart` bumps
the incarnation, re-evaluates from the durable registry, and resyncs
every subscriber by snapshot.  Reporters recover by PR 2 retry; clients
by resumable cursors.
"""

from __future__ import annotations

import asyncio
import time
import zlib
from collections import deque
from typing import Any

from repro.core.database import MostDatabase
from repro.distributed.backoff import RetrySchedule
from repro.distributed.network import SimNetwork
from repro.distributed.updates import (
    ACK_KIND,
    ACK_SIZE,
    BUSY_KIND,
    UPDATE_KIND,
    MotionUpdate,
)
from repro.errors import DistributedError, ReproError
from repro.server.metrics import (
    BACKPRESSURE,
    NORMAL,
    SHEDDING,
    ServerMetrics,
)
from repro.server.protocol import (
    CONTROL_SIZE,
    DELTA_ACK,
    HEARTBEAT,
    INGEST_ACK,
    INGEST_BATCH,
    INGEST_BUSY,
    RESUME,
    SERVER_ID,
    SUBSCRIBE,
    SUBSCRIBED,
    DeltaAck,
    HeartbeatMsg,
    IngestAck,
    IngestBatch,
    IngestBusy,
    ResumeMsg,
    SubscribedMsg,
    SubscribeMsg,
)
from repro.server.registry import SubscriptionRegistry
from repro.server.session import ClientSession
from repro.server.transport import SimTransport, Transport


class CQServer:
    """The epoch-loop continuous-query server.

    Args:
        db: the MOST database (shares its clock with the network).
        network: the simulated transport; ``None`` builds a standalone
            server (TCP transport attached separately).
        inbox_capacity: bound of the epoch ingest queue, in updates.
        batch_limit: updates applied per epoch (the amortisation knob).
        high_watermark: inbox fill fraction beyond which ingest credits
            drop to zero (the ``backpressure`` ladder level).
        shed_budget: query refreshes allowed per epoch while shedding.
        heartbeat_timeout: epochs of client silence before its sessions
            pause sends.
        retry: backoff schedule for delta retransmission (jittered).
        busy_retry_after: hold-off, in epochs, a refused reporter is told.
        seed: base RNG seed for per-session jitter decorrelation.
        parallel: sharded-evaluation worker knob forwarded to every
            registered query (``None``/``1`` serial, ``N`` workers,
            ``"auto"``; DESIGN.md §12).
    """

    def __init__(
        self,
        db: MostDatabase,
        network: SimNetwork | None = None,
        server_id: str = SERVER_ID,
        inbox_capacity: int = 512,
        batch_limit: int = 128,
        high_watermark: float = 0.75,
        shed_budget: int = 4,
        heartbeat_timeout: int = 8,
        retry: RetrySchedule | None = None,
        busy_retry_after: int = 2,
        max_log: int = 256,
        seed: int = 0,
        parallel: object = None,
    ) -> None:
        if inbox_capacity < 1:
            raise DistributedError("inbox must hold at least one update")
        if batch_limit < 1:
            raise DistributedError("batch limit must be at least one update")
        if not 0.0 < high_watermark <= 1.0:
            raise DistributedError("high watermark must be in (0, 1]")
        self.db = db
        self.clock = db.clock
        self.server_id = server_id
        self.inbox_capacity = inbox_capacity
        self.batch_limit = batch_limit
        self.high_watermark = high_watermark
        self.shed_budget = shed_budget
        self.heartbeat_timeout = heartbeat_timeout
        self.retry = retry if retry is not None else RetrySchedule(
            base=2.0, factor=2.0, cap=8.0, jitter=0.3
        )
        self.busy_retry_after = busy_retry_after
        self.max_log = max_log
        self.seed = seed
        self.metrics = ServerMetrics()
        self.registry = SubscriptionRegistry(db, self.metrics, parallel=parallel)
        self.sessions: dict[tuple[str, str], ClientSession] = {}
        #: Queued ``("batch", src, IngestBatch)`` / ``("single", src,
        #: MotionUpdate)`` entries; :attr:`inbox_depth` counts updates.
        self._inbox: deque[tuple[str, str, Any]] = deque()
        self.inbox_depth = 0
        self._reporters: set[str] = set()
        self.incarnation = 1
        self.crashed = False
        self.level = NORMAL
        self.transport: Transport | None = (
            SimTransport(network, server_id, self._dispatch)
            if network is not None
            else None
        )

    # ------------------------------------------------------------------
    # Inbound dispatch (transport-agnostic)
    # ------------------------------------------------------------------
    def _dispatch(self, src: str, kind: str, payload: object) -> None:
        """Route one inbound message (called by any transport)."""
        if self.crashed:
            return
        # The isinstance guards double as payload validation: a kind
        # carrying the wrong payload class is ignored like an unknown
        # kind, never crashed on.
        if kind == INGEST_BATCH and isinstance(payload, IngestBatch):
            self._on_batch(src, payload)
        elif kind == UPDATE_KIND and isinstance(payload, MotionUpdate):
            self._on_single(src, payload)
        elif kind == SUBSCRIBE and isinstance(payload, SubscribeMsg):
            self._on_subscribe(src, payload)
        elif kind == DELTA_ACK and isinstance(payload, DeltaAck):
            self._on_delta_ack(payload)
        elif kind == RESUME and isinstance(payload, ResumeMsg):
            self._on_resume(payload)
        elif kind == HEARTBEAT and isinstance(payload, HeartbeatMsg):
            self._on_heartbeat(payload)
        # Unknown kinds are ignored: the server talks several protocol
        # generations and must not crash on a newer client's extras.

    def _send(self, dst: str, kind: str, payload: object, size: int) -> bool:
        if self.transport is None:
            return False
        return self.transport.send(dst, kind, payload, size=size)

    @property
    def _headroom(self) -> int:
        return self.inbox_capacity - self.inbox_depth

    def _on_batch(self, src: str, batch: IngestBatch) -> None:
        self._reporters.add(src)
        if len(batch.updates) > self._headroom:
            # Explicit backpressure: refuse the whole batch atomically
            # and tell the reporter when to come back.
            self.metrics.busy_signals += 1
            self._send(
                src,
                INGEST_BUSY,
                IngestBusy(
                    batch_seq=batch.batch_seq,
                    retry_after=self.busy_retry_after,
                ),
                CONTROL_SIZE,
            )
            return
        self._inbox.append(("batch", src, batch))
        self.inbox_depth += len(batch.updates)
        self.metrics.updates_enqueued += len(batch.updates)
        self.metrics.observe_inbox(self.inbox_depth)

    def _on_single(self, src: str, update: MotionUpdate) -> None:
        """Legacy single-update ingest (PR 2 :class:`MotionReporter`)."""
        self._reporters.add(src)
        if self._headroom < 1:
            self.metrics.busy_singles += 1
            self._send(
                src,
                BUSY_KIND,
                (update.object_id, update.seq, self.busy_retry_after),
                ACK_SIZE,
            )
            return
        self._inbox.append(("single", src, update))
        self.inbox_depth += 1
        self.metrics.updates_enqueued += 1
        self.metrics.observe_inbox(self.inbox_depth)

    def _on_subscribe(self, src: str, msg: SubscribeMsg) -> None:
        now = self.clock.now
        try:
            rq = self.registry.register(msg)
        except ReproError as exc:
            # Fail fast with the diagnostic (SchemaError for unknown
            # classes, FtlAnalysisError for malformed queries) instead
            # of a deep evaluator error at first refresh.
            self._send(
                src,
                SUBSCRIBED,
                SubscribedMsg(
                    client_id=msg.client_id,
                    query_id="",
                    incarnation=self.incarnation,
                    error=f"{type(exc).__name__}: {exc}",
                ),
                CONTROL_SIZE,
            )
            return
        key = (msg.client_id, rq.query_id)
        session = self.sessions.get(key)
        if (
            session is not None
            and msg.have_seq >= 0
            and msg.incarnation == self.incarnation
        ):
            # Reconnect to a live session: resume, don't resync.
            session.on_resume(
                ResumeMsg(
                    client_id=msg.client_id,
                    query_id=rq.query_id,
                    incarnation=msg.incarnation,
                    have_seq=msg.have_seq,
                ),
                now,
            )
        elif session is None:
            self.sessions[key] = self._build_session(key, now)
            self.metrics.subscriptions += 1
        self._send(
            src,
            SUBSCRIBED,
            SubscribedMsg(
                client_id=msg.client_id,
                query_id=rq.query_id,
                incarnation=self.incarnation,
            ),
            CONTROL_SIZE,
        )

    def _build_session(self, key: tuple[str, str], now: int) -> ClientSession:
        record = self.registry.records[key]
        return ClientSession(
            record,
            send=self._send,
            metrics=self.metrics,
            incarnation=self.incarnation,
            now=now,
            schedule=self.retry,
            seed=self.seed ^ zlib.crc32("|".join(key).encode()),
            heartbeat_timeout=self.heartbeat_timeout,
            max_log=self.max_log,
        )

    def _on_delta_ack(self, ack: DeltaAck) -> None:
        session = self.sessions.get((ack.client_id, ack.query_id))
        if session is not None:
            session.on_ack(ack, self.clock.now)

    def _on_resume(self, msg: ResumeMsg) -> None:
        session = self.sessions.get((msg.client_id, msg.query_id))
        if session is not None:
            session.on_resume(msg, self.clock.now)

    def _on_heartbeat(self, msg: HeartbeatMsg) -> None:
        now = self.clock.now
        for (client_id, _), session in self.sessions.items():
            if client_id == msg.client_id:
                session.on_heartbeat(msg, now)

    # ------------------------------------------------------------------
    # The epoch loop
    # ------------------------------------------------------------------
    def _credits(self) -> int:
        """Per-reporter ingest allowance granted with each ack."""
        if self.inbox_depth >= self.high_watermark * self.inbox_capacity:
            return 0
        return max(1, self._headroom // max(1, len(self._reporters)))

    def _drain_ingest(self) -> int:
        """Apply up to ``batch_limit`` queued updates; ack everything."""
        applied = 0
        budget = self.batch_limit
        while self._inbox and budget > 0:
            entry_kind, src, payload = self._inbox[0]
            if (
                entry_kind == "batch"
                and len(payload.updates) > budget
                and applied > 0
            ):
                # Whole batches apply atomically within an epoch; an
                # oversized batch waits for a fresh budget — but at the
                # head of an untouched epoch it applies anyway, so a
                # batch larger than ``batch_limit`` can never stall the
                # queue forever.
                break
            self._inbox.popleft()
            if entry_kind == "batch":
                acked: dict[object, int] = {}
                for update in payload.updates:
                    if self._apply(update):
                        applied += 1
                    acked[update.object_id] = max(
                        acked.get(update.object_id, -1), update.seq
                    )
                self.inbox_depth -= len(payload.updates)
                budget -= len(payload.updates)
                self._send(
                    src,
                    INGEST_ACK,
                    IngestAck(
                        batch_seq=payload.batch_seq,
                        acked=tuple(sorted(acked.items(), key=lambda kv: str(kv[0]))),
                        credits=self._credits(),
                    ),
                    ACK_SIZE,
                )
            else:
                if self._apply(payload):
                    applied += 1
                self.inbox_depth -= 1
                budget -= 1
                # PR 2 ack compatibility: (object_id, seq) on ACK_KIND.
                self._send(
                    src, ACK_KIND, (payload.object_id, payload.seq), ACK_SIZE
                )
        return applied

    def _apply(self, update: MotionUpdate) -> bool:
        try:
            ok = self.db.ingest_motion(
                update.object_id,
                update.seq,
                update.velocity,
                update.position,
                update.measured_at,
            )
        except ReproError:
            # An update naming an unknown object (or malformed) must not
            # take the epoch loop down; it is rejected and acked so the
            # sender stops retrying it.
            self.metrics.updates_rejected += 1
            return False
        if ok:
            self.metrics.updates_applied += 1
        else:
            self.metrics.updates_rejected += 1
        return ok

    def _ladder_level(self, backlog: bool) -> str:
        if backlog:
            return SHEDDING
        if self.inbox_depth >= self.high_watermark * self.inbox_capacity:
            return BACKPRESSURE
        return NORMAL

    async def run_epoch(self) -> None:
        """One epoch: pump, ingest, refresh, fan out."""
        t0 = time.perf_counter()
        # Pump: in-flight messages due this tick reach their handlers
        # (ingest enqueues, acks/resumes/heartbeats hit sessions).
        self.clock.tick()
        now = self.clock.now
        self.metrics.epochs += 1
        if self.crashed:
            # Time passes while the loop is down; nothing is served.
            await asyncio.sleep(0)
            return
        self._drain_ingest()
        backlog = bool(self._inbox)
        self.level = self._ladder_level(backlog)
        self.metrics.epochs_at_level[self.level] += 1
        budget = self.shed_budget if self.level == SHEDDING else None
        self.registry.refresh_round(now, budget)
        for session in list(self.sessions.values()):
            session.check_liveness(now)
            rq = self.registry.queries.get(session.query_id)
            if rq is None:
                continue
            session.step(now, rq.state)
        self.metrics.epoch_latency.record(time.perf_counter() - t0)
        # A genuine suspension point: concurrent transports (TCP
        # readers) get the loop between epochs even at interval 0.
        await asyncio.sleep(0)

    async def serve(
        self, epochs: int | None = None, interval: float = 0.0
    ) -> None:
        """Run the epoch loop ``epochs`` times (forever when ``None``)."""
        remaining = epochs
        while remaining is None or remaining > 0:
            await self.run_epoch()
            if interval > 0:
                await asyncio.sleep(interval)
            if remaining is not None:
                remaining -= 1

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill the epoch loop's volatile state (simulated crash).

        The inbox, sessions, and live query instances are lost; the
        registry's durable subscription table and the database survive.
        While crashed, inbound messages are dropped on the floor —
        senders recover via their own retry machinery.
        """
        if self.crashed:
            return
        self.crashed = True
        self.metrics.crashes += 1
        if self.transport is not None:
            self.transport.down = True
        self._inbox.clear()
        self.inbox_depth = 0
        self.sessions.clear()
        self.registry.crash()

    def restart(self) -> None:
        """Restart after a crash: re-evaluate, resync, carry on.

        Bumps the incarnation, rebuilds every registered query by full
        re-evaluation, and recreates subscriber sessions from the
        durable table — each starts with a snapshot resync, so clients
        converge tuple-for-tuple regardless of what the crash ate.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.metrics.restarts += 1
        if self.transport is not None:
            self.transport.down = False
        self.incarnation += 1
        self.registry.rebuild()
        now = self.clock.now
        for key, record in self.registry.records.items():
            if record.query_id in self.registry.queries:
                self.sessions[key] = self._build_session(key, now)

    # ------------------------------------------------------------------
    def drained(self) -> bool:
        """Server-side quiescence: empty inbox, every session drained."""
        return (
            not self.crashed
            and not self._inbox
            and all(s.drained() for s in self.sessions.values())
        )
