"""Reliable position-update transmission: sequence numbers, acks, retries.

The paper's mobile objects send motion-vector updates to the server over
a lossy link (section 1: "due to disconnection, an object cannot
continuously update its position").  This module adds the transport that
makes the server's picture *eventually* right anyway:

* every update carries a per-object **sequence number** and the position
  fix **at measurement time**, so the server can reject stale/duplicate
  deliveries and extrapolate late ones
  (:meth:`repro.core.database.MostDatabase.ingest_motion`);
* the server **acks** every delivery — including rejected duplicates, so
  a sender whose earlier ack was lost stops retrying;
* the :class:`MotionReporter` **retries** unacked updates with
  exponential backoff, and re-announces its current motion when its node
  comes back from a disconnection or crash window (a restarted computer
  cannot know which of its pre-crash updates arrived).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.core.database import MostDatabase
from repro.distributed.backoff import RetrySchedule
from repro.distributed.network import Message, SimNetwork
from repro.distributed.node import MobileNode
from repro.errors import DistributedError
from repro.geometry import Point
from repro.motion.moving import linear_moving_point

UPDATE_KIND = "motion-update"
ACK_KIND = "motion-ack"
#: Explicit backpressure signal: the receiver's inbox is full, back off.
#: Payload is ``(object_id, seq, retry_after_ticks)``.
BUSY_KIND = "motion-busy"

#: Relative message sizes: an update carries a full motion vector, an ack
#: just an (object, seq) pair.
UPDATE_SIZE = 6
ACK_SIZE = 1

#: Conventional server node id.
SERVER_ID = "server"


@dataclass(frozen=True)
class MotionUpdate:
    """One position update in flight: the motion vector observed at
    ``measured_at``, tagged with the sender's per-object sequence number.
    Retransmissions reuse the payload byte-for-byte — the server's
    idempotent ingest makes duplicates harmless."""

    object_id: object
    seq: int
    measured_at: int
    position: Point
    velocity: Point


class UpdateServer:
    """Server endpoint: ingests updates into the database, acks everything.

    Duplicate and out-of-order deliveries are refused by the database's
    sequence check but still acked — the sender only needs to learn that
    the update is *accounted for*, not that it changed anything.
    """

    def __init__(
        self,
        db: MostDatabase,
        network: SimNetwork,
        server_id: str = SERVER_ID,
    ) -> None:
        self.db = db
        self.network = network
        self.server_id = server_id
        self.applied = 0
        self.rejected = 0
        self.acks_sent = 0
        network.register(server_id, self._on_message)

    def _on_message(self, message: Message) -> None:
        if message.kind != UPDATE_KIND:
            return
        update: MotionUpdate = message.payload
        if self.db.ingest_motion(
            update.object_id,
            update.seq,
            update.velocity,
            update.position,
            update.measured_at,
        ):
            self.applied += 1
        else:
            self.rejected += 1
        self.network.send(
            self.server_id,
            message.src,
            ACK_KIND,
            (update.object_id, update.seq),
            size=ACK_SIZE,
        )
        self.acks_sent += 1


class MotionReporter:
    """Node-side transmitter of motion updates with ack/retry.

    Args:
        node: the mobile computer whose motion is being reported.
        server_id: destination node id of the :class:`UpdateServer`.
        object_id: database object id (defaults to the node id).
        retry_after: ticks before the first retransmission of an unacked
            update.
        backoff: multiplicative backoff factor per retry.
        max_interval: retry-interval ceiling in ticks (the configurable
            cap — no retry ever waits longer, jitter aside).
        jitter: proportional retry-interval spread in ``[0, 1)``; with
            ``0.3`` each wait is scaled by a seeded uniform draw from
            ``[0.7, 1.3]``, so reporters that lost the same partition do
            not retry in lockstep when it heals.
        seed: RNG seed for the jitter draws.  ``None`` derives a stable
            per-object seed from ``object_id``, decorrelating reporters
            by default while keeping every schedule reproducible.
    """

    def __init__(
        self,
        node: MobileNode,
        server_id: str = SERVER_ID,
        object_id: object | None = None,
        retry_after: int = 2,
        backoff: float = 2.0,
        max_interval: int = 8,
        jitter: float = 0.0,
        seed: int | None = None,
    ) -> None:
        if retry_after < 1:
            raise DistributedError("retry_after must be at least one tick")
        if backoff < 1.0:
            raise DistributedError("backoff must be >= 1")
        self.node = node
        self.network = node.network
        self.server_id = server_id
        self.object_id = object_id if object_id is not None else node.node_id
        self.retry_after = retry_after
        self.backoff = backoff
        self.max_interval = max_interval
        self.schedule = RetrySchedule(
            base=retry_after,
            factor=backoff,
            cap=max_interval,
            jitter=jitter,
        )
        if seed is None:
            seed = zlib.crc32(repr(self.object_id).encode())
        self._rng = random.Random(seed)
        self.sent = 0
        self.retransmissions = 0
        #: Explicit back-off signals received from a congested server.
        self.busy_signals = 0
        self.acked_through = -1
        self._next_seq = 0
        self._last_velocity: Point | None = None
        # seq -> [update, next retry tick, attempts so far]
        self._unacked: dict[int, list] = {}
        self._was_connected = self.network.is_connected(node.node_id)
        node.on_kind(ACK_KIND, self._on_ack)
        node.on_kind(BUSY_KIND, self._on_busy)
        self.network.clock.on_tick(self._on_tick)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Updates sent but not yet acked."""
        return len(self._unacked)

    def report(
        self, velocity: Point, position: Point | None = None
    ) -> MotionUpdate:
        """Record a motion change locally and transmit it.

        The node's own moving point is re-anchored at the measurement
        (section 5.3: changes "may only be recorded at the moving object
        itself" first); the update travels with a fresh sequence number
        and is retried until acked.
        """
        now = self.network.clock.now
        fix = position if position is not None else self.node.position_now()
        self.node.update_motion(
            linear_moving_point(fix, velocity, anchor_time=now)
        )
        self._last_velocity = velocity
        update = MotionUpdate(
            object_id=self.object_id,
            seq=self._next_seq,
            measured_at=now,
            position=fix,
            velocity=velocity,
        )
        self._next_seq += 1
        self._unacked[update.seq] = [update, now + self.retry_after, 0]
        self.sent += 1
        self._transmit(update)
        return update

    # ------------------------------------------------------------------
    def _transmit(self, update: MotionUpdate) -> None:
        self.network.send(
            self.node.node_id,
            self.server_id,
            UPDATE_KIND,
            update,
            size=UPDATE_SIZE,
        )

    def _on_ack(self, message: Message) -> None:
        _object_id, seq = message.payload
        # Cumulative: the server applies in seq order and rejects
        # stragglers, so an ack for seq settles everything at or below.
        for settled in [s for s in self._unacked if s <= seq]:
            del self._unacked[settled]
        self.acked_through = max(self.acked_through, seq)

    def _on_busy(self, message: Message) -> None:
        """The server's inbox was full: it tells us when to come back
        instead of silently dropping the update (explicit backpressure).
        The hold-off is jittered so the herd does not return at once."""
        _object_id, seq, retry_after = message.payload
        entry = self._unacked.get(seq)
        if entry is None:
            return
        self.busy_signals += 1
        now = self.network.clock.now
        attempts = entry[2] + 1
        hint = max(int(retry_after), self.schedule.interval(attempts, self._rng))
        entry[1] = now + max(1, hint)
        entry[2] = attempts

    def _on_tick(self, now: int) -> None:
        connected = self.network.is_connected(self.node.node_id)
        if not connected:
            self._was_connected = False
            return
        if not self._was_connected:
            self._was_connected = True
            # Back from a disconnection or crash window: re-announce the
            # current motion so the server converges even if every
            # pre-outage update (and its retries) was lost.
            if self._last_velocity is not None:
                self.report(self._last_velocity)
        for seq, entry in list(self._unacked.items()):
            update, next_retry, attempts = entry
            if next_retry > now:
                continue
            self._transmit(update)
            self.retransmissions += 1
            attempts += 1
            entry[1] = now + self.schedule.interval(attempts, self._rng)
            entry[2] = attempts
