"""Classification of distributed MOST queries (section 5.3).

* **self-referencing** — "a predicate whose truth value can be determined
  by examining only the attributes of the object issuing the query"
  ("Will I reach the point (a, b) in 3 minutes?").
* **object query** — "a predicate whose truth value can be determined for
  an object independently of other objects" ("Retrieve the objects that
  will reach the point (a, b) in 3 minutes").
* **relationship query** — "a predicate whose truth value can only be
  determined given two or more objects" ("objects that will stay within 2
  miles of each other").

The classification is syntactic: an atom mentioning two or more distinct
object variables makes the query relational; otherwise a query whose only
object variable is the issuer itself is self-referencing; otherwise it is
an object query.
"""

from __future__ import annotations

from enum import Enum

from repro.ftl.ast import (
    Always,
    AlwaysFor,
    AndF,
    Assign,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Formula,
    Nexttime,
    NotF,
    OrF,
    Until,
    UntilWithin,
)
from repro.ftl.query import FtlQuery


class QueryKind(Enum):
    """The three distributed query types of section 5.3."""

    SELF_REFERENCING = "self-referencing"
    OBJECT = "object"
    RELATIONSHIP = "relationship"


def _atoms(formula: Formula):
    if isinstance(formula, (AndF, OrF, Until, UntilWithin)):
        yield from _atoms(formula.left)
        yield from _atoms(formula.right)
    elif isinstance(
        formula,
        (
            NotF,
            Nexttime,
            Eventually,
            EventuallyWithin,
            EventuallyAfter,
            Always,
            AlwaysFor,
        ),
    ):
        yield from _atoms(formula.operand)
    elif isinstance(formula, Assign):
        yield from _atoms(formula.body)
    else:
        yield formula


def classify_query(query: FtlQuery, issuer_var: str | None = None) -> QueryKind:
    """Classify a query for distributed processing.

    Args:
        query: the FTL query.
        issuer_var: the FROM variable denoting the issuing object, when
            the query is entered at a mobile computer.
    """
    object_vars = set(query.bindings)
    for atom in _atoms(query.where):
        mentioned = atom.free_vars() & object_vars
        if len(mentioned) >= 2:
            return QueryKind.RELATIONSHIP
    used = query.where.free_vars() & object_vars
    if issuer_var is not None and used <= {issuer_var}:
        return QueryKind.SELF_REFERENCING
    return QueryKind.OBJECT
