"""Mobile computers and the memory-limited display client.

Section 5.3: "each object resides in the computer on the moving vehicle it
represents, but nowhere else" — a :class:`MobileNode` therefore holds its
own moving point plus any scalar attributes, and answers predicate probes
locally.

Section 5.2: the querying vehicle's computer displays ``Answer(CQ)``
tuples between their ``begin`` and ``end`` times; "M's memory may fit only
B tuples" — :class:`MobileClient` models that display buffer.
"""

from __future__ import annotations

from typing import Callable

from repro.distributed.network import Message, SimNetwork
from repro.errors import DistributedError
from repro.ftl.relations import AnswerTuple
from repro.motion.moving import MovingPoint


class MobileNode:
    """One mobile computer hosting one moving object.

    Messages with a registered kind handler are dispatched and *not*
    retained; everything else lands in :attr:`inbox`, which is capped at
    ``inbox_limit`` entries — further messages are counted in
    :attr:`inbox_overflow` and discarded (a mobile computer has bounded
    memory; an unread backlog must not grow without bound).
    """

    #: Default unread-message capacity.
    DEFAULT_INBOX_LIMIT = 64

    def __init__(
        self,
        node_id: str,
        network: SimNetwork,
        mover: MovingPoint,
        attributes: dict[str, object] | None = None,
        inbox_limit: int | None = DEFAULT_INBOX_LIMIT,
    ) -> None:
        if inbox_limit is not None and inbox_limit < 1:
            raise DistributedError("inbox must hold at least 1 message")
        self.node_id = node_id
        self.network = network
        self.mover = mover
        self.attributes = dict(attributes or {})
        self.inbox: list[Message] = []
        self.inbox_limit = inbox_limit
        #: Unhandled messages discarded because the inbox was full.
        self.inbox_overflow = 0
        #: Messages consumed by a kind handler (never retained).
        self.handled = 0
        self._probe_handlers: dict[str, Callable[[Message], None]] = {}
        network.register(node_id, self._on_message)

    # ------------------------------------------------------------------
    def _on_message(self, message: Message) -> None:
        handler = self._probe_handlers.get(message.kind)
        if handler is not None:
            self.handled += 1
            handler(message)
            return
        if (
            self.inbox_limit is not None
            and len(self.inbox) >= self.inbox_limit
        ):
            self.inbox_overflow += 1
            return
        self.inbox.append(message)

    def on_kind(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Register a handler for one message kind."""
        self._probe_handlers[kind] = handler

    def drain_inbox(self, kind: str | None = None) -> list[Message]:
        """Remove and return unread messages (optionally one kind only)."""
        if kind is None:
            drained, self.inbox = self.inbox, []
            return drained
        drained = [m for m in self.inbox if m.kind == kind]
        self.inbox = [m for m in self.inbox if m.kind != kind]
        return drained

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """The node's object state: what 'send the object' transmits."""
        return {
            "id": self.node_id,
            "mover": self.mover,
            "attributes": dict(self.attributes),
        }

    def update_motion(self, mover: MovingPoint) -> None:
        """Local motion-vector update — recorded only here (section 5.3:
        changes "may only be recorded at the moving object itself")."""
        self.mover = mover

    def position_now(self):
        """Current position."""
        return self.mover.position_at(self.network.clock.now)


class MobileClient:
    """The display buffer of the vehicle that issued a continuous query.

    Holds at most ``memory`` answer tuples; expired tuples are evicted on
    access, and incoming tuples beyond capacity are rejected (the
    transmission policy is responsible for re-sending them later — the
    block-wise scheme of section 5.2).
    """

    def __init__(self, memory: int | None = None) -> None:
        if memory is not None and memory < 1:
            raise DistributedError("client memory must hold at least 1 tuple")
        self.memory = memory
        self._tuples: list[AnswerTuple] = []
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._tuples)

    def evict_expired(self, now: float) -> None:
        """Drop tuples whose display interval has passed."""
        self._tuples = [t for t in self._tuples if t.end >= now]

    def receive(self, tuples: list[AnswerTuple], now: float) -> int:
        """Store incoming tuples; returns how many fit."""
        self.evict_expired(now)
        accepted = 0
        for t in tuples:
            if t in self._tuples:
                continue
            if self.memory is not None and len(self._tuples) >= self.memory:
                self.rejected += 1
                continue
            self._tuples.append(t)
            accepted += 1
        return accepted

    def retract(self, tuples: list[AnswerTuple]) -> None:
        """Remove tuples invalidated by a database update."""
        doomed = set(tuples)
        self._tuples = [t for t in self._tuples if t not in doomed]

    def display_at(self, t: float) -> set[tuple]:
        """Instantiations the client shows at tick ``t``."""
        return {tup.values for tup in self._tuples if tup.active_at(t)}

    @property
    def free_slots(self) -> int | None:
        """Remaining capacity (``None`` = unbounded)."""
        if self.memory is None:
            return None
        return self.memory - len(self._tuples)
