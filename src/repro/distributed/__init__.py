"""Mobile and distributed query processing (sections 5.2–5.3).

The paper's architecture discussion is simulated faithfully:

* :mod:`repro.distributed.network` — a message-passing simulation with
  per-message accounting and scheduled disconnection windows (section 5.2
  turns on "the probability that an update ... can be propagated to M").
* :mod:`repro.distributed.node` — mobile computers, each hosting the
  database object of the vehicle it rides on (section 5.3's distribution
  assumption), plus the memory-limited display client of section 5.2.
* :mod:`repro.distributed.classify` — the three query types of section
  5.3: self-referencing, object, and relationship queries.
* :mod:`repro.distributed.strategies` — the competing processing
  strategies (ship-objects-to-querier vs broadcast-query-and-filter,
  centralise for relationship queries) with message-cost accounting.
* :mod:`repro.distributed.transmission` — immediate / delayed / periodic
  transmission of ``Answer(CQ)`` to a mobile client, with block-wise
  pagination under a memory limit ``B`` and staleness measurement.
* :mod:`repro.distributed.updates` — the fault-tolerant position-update
  pipeline: per-object sequence numbers, server acks, and
  retry-with-backoff (DESIGN.md §4).
"""

from repro.distributed.network import (
    FaultPlan,
    LinkFaults,
    Message,
    NetworkStats,
    SimNetwork,
)
from repro.distributed.node import MobileClient, MobileNode
from repro.distributed.classify import QueryKind, classify_query
from repro.distributed.strategies import (
    broadcast_object_query,
    collect_object_query,
    continuous_object_query,
    relationship_query,
    self_referencing_query,
)
from repro.distributed.ftl_processing import (
    DistributedResult,
    process_distributed,
)
from repro.distributed.backoff import RetrySchedule
from repro.distributed.updates import (
    BUSY_KIND,
    MotionReporter,
    MotionUpdate,
    UpdateServer,
)
from repro.distributed.transmission import (
    DelayedPolicy,
    ImmediatePolicy,
    PeriodicPolicy,
    TransmissionReport,
    simulate_transmission,
)

__all__ = [
    "SimNetwork",
    "Message",
    "NetworkStats",
    "FaultPlan",
    "LinkFaults",
    "BUSY_KIND",
    "MotionReporter",
    "MotionUpdate",
    "RetrySchedule",
    "UpdateServer",
    "MobileNode",
    "MobileClient",
    "QueryKind",
    "classify_query",
    "self_referencing_query",
    "collect_object_query",
    "broadcast_object_query",
    "continuous_object_query",
    "relationship_query",
    "DistributedResult",
    "process_distributed",
    "ImmediatePolicy",
    "DelayedPolicy",
    "PeriodicPolicy",
    "TransmissionReport",
    "simulate_transmission",
]
