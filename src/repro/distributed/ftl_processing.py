"""Distributed evaluation of FTL queries (section 5.3, end to end).

:mod:`repro.distributed.strategies` takes plain Python predicates; this
module closes the loop with the query language: an FTL query entered at a
mobile computer is classified and processed with the strategy the paper
prescribes for its class —

* **self-referencing** — evaluated on the issuer's own object, locally;
* **object query** — broadcast; every node evaluates the query over a
  one-object view of *its own* object ("each computer C for which the
  predicate is satisfied sends the object C to M");
* **relationship query** — every node ships its object to the issuer,
  which builds the full view and "processes the query" centrally.

Every node owns a copy of the static environment (the named regions); only
object state moves over the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.database import MostDatabase, Region
from repro.core.dynamic import DynamicAttribute
from repro.core.objects import ObjectClass
from repro.core.queries import InstantaneousQuery
from repro.distributed.classify import QueryKind, classify_query
from repro.distributed.node import MobileNode
from repro.distributed.strategies import OBJECT_SIZE, QUERY_SIZE, REPLY_SIZE
from repro.errors import DistributedError
from repro.ftl.query import FtlQuery
from repro.motion.moving import MovingPoint


@dataclass
class DistributedResult:
    """Outcome of one distributed FTL evaluation."""

    kind: QueryKind
    answer: set[tuple]
    messages: int
    bytes_sent: int


def _view_for(
    nodes: Sequence[MobileNode],
    class_name: str,
    regions: dict[str, Region],
    clock,
) -> MostDatabase:
    """A MOST database holding the given nodes' objects."""
    db = MostDatabase(clock=clock)
    db.create_class(ObjectClass(class_name, spatial_dimensions=2))
    for node in nodes:
        _add_node_object(db, class_name, node.node_id, node.mover)
    for name, region in regions.items():
        db.define_region(name, region)
    return db


def _add_node_object(
    db: MostDatabase, class_name: str, node_id: str, mover: MovingPoint
) -> None:
    cls = db.object_class(class_name)
    dynamic: dict[str, DynamicAttribute] = {}
    for attr, coord, fn in zip(
        cls.position_attributes, mover.anchor.coords, mover.functions
    ):
        dynamic[attr] = DynamicAttribute(
            value=coord, updatetime=mover.anchor_time, function=fn
        )
    db.add_object(class_name, node_id, dynamic=dynamic)


def _single_class(query: FtlQuery) -> str:
    classes = set(query.bindings.values())
    if len(classes) != 1:
        raise DistributedError(
            "distributed processing supports queries over one object class"
        )
    return next(iter(classes))


def process_distributed(
    coordinator: MobileNode,
    others: Sequence[MobileNode],
    query: FtlQuery,
    horizon: int,
    regions: dict[str, Region] | None = None,
    issuer_var: str | None = None,
) -> DistributedResult:
    """Classify and process an FTL query across the fleet.

    Returns the satisfying instantiations plus the message cost incurred,
    measured on the coordinator's network.
    """
    regions = dict(regions or {})
    network = coordinator.network
    kind = classify_query(query, issuer_var=issuer_var)
    class_name = _single_class(query)
    before = (network.stats.attempted, network.stats.bytes_sent)

    if kind is QueryKind.SELF_REFERENCING:
        view = _view_for([coordinator], class_name, regions, network.clock)
        answer = InstantaneousQuery(query, horizon).evaluate(view)

    elif kind is QueryKind.OBJECT:
        answer = set()
        for node in others:
            # Ship the query to the node ...
            if not network.send(
                coordinator.node_id, node.node_id, "query", str(query.where),
                size=QUERY_SIZE,
            ):
                continue
            # ... which evaluates it over its own object, in parallel with
            # the rest of the fleet (sequential here, but each evaluation
            # touches only local state).
            view = _view_for([node], class_name, regions, network.clock)
            local = InstantaneousQuery(query, horizon).evaluate(view)
            if local and network.send(
                node.node_id, coordinator.node_id, "reply", node.snapshot(),
                size=REPLY_SIZE,
            ):
                answer |= local

    elif kind is QueryKind.RELATIONSHIP:
        received = [coordinator]
        for node in others:
            if network.send(
                node.node_id, coordinator.node_id, "object", node.snapshot(),
                size=OBJECT_SIZE,
            ):
                received.append(node)
        view = _view_for(received, class_name, regions, network.clock)
        answer = InstantaneousQuery(query, horizon).evaluate(view)

    else:  # pragma: no cover - enum is closed
        raise DistributedError(f"unknown query kind {kind}")

    after = (network.stats.attempted, network.stats.bytes_sent)
    return DistributedResult(
        kind=kind,
        answer=answer,
        messages=after[0] - before[0],
        bytes_sent=after[1] - before[1],
    )
