"""Retry backoff schedules with jitter — shared by every retransmitter.

After a healed partition, every sender that backed off on the same tick
would otherwise retry on the same tick, re-congesting the link the moment
it comes back (the classic thundering-herd).  :class:`RetrySchedule`
computes capped exponential retry intervals and, when ``jitter`` is set,
spreads them with a seeded RNG so schedules stay deterministic per sender
but decorrelated across senders.

Used by :class:`repro.distributed.updates.MotionReporter` (position
updates), and by the continuous-query server's delta retransmission and
batched-ingest reporters (:mod:`repro.server`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import DistributedError


@dataclass(frozen=True)
class RetrySchedule:
    """Capped exponential backoff with optional proportional jitter.

    Attributes:
        base: ticks before the first retransmission (attempt 0).
        factor: multiplicative growth per attempt.
        cap: interval ceiling in ticks (the configurable cap — retries
            never wait longer than this, jitter aside).
        jitter: proportional spread; the computed interval is scaled by a
            uniform draw from ``[1 - jitter, 1 + jitter]``.  ``0`` means
            a deterministic schedule identical for every sender.
    """

    base: float = 2.0
    factor: float = 2.0
    cap: float = 8.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base < 1:
            raise DistributedError("backoff base must be at least one tick")
        if self.factor < 1.0:
            raise DistributedError("backoff factor must be >= 1")
        if self.cap < self.base:
            raise DistributedError("backoff cap must be >= base")
        if not 0.0 <= self.jitter < 1.0:
            raise DistributedError("jitter must be in [0, 1)")

    def interval(
        self, attempts: int, rng: random.Random | None = None
    ) -> int:
        """The wait, in whole ticks (>= 1), before retry ``attempts``.

        Without jitter this reproduces the PR 2 reporter schedule
        exactly: ``min(int(base * factor**attempts), cap)``.  With
        jitter, the pre-truncation value is scaled by the seeded draw —
        the cap bounds the *nominal* interval, so the jittered wait never
        exceeds ``cap * (1 + jitter)``.
        """
        if attempts < 0:
            raise DistributedError("attempts must be non-negative")
        raw = min(self.base * self.factor**attempts, self.cap)
        if self.jitter and rng is not None:
            raw *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return max(1, int(raw))

    def preview(
        self, retries: int, rng: random.Random | None = None
    ) -> list[int]:
        """The first ``retries`` intervals (for tests and diagnostics)."""
        return [self.interval(a, rng) for a in range(1, retries + 1)]
