"""Transmitting ``Answer(CQ)`` to a mobile client (section 5.2).

"In the immediate approach, the whole set is transmitted immediately after
being computed ... M's memory may fit only B tuples ... the set needs to
be sorted by the begin attribute, and transmitted in blocks of B tuples."

"The delayed approach ... Each tuple (S, begin, end) in the set is
transmitted to M at time begin."

"Of course, intermediate approaches, in which subsets of Answer(CQ) are
transmitted to M periodically, are possible."

:func:`simulate_transmission` drives a policy over a horizon with
disconnection windows and mid-flight answer revisions, and reports message
cost and *staleness* — the number of (tick, instantiation) display errors
relative to the ground-truth answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.network import SimNetwork
from repro.distributed.node import MobileClient
from repro.errors import DistributedError
from repro.ftl.relations import AnswerTuple

SERVER = "__server__"
TUPLE_SIZE = 4


class TransmissionPolicy:
    """Base class: decides *when* each answer tuple travels to the client."""

    def __init__(self) -> None:
        self.pending: list[AnswerTuple] = []

    def on_answer(self, tuples: list[AnswerTuple], now: float) -> None:
        """A fresh (or revised) answer set was computed at ``now``."""
        self.pending = sorted(
            (t for t in tuples if t.end >= now),
            key=lambda t: (t.begin, t.end, str(t.values)),
        )

    def due(self, now: float, free_slots: int | None) -> list[AnswerTuple]:
        """Tuples to transmit at ``now`` given the client's free memory."""
        raise NotImplementedError

    def mark_sent(self, sent: list[AnswerTuple]) -> None:
        """Remove successfully transmitted tuples from the queue."""
        done = set(sent)
        self.pending = [t for t in self.pending if t not in done]


class ImmediatePolicy(TransmissionPolicy):
    """Send everything as soon as possible, respecting the memory limit:
    the earliest-``begin`` block that fits travels first; the rest follow
    as the client's display expires tuples."""

    def due(self, now: float, free_slots: int | None) -> list[AnswerTuple]:
        if free_slots is None:
            return list(self.pending)
        return self.pending[: max(0, free_slots)]


class DelayedPolicy(TransmissionPolicy):
    """Send each tuple at its ``begin`` time (late tuples — e.g. after a
    reconnection — go as soon as they can while still displayable)."""

    def due(self, now: float, free_slots: int | None) -> list[AnswerTuple]:
        ready = [t for t in self.pending if t.begin <= now]
        if free_slots is not None:
            ready = ready[: max(0, free_slots)]
        return ready


class PeriodicPolicy(TransmissionPolicy):
    """Send the tuples becoming active in the next period, every
    ``period`` ticks — the paper's "intermediate approach"."""

    def __init__(self, period: int) -> None:
        super().__init__()
        if period < 1:
            raise DistributedError("period must be at least one tick")
        self.period = period

    def due(self, now: float, free_slots: int | None) -> list[AnswerTuple]:
        if now % self.period != 0:
            return []
        ready = [t for t in self.pending if t.begin <= now + self.period]
        if free_slots is not None:
            ready = ready[: max(0, free_slots)]
        return ready


@dataclass
class TransmissionReport:
    """Outcome of one simulated transmission run."""

    messages: int = 0
    tuples_sent: int = 0
    bytes_sent: int = 0
    dropped_messages: int = 0
    staleness: int = 0
    #: Of ``messages``, those carrying retractions after a revision.
    retract_messages: int = 0
    display_trace: dict[int, set] = field(default_factory=dict)


def simulate_transmission(
    policy: TransmissionPolicy,
    answer: list[AnswerTuple],
    horizon: int,
    client_memory: int | None = None,
    disconnections: list[tuple[float, float]] | None = None,
    revisions: dict[int, list[AnswerTuple]] | None = None,
) -> TransmissionReport:
    """Drive one policy against ground truth.

    Args:
        policy: the transmission policy under test.
        answer: ``Answer(CQ)`` computed at time 0.
        horizon: ticks to simulate.
        client_memory: the client's tuple capacity ``B`` (None = infinite).
        disconnections: client offline windows.
        revisions: time → replacement answer (explicit updates changed
            ``Answer(CQ)``, section 2.3); the policy retransmits deltas.
    """
    network = SimNetwork()
    client = MobileClient(memory=client_memory)
    delivered: list[list[AnswerTuple]] = []
    network.register(SERVER, lambda m: None)
    network.register(
        "M", lambda m: delivered.append(list(m.payload))
    )
    if disconnections:
        network.set_disconnections("M", disconnections)

    truth = list(answer)
    policy.on_answer(truth, now=0)
    report = TransmissionReport()
    # Retractions owed to the client after an answer revision.  They
    # travel as messages like everything else: a revision arriving while
    # the client is disconnected cannot teleport — the stale tuples stay
    # on the display (counted as staleness) until a retract message gets
    # through.
    owed_retractions: list[AnswerTuple] = []

    for step in range(horizon + 1):
        now = network.clock.now
        if revisions and now in revisions:
            truth = list(revisions[now])
            # A tuple re-added by this revision must no longer be
            # retracted, or a later delivery would wrongly remove it.
            owed_retractions = [
                t for t in owed_retractions if t not in truth
            ]
            for t in client._tuples:
                if t not in truth and t not in owed_retractions:
                    owed_retractions.append(t)
            policy.on_answer(truth, now=now)
        client.evict_expired(now)
        # Expired retractions are moot — the display evicts them anyway.
        owed_retractions = [t for t in owed_retractions if t.end >= now]
        if owed_retractions:
            report.messages += 1
            if network.send(
                SERVER,
                "M",
                "retract",
                list(owed_retractions),
                size=TUPLE_SIZE * len(owed_retractions),
            ):
                client.retract(owed_retractions)
                report.retract_messages += 1
                report.bytes_sent += TUPLE_SIZE * len(owed_retractions)
                owed_retractions = []
            else:
                report.dropped_messages += 1
        batch = policy.due(now, client.free_slots)
        if batch:
            report.messages += 1
            if network.send(
                SERVER, "M", "answer", batch, size=TUPLE_SIZE * len(batch)
            ):
                client.receive(batch, now)
                policy.mark_sent(batch)
                report.tuples_sent += len(batch)
                report.bytes_sent += TUPLE_SIZE * len(batch)
            else:
                report.dropped_messages += 1
        shown = client.display_at(now)
        expected = {t.values for t in truth if t.active_at(now)}
        # Staleness = wrongly-displayed instantiations plus the shortfall
        # against what a perfect policy could show (capped by the client's
        # memory, which no policy can beat).
        achievable = (
            len(expected)
            if client_memory is None
            else min(len(expected), client_memory)
        )
        wrong = len(shown - expected)
        shortfall = max(0, achievable - len(shown & expected))
        report.staleness += wrong + shortfall
        report.display_trace[now] = shown
        if step < horizon:
            network.clock.tick()
    return report
