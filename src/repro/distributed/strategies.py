"""Distributed processing strategies and their message costs (section 5.3).

For **object queries** the paper contrasts two approaches:

1. *collect* — "request that the object of each mobile computer be sent to
   M; then M processes the query" (N object transfers regardless of
   selectivity);
2. *broadcast* — "send the query to all the other mobile computers; each
   computer C for which the predicate is satisfied sends the object C to
   M" (N query messages + k result transfers, and the evaluation happens
   in parallel).

For **continuous** object queries, broadcast wins harder: "the remote
computer C evaluates the predicate each time the object C changes, and
transmits C to M when the predicate is satisfied", versus re-shipping the
object on *every* change under collect.

**Relationship queries** centralise: "it requests the objects from all
other mobile computers. Then M processes the query."

Every strategy returns the satisfying node ids; costs accumulate in the
network's :class:`~repro.distributed.network.NetworkStats`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.distributed.node import MobileNode

#: Relative message sizes: shipping a full object state vs a query string
#: vs a boolean-ish reply carrying the object id.
OBJECT_SIZE = 8
QUERY_SIZE = 2
REPLY_SIZE = 8

Predicate = Callable[[MobileNode], bool]
RelPredicate = Callable[[Sequence[dict]], set[str]]


def self_referencing_query(node: MobileNode, predicate: Predicate) -> bool:
    """A self-referencing query: answered locally, zero messages."""
    return predicate(node)


def collect_object_query(
    coordinator: MobileNode,
    others: Sequence[MobileNode],
    predicate: Predicate,
) -> set[str]:
    """Strategy 1: every node ships its object to the coordinator, which
    evaluates the predicate itself."""
    received: list[MobileNode] = []
    for node in others:
        if node.network.send(
            node.node_id,
            coordinator.node_id,
            "object",
            node.snapshot(),
            size=OBJECT_SIZE,
        ):
            received.append(node)
    return {node.node_id for node in received if predicate(node)}


def broadcast_object_query(
    coordinator: MobileNode,
    others: Sequence[MobileNode],
    predicate: Predicate,
) -> set[str]:
    """Strategy 2: broadcast the query; satisfying nodes reply."""
    out: set[str] = set()
    for node in others:
        if not coordinator.network.send(
            coordinator.node_id,
            node.node_id,
            "query",
            "predicate",
            size=QUERY_SIZE,
        ):
            continue
        if predicate(node):
            if node.network.send(
                node.node_id,
                coordinator.node_id,
                "reply",
                node.snapshot(),
                size=REPLY_SIZE,
            ):
                out.add(node.node_id)
    return out


def continuous_object_query(
    coordinator: MobileNode,
    others: Sequence[MobileNode],
    predicate: Predicate,
    change_schedule: dict[str, list[int]],
    horizon: int,
    strategy: str = "broadcast",
) -> dict[str, set[str]]:
    """A continuous object query over ``horizon`` ticks.

    ``change_schedule`` maps node ids to the ticks at which their object
    changes (motion-vector updates).  Under *collect* the changed object
    is shipped to the coordinator on every change; under *broadcast* the
    query is installed once and a node transmits only when its predicate
    value flips to true (or its object changes while satisfying).

    Returns the coordinator's view per tick: node ids it believes satisfy
    the predicate.
    """
    network = coordinator.network
    view: set[str] = set()
    history: dict[str, set[str]] = {}

    if strategy == "broadcast":
        for node in others:
            network.send(
                coordinator.node_id, node.node_id, "query", "install", size=QUERY_SIZE
            )
    # What the coordinator believes about each node (False until told).
    believed: dict[str, bool] = {node.node_id: False for node in others}

    for _ in range(horizon):
        now = network.clock.tick()
        for node in others:
            changed = now in change_schedule.get(node.node_id, [])
            satisfied = predicate(node)
            if strategy == "collect":
                # The coordinator re-receives the whole object on every
                # change, satisfying or not.
                if changed and network.send(
                    node.node_id,
                    coordinator.node_id,
                    "object",
                    node.snapshot(),
                    size=OBJECT_SIZE,
                ):
                    believed[node.node_id] = satisfied
            elif satisfied != believed[node.node_id]:
                # Broadcast: the node transmits only when its predicate
                # value flips relative to what the coordinator knows.
                if network.send(
                    node.node_id,
                    coordinator.node_id,
                    "transition",
                    (node.node_id, satisfied),
                    size=REPLY_SIZE if satisfied else QUERY_SIZE,
                ):
                    believed[node.node_id] = satisfied
            if believed[node.node_id]:
                view.add(node.node_id)
            else:
                view.discard(node.node_id)
        history[str(now)] = set(view)
    return history


def relationship_query(
    coordinator: MobileNode,
    others: Sequence[MobileNode],
    predicate: RelPredicate,
) -> set[str]:
    """Centralised relationship query: ship every object to the issuing
    computer, evaluate there."""
    snapshots: list[dict] = [coordinator.snapshot()]
    for node in others:
        if node.network.send(
            node.node_id,
            coordinator.node_id,
            "object",
            node.snapshot(),
            size=OBJECT_SIZE,
        ):
            snapshots.append(node.snapshot())
    return predicate(snapshots)
