"""A deterministic message-passing simulation with cost accounting.

Messages are delivered synchronously at the current clock tick; a message
to (or from) a node inside one of its *disconnection windows* is lost —
the paper's motivating failure ("due to disconnection, an object cannot
continuously update its position", section 1; the propagation probability
of section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import DistributedError
from repro.temporal import DENSE, IntervalSet, SimulationClock


@dataclass(frozen=True)
class Message:
    """One delivered message."""

    time: int
    src: str
    dst: str
    kind: str
    payload: object
    size: int


@dataclass
class NetworkStats:
    """Aggregate message accounting (experiments E2, E7, E8 read this)."""

    attempted: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.attempted = 0
        self.delivered = 0
        self.dropped = 0
        self.bytes_sent = 0


Handler = Callable[[Message], None]


class SimNetwork:
    """Nodes, handlers, disconnection windows, and per-message stats."""

    def __init__(self, clock: SimulationClock | None = None) -> None:
        self.clock = clock if clock is not None else SimulationClock()
        self.stats = NetworkStats()
        self._handlers: dict[str, Handler] = {}
        self._offline: dict[str, IntervalSet] = {}
        self.log: list[Message] = []

    # ------------------------------------------------------------------
    def register(self, node_id: str, handler: Handler) -> None:
        """Attach a node; its handler receives delivered messages."""
        if node_id in self._handlers:
            raise DistributedError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler
        self._offline.setdefault(node_id, IntervalSet.empty(DENSE))

    def node_ids(self) -> list[str]:
        """All registered node ids."""
        return list(self._handlers)

    def set_disconnections(
        self, node_id: str, windows: list[tuple[float, float]]
    ) -> None:
        """Schedule the node's offline windows."""
        if node_id not in self._handlers:
            raise DistributedError(f"unknown node {node_id!r}")
        self._offline[node_id] = IntervalSet.from_pairs(windows)

    def is_connected(self, node_id: str, at: float | None = None) -> bool:
        """Whether the node is reachable at ``at`` (default: now)."""
        t = self.clock.now if at is None else at
        return not self._offline.get(
            node_id, IntervalSet.empty(DENSE)
        ).contains(t)

    # ------------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: object,
        size: int = 1,
    ) -> bool:
        """Attempt delivery; returns whether the message got through."""
        if dst not in self._handlers:
            raise DistributedError(f"unknown destination {dst!r}")
        self.stats.attempted += 1
        now = self.clock.now
        if not self.is_connected(src, now) or not self.is_connected(dst, now):
            self.stats.dropped += 1
            return False
        self.stats.delivered += 1
        self.stats.bytes_sent += size
        message = Message(now, src, dst, kind, payload, size)
        self.log.append(message)
        self._handlers[dst](message)
        return True

    def broadcast(
        self, src: str, kind: str, payload: object, size: int = 1
    ) -> int:
        """Send to every other node; returns the number delivered."""
        delivered = 0
        for node_id in self._handlers:
            if node_id == src:
                continue
            if self.send(src, node_id, kind, payload, size):
                delivered += 1
        return delivered
