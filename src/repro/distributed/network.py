"""A deterministic message-passing simulation with cost accounting.

Without a fault plan, messages are delivered synchronously at the current
clock tick; a message to (or from) a node inside one of its
*disconnection windows* is lost — the paper's motivating failure ("due to
disconnection, an object cannot continuously update its position",
section 1; the propagation probability of section 5.2).

With a :class:`FaultPlan` the network becomes asynchronous: every
``send`` enqueues the message with a sampled in-flight delay, and a
tick-driven pump delivers due messages in ``(delivery time, reorder
rank, send order)`` order.  The plan is seeded and fully deterministic —
the same plan driven through the same simulation produces the same
message trace — which is what lets the chaos harness
(:mod:`repro.workloads.chaos`) run differential experiments.

Disconnection-window boundary semantics (pinned): windows are **closed**
intervals ``[start, end]`` of clock ticks.  A node is offline at *both*
endpoints — a message sent (or due for delivery) exactly at ``start`` or
exactly at ``end`` is lost; the first reachable tick is ``end + 1``.
Adjacent windows ``[a, b]`` and ``[b, c]`` therefore behave as the single
window ``[a, c]``.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import DistributedError
from repro.temporal import DENSE, IntervalSet, SimulationClock


@dataclass(frozen=True)
class Message:
    """One delivered message.

    ``time`` is the delivery tick; under a fault plan it may exceed
    ``sent_at`` (the tick :meth:`SimNetwork.send` was called) by the
    sampled in-flight delay.
    """

    time: int
    src: str
    dst: str
    kind: str
    payload: object
    size: int
    sent_at: int | None = None


@dataclass
class NetworkStats:
    """Aggregate message accounting (experiments E2, E7, E8 read this)."""

    attempted: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    #: Messages delivered more than once by a duplication fault.
    duplicated: int = 0
    #: Messages delivered out of send order (later send, earlier delivery).
    reordered: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.attempted = 0
        self.delivered = 0
        self.dropped = 0
        self.bytes_sent = 0
        self.duplicated = 0
        self.reordered = 0


@dataclass(frozen=True)
class LinkFaults:
    """Fault rates for one directed link (or the whole network).

    Attributes:
        drop: probability a transmitted copy is lost in flight.
        duplicate: probability the message spawns a second in-flight copy.
        delay: inclusive ``(lo, hi)`` range of the uniform integer
            in-flight delay, in ticks.  ``(0, 0)`` means "next pump".
        reorder: probability a copy is assigned a random same-tick
            delivery rank instead of FIFO order.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: tuple[int, int] = (0, 0)
    reorder: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise DistributedError(f"{name} must be a probability, got {p}")
        lo, hi = self.delay
        if lo < 0 or hi < lo:
            raise DistributedError(f"bad delay range {self.delay}")

    @property
    def is_clean(self) -> bool:
        """Whether this spec injects no fault at all."""
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.delay == (0, 0)
            and self.reorder == 0.0
        )


#: The no-fault link spec (used after the plan's heal time).
CLEAN_LINK = LinkFaults()


class FaultPlan:
    """A deterministic, seedable schedule of network faults.

    Args:
        seed: RNG seed; the same plan driven through the same simulation
            yields the same fault decisions.
        default: fault rates applied to every link without an override.
        links: per-link overrides, keyed by ``(src, dst)``.
        crashes: node id → list of ``[start, end]`` crash windows (closed,
            like disconnection windows).  While crashed a node can neither
            send nor receive; restart is the first tick after the window.
        heal_at: tick after which every link behaves as :data:`CLEAN_LINK`
            (crash schedules are explicit and unaffected).  ``None`` means
            the plan never heals.
    """

    def __init__(
        self,
        seed: int = 0,
        default: LinkFaults | None = None,
        links: dict[tuple[str, str], LinkFaults] | None = None,
        crashes: dict[str, list[tuple[float, float]]] | None = None,
        heal_at: int | None = None,
    ) -> None:
        self._rng = random.Random(seed)
        self.seed = seed
        self.default = default if default is not None else CLEAN_LINK
        self.links = dict(links or {})
        self.heal_at = heal_at
        self._crashes: dict[str, IntervalSet] = {
            node: IntervalSet.from_pairs(windows)
            for node, windows in (crashes or {}).items()
        }

    # ------------------------------------------------------------------
    def link(self, src: str, dst: str, now: int) -> LinkFaults:
        """The fault spec governing one transmission at tick ``now``."""
        if self.heal_at is not None and now >= self.heal_at:
            return CLEAN_LINK
        return self.links.get((src, dst), self.default)

    def crashed(self, node_id: str, at: float) -> bool:
        """Whether the node is inside one of its crash windows."""
        windows = self._crashes.get(node_id)
        return windows is not None and windows.contains(at)

    def sample_copies(
        self, src: str, dst: str, now: int
    ) -> list[tuple[int, float]]:
        """Fault decisions for one send: ``(delay, rank)`` per surviving
        in-flight copy (empty when every copy is dropped)."""
        spec = self.link(src, dst, now)
        copies = 1
        if spec.duplicate and self._rng.random() < spec.duplicate:
            copies = 2
        out: list[tuple[int, float]] = []
        for _ in range(copies):
            if spec.drop and self._rng.random() < spec.drop:
                continue
            delay = (
                self._rng.randint(*spec.delay)
                if spec.delay != (0, 0)
                else 0
            )
            rank = 0.0
            if spec.reorder and self._rng.random() < spec.reorder:
                rank = self._rng.uniform(-1.0, 1.0)
            out.append((delay, rank))
        return out


@dataclass(order=True)
class _QueueEntry:
    deliver_at: int
    rank: float
    seq: int
    message: Message = field(compare=False)


Handler = Callable[[Message], None]


class SimNetwork:
    """Nodes, handlers, disconnection windows, faults, per-message stats."""

    def __init__(
        self,
        clock: SimulationClock | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.clock = clock if clock is not None else SimulationClock()
        self.faults = faults
        self.stats = NetworkStats()
        self._handlers: dict[str, Handler] = {}
        self._offline: dict[str, IntervalSet] = {}
        self.log: list[Message] = []
        self._queue: list[_QueueEntry] = []
        self._seq = 0
        self._last_delivered_seq = -1
        if faults is not None:
            self.clock.on_tick(self._pump)

    # ------------------------------------------------------------------
    def register(self, node_id: str, handler: Handler) -> None:
        """Attach a node; its handler receives delivered messages."""
        if node_id in self._handlers:
            raise DistributedError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler
        self._offline.setdefault(node_id, IntervalSet.empty(DENSE))

    def node_ids(self) -> list[str]:
        """All registered node ids."""
        return list(self._handlers)

    def set_disconnections(
        self, node_id: str, windows: list[tuple[float, float]]
    ) -> None:
        """Schedule the node's offline windows.

        Windows are closed intervals: the node is unreachable at both
        endpoints and reachable again from ``end + 1`` (see the module
        docstring for the pinned boundary semantics).
        """
        if node_id not in self._handlers:
            raise DistributedError(f"unknown node {node_id!r}")
        self._offline[node_id] = IntervalSet.from_pairs(windows)

    def is_connected(self, node_id: str, at: float | None = None) -> bool:
        """Whether the node is reachable at ``at`` (default: now).

        ``False`` inside any disconnection window — including exactly at a
        window's ``start`` or ``end`` tick — and inside any crash window
        of the fault plan.
        """
        t = self.clock.now if at is None else at
        if self.faults is not None and self.faults.crashed(node_id, t):
            return False
        return not self._offline.get(
            node_id, IntervalSet.empty(DENSE)
        ).contains(t)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Messages enqueued but not yet delivered (fault plans only)."""
        return len(self._queue)

    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: object,
        size: int = 1,
    ) -> bool:
        """Attempt delivery.

        Without a fault plan the message is handled synchronously and the
        return value says whether it got through.  With a fault plan the
        surviving copies are *enqueued* (delivery happens when the clock
        ticks past their delay, or on :meth:`pump`) and the return value
        says whether at least one copy made it onto the wire.
        """
        if dst not in self._handlers:
            raise DistributedError(f"unknown destination {dst!r}")
        self.stats.attempted += 1
        now = self.clock.now
        if self.faults is None:
            if not self.is_connected(src, now) or not self.is_connected(
                dst, now
            ):
                self.stats.dropped += 1
                return False
            self._deliver(Message(now, src, dst, kind, payload, size, now))
            return True
        # Faulty path: the source must be up to transmit at all; the
        # destination's reachability is checked at delivery time.
        if not self.is_connected(src, now):
            self.stats.dropped += 1
            return False
        copies = self.faults.sample_copies(src, dst, now)
        if not copies:
            self.stats.dropped += 1
            return False
        if len(copies) > 1:
            self.stats.duplicated += 1
        for delay, rank in copies:
            self._seq += 1
            heapq.heappush(
                self._queue,
                _QueueEntry(
                    deliver_at=now + delay,
                    rank=rank,
                    seq=self._seq,
                    message=Message(
                        now + delay, src, dst, kind, payload, size, now
                    ),
                ),
            )
        return True

    def pump(self) -> int:
        """Deliver every queued message due at or before the current tick
        (called automatically on every clock tick under a fault plan).
        Returns the number of messages handed to handlers."""
        return self._pump(self.clock.now)

    def _pump(self, now: int) -> int:
        delivered = 0
        while self._queue and self._queue[0].deliver_at <= now:
            entry = heapq.heappop(self._queue)
            message = entry.message
            if not self.is_connected(message.dst, now):
                self.stats.dropped += 1
                continue
            if entry.seq < self._last_delivered_seq:
                self.stats.reordered += 1
            self._last_delivered_seq = max(self._last_delivered_seq, entry.seq)
            # Stamp the actual delivery tick (a manual pump can run after
            # the nominal delivery time).
            if message.time != now:
                message = Message(
                    now,
                    message.src,
                    message.dst,
                    message.kind,
                    message.payload,
                    message.size,
                    message.sent_at,
                )
            self._deliver(message)
            delivered += 1
        return delivered

    def _deliver(self, message: Message) -> None:
        self.stats.delivered += 1
        self.stats.bytes_sent += message.size
        self.log.append(message)
        self._handlers[message.dst](message)

    def broadcast(
        self, src: str, kind: str, payload: object, size: int = 1
    ) -> int:
        """Send to every other node; returns the number delivered (or,
        under a fault plan, accepted onto the wire)."""
        delivered = 0
        for node_id in self._handlers:
            if node_id == src:
                continue
            if self.send(src, node_id, kind, payload, size):
                delivered += 1
        return delivered
